"""Workload specifications: who asks for what, how often, and in what mix.

A :class:`WorkloadSpec` describes synthetic shared-object traffic abstractly,
independent of the scenario (which objects) and the runtime (which coherence
protocol).  It has three axes:

* **key popularity** — which of the scenario's keys a request touches:
  uniform, or Zipfian with configurable skew (the classic hot-key model);
* **read/write mix** — the probability that a request is a read;
* **client model** — *closed-loop* clients issue a request, wait for its
  completion, think, and repeat; *open-loop* clients draw Poisson arrival
  times in advance and issue on schedule.  Open-loop latencies are measured
  from the **intended** arrival time, so queueing delay is charged to the
  operation rather than silently absorbed (avoiding coordinated omission).

Multi-phase schedules (:class:`PhaseSpec`) let one workload shift mix or rate
mid-run — e.g. a write-heavy load phase followed by a read-mostly serve
phase, or a bursty open-loop arrival pattern.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass, field, replace
from typing import Iterator, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

POPULARITY_KINDS = ("uniform", "zipfian")
CLIENT_MODELS = ("closed", "open")


@dataclass(frozen=True)
class PhaseSpec:
    """One phase of a workload: a request count with its own mix and pacing.

    Fields left at ``None`` inherit the workload-level value, so a phase list
    can express just the deltas ("same traffic, but write-heavy for a burst").
    ``client_model`` may differ per phase, giving *hybrid* clients: a client
    can run a closed-loop warm-up phase and then switch to open-loop Poisson
    arrivals (or back) at a phase boundary.
    """

    ops_per_client: int
    read_fraction: float = None  # type: ignore[assignment]
    think_time: float = None  # type: ignore[assignment]
    arrival_rate: float = None  # type: ignore[assignment]
    client_model: str = None  # type: ignore[assignment]


@dataclass(frozen=True)
class ResolvedPhase:
    """A phase with every inherited field filled in (what clients execute)."""

    ops_per_client: int
    read_fraction: float
    think_time: float
    arrival_rate: float
    client_model: str


@dataclass(frozen=True)
class TenantSpec:
    """One tenant class of gateway sessions (see :mod:`repro.gateway`).

    Attributes
    ----------
    name:
        Tenant label; keys the per-tenant latency histograms and shed
        counters in ``read_write_summary()["gateway"]``.
    sessions:
        Concurrent sessions this tenant opens **per gateway** (one gateway
        per client node).  Sessions are cheap state machines, not simulated
        processes, so thousands per gateway are fine.
    weight:
        Weighted-fair-queueing share.  A backlogged tenant with weight 2
        gets twice the service of a backlogged tenant with weight 1.
    rate / burst:
        Token-bucket quota per gateway, in requests/second and requests.
        ``rate=None`` leaves the tenant uncapped; ``burst`` defaults to one
        second of tokens.  Requests beyond the quota are shed at admission
        (counted per tenant as ``shed_quota``).
    priority:
        Overload-shedding class: when the gateway's downstream queue depth
        crosses its shed threshold, only the highest-priority tenants are
        admitted, and an arriving higher-priority request may evict a
        queued lower-priority one from a full accept queue.
    arrival_rate / think_time / ops_per_session:
        Per-tenant overrides of the workload-level pacing knobs; ``None``
        inherits the spec value (``ops_per_client`` for the last).
    """

    name: str
    sessions: int = 8
    weight: float = 1.0
    rate: Optional[float] = None
    burst: Optional[float] = None
    priority: int = 0
    arrival_rate: Optional[float] = None
    think_time: Optional[float] = None
    ops_per_session: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tenants need a non-empty name")
        if self.sessions < 1:
            raise ConfigurationError(
                f"tenant {self.name!r} needs sessions >= 1, got {self.sessions}")
        if self.weight <= 0:
            raise ConfigurationError(
                f"tenant {self.name!r} needs weight > 0, got {self.weight}")
        if self.rate is not None and self.rate <= 0:
            raise ConfigurationError(
                f"tenant {self.name!r} needs rate > 0 (or None), got {self.rate}")
        if self.burst is not None and self.burst <= 0:
            raise ConfigurationError(
                f"tenant {self.name!r} needs burst > 0 (or None), got {self.burst}")
        if self.burst is not None and self.rate is None:
            raise ConfigurationError(
                f"tenant {self.name!r} sets burst without rate; the bucket "
                "needs a refill rate")
        if self.arrival_rate is not None and self.arrival_rate <= 0:
            raise ConfigurationError(
                f"tenant {self.name!r} needs arrival_rate > 0 (or None), "
                f"got {self.arrival_rate}")
        if self.think_time is not None and self.think_time < 0:
            raise ConfigurationError(
                f"tenant {self.name!r} needs think_time >= 0 (or None), "
                f"got {self.think_time}")
        if self.ops_per_session is not None and self.ops_per_session < 1:
            raise ConfigurationError(
                f"tenant {self.name!r} needs ops_per_session >= 1 (or None), "
                f"got {self.ops_per_session}")


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete description of one synthetic traffic pattern.

    Attributes
    ----------
    name:
        Label used in reports.
    num_keys:
        Size of the scenario's key space (number of counters, catalog
        entries, ...).  Scenario kinds decide what a "key" maps to.
    popularity:
        ``"uniform"`` or ``"zipfian"`` key selection.
    zipf_s:
        Zipf exponent; larger values concentrate traffic on fewer keys.
    read_fraction:
        Probability that a request is a read (scenario kinds map read/write
        requests onto concrete operations).
    hot_keys / hot_read_fraction:
        Key-correlated mix: requests touching the first ``hot_keys`` keys
        (the most popular ones under Zipfian selection) draw their
        read/write decision from ``hot_read_fraction`` instead.  This is the
        "read-mostly catalog plus write-hot keys" shape that gives different
        objects genuinely different read/write ratios — the input the
        adaptive management policy feeds on.  ``hot_keys=0`` (default)
        disables the correlation.
    client_model:
        ``"closed"`` (think-time loop) or ``"open"`` (Poisson arrivals).
    ops_per_client:
        Requests each simulated client issues (per phase when phases are
        given explicitly).
    think_time:
        Closed-loop mean think time between requests, in seconds of virtual
        time (exponentially distributed; 0 disables thinking).
    arrival_rate:
        Open-loop mean arrival rate per client, in requests/second.
    phases:
        Optional multi-phase schedule; empty means one phase built from the
        top-level fields.
    arrival_trace:
        Deterministic per-phase arrival-rate trace: a sequence of
        ``(duration, rate)`` segments, in virtual seconds and requests per
        second per client.  When set (open-loop only), each client draws
        piecewise-Poisson arrivals across the segments and issues requests
        until the trace ends — the request *count* falls out of the trace
        instead of being fixed up front.  The segment index is exposed as
        the request's ``phase``, which is what lets scenario kinds shift a
        hotspot from one segment to the next (see ``hotspot-shift``).
    value_sizes:
        Per-key write payload sizes, in bytes: key ``k`` writes a value of
        ``value_sizes[k % len(value_sizes)]`` bytes.  This gives different
        keys genuinely different write *weights* — the signal the
        byte-weighted shard rebalancer feeds on (two shards with equal
        write counts can carry very unequal byte traffic).  Empty
        (default) keeps the classic fixed-size payloads, so existing
        workloads are untouched.
    tenants:
        Gateway-tier tenant classes (:class:`TenantSpec`).  Only consumed
        by gateway-mode runs (see :mod:`repro.gateway`): each client node
        hosts one gateway through which every tenant opens ``sessions``
        lightweight sessions, subject to per-tenant weighted fair queueing,
        token-bucket quotas, and priority-based overload shedding.  Empty
        (default) keeps the classic one-sim-process-per-client runner.
    """

    name: str = "workload"
    num_keys: int = 16
    popularity: str = "uniform"
    zipf_s: float = 1.1
    read_fraction: float = 0.9
    hot_keys: int = 0
    hot_read_fraction: Optional[float] = None
    client_model: str = "closed"
    ops_per_client: int = 50
    think_time: float = 0.0
    arrival_rate: float = 200.0
    phases: Tuple[PhaseSpec, ...] = field(default_factory=tuple)
    arrival_trace: Tuple[Tuple[float, float], ...] = field(default_factory=tuple)
    value_sizes: Tuple[int, ...] = field(default_factory=tuple)
    tenants: Tuple[TenantSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.popularity not in POPULARITY_KINDS:
            raise ConfigurationError(
                f"unknown popularity {self.popularity!r} (use one of {POPULARITY_KINDS})")
        if self.client_model not in CLIENT_MODELS:
            raise ConfigurationError(
                f"unknown client model {self.client_model!r} (use one of {CLIENT_MODELS})")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigurationError(f"read_fraction must be in [0, 1], got {self.read_fraction}")
        if self.num_keys < 1:
            raise ConfigurationError(f"num_keys must be >= 1, got {self.num_keys}")
        if not 0 <= self.hot_keys <= self.num_keys:
            raise ConfigurationError(f"hot_keys must be in [0, num_keys], got {self.hot_keys}")
        if self.hot_keys and self.hot_read_fraction is None:
            raise ConfigurationError("hot_keys needs hot_read_fraction to give the hot keys a mix")
        if self.hot_read_fraction is not None and not 0.0 <= self.hot_read_fraction <= 1.0:
            raise ConfigurationError(
                f"hot_read_fraction must be in [0, 1], got {self.hot_read_fraction}")
        if self.client_model == "open" and self.arrival_rate <= 0:
            raise ConfigurationError("open-loop workloads need arrival_rate > 0")
        for index, phase in enumerate(self.phases):
            model = phase.client_model
            if model is not None and model not in CLIENT_MODELS:
                raise ConfigurationError(
                    f"phase {index} has unknown client model {model!r} "
                    f"(use one of {CLIENT_MODELS})")
            effective_model = self.client_model if model is None else model
            effective_rate = (self.arrival_rate if phase.arrival_rate is None
                              else phase.arrival_rate)
            if effective_model == "open" and effective_rate <= 0:
                raise ConfigurationError(
                    f"phase {index} is open-loop and needs arrival_rate > 0")
        seen_tenants = set()
        for tenant in self.tenants:
            if tenant.name in seen_tenants:
                raise ConfigurationError(f"duplicate tenant name {tenant.name!r}")
            seen_tenants.add(tenant.name)
        if self.arrival_trace:
            if self.client_model != "open":
                raise ConfigurationError(
                    "arrival_trace drives open-loop arrivals; set "
                    "client_model='open'")
            if self.phases:
                raise ConfigurationError("give either phases or arrival_trace, not both")
            for segment in self.arrival_trace:
                if len(segment) != 2:
                    raise ConfigurationError(
                        f"trace segments are (duration, rate) pairs, got "
                        f"{segment!r}")
                duration, rate = segment
                if duration <= 0 or rate <= 0:
                    raise ConfigurationError(
                        f"trace segment ({duration}, {rate}) must have "
                        "positive duration and rate")
        for size in self.value_sizes:
            if not isinstance(size, int) or size < 1:
                raise ConfigurationError(f"value sizes must be positive integers, got {size!r}")

    # ------------------------------------------------------------------ #

    def resolved_phases(self) -> List[ResolvedPhase]:
        """The phase schedule with workload-level defaults filled in."""
        if not self.phases:
            return [ResolvedPhase(self.ops_per_client, self.read_fraction,
                                  self.think_time, self.arrival_rate,
                                  self.client_model)]
        resolved = []
        for phase in self.phases:
            resolved.append(ResolvedPhase(
                ops_per_client=phase.ops_per_client,
                read_fraction=(self.read_fraction if phase.read_fraction is None
                               else phase.read_fraction),
                think_time=(self.think_time if phase.think_time is None
                            else phase.think_time),
                arrival_rate=(self.arrival_rate if phase.arrival_rate is None
                              else phase.arrival_rate),
                client_model=(self.client_model if phase.client_model is None
                              else phase.client_model),
            ))
        return resolved

    @property
    def total_ops_per_client(self) -> int:
        return sum(phase.ops_per_client for phase in self.resolved_phases())

    def value_size(self, key: int) -> int:
        """Write payload size for ``key``, or 0 when sizes are not modelled."""
        if not self.value_sizes:
            return 0
        return self.value_sizes[key % len(self.value_sizes)]

    def with_overrides(self, **changes) -> "WorkloadSpec":
        """A copy of this spec with the given fields replaced."""
        return replace(self, **changes)


def bursty(name: str, ops_per_phase: int, base_rate: float, burst_rate: float,
           read_fraction: float = 0.9, num_keys: int = 16,
           bursts: int = 2, **overrides) -> WorkloadSpec:
    """An open-loop workload alternating calm and burst arrival phases."""
    phases: List[PhaseSpec] = []
    for _ in range(bursts):
        phases.append(PhaseSpec(ops_per_client=ops_per_phase, arrival_rate=base_rate))
        phases.append(PhaseSpec(ops_per_client=ops_per_phase, arrival_rate=burst_rate))
    return WorkloadSpec(name=name, num_keys=num_keys, read_fraction=read_fraction,
                        client_model="open", arrival_rate=base_rate,
                        phases=tuple(phases), **overrides)


class KeySampler:
    """Draws key indices in ``[0, num_keys)`` under the configured popularity."""

    def __init__(self, spec: WorkloadSpec) -> None:
        self.num_keys = spec.num_keys
        self.kind = spec.popularity
        self._cdf: List[float] = []
        if self.kind == "zipfian":
            weights = [1.0 / ((rank + 1) ** spec.zipf_s) for rank in range(self.num_keys)]
            total = sum(weights)
            running = 0.0
            for weight in weights:
                running += weight / total
                self._cdf.append(running)
            self._cdf[-1] = 1.0  # guard against float drift

    def sample(self, rng: random.Random) -> int:
        if self.kind == "uniform":
            return rng.randrange(self.num_keys)
        return bisect_left(self._cdf, rng.random())


@dataclass(frozen=True)
class Request:
    """One generated client request, before the scenario maps it to an op."""

    seq: int
    key: int
    is_write: bool
    phase: int


def request_stream(spec: WorkloadSpec, rng: random.Random) -> Iterator[Request]:
    """Generate the request sequence one client issues (deterministic per rng).

    The stream interleaves key sampling and mix decisions in a fixed order so
    that, for a given seeded ``rng``, two runs observe identical requests.
    """
    sampler = KeySampler(spec)
    seq = 0
    for phase_index, phase in enumerate(spec.resolved_phases()):
        for _ in range(phase.ops_per_client):
            key = sampler.sample(rng)
            # One mix draw per request in a fixed order (so the stream is
            # identical across configurations); the threshold it is compared
            # against may be key-correlated (hot keys write-hot, say).
            read_fraction = phase.read_fraction
            if key < spec.hot_keys:
                read_fraction = spec.hot_read_fraction
            is_write = rng.random() >= read_fraction
            yield Request(seq=seq, key=key, is_write=is_write, phase=phase_index)
            seq += 1


def trace_arrivals(trace: Sequence[Tuple[float, float]],
                   rng: random.Random) -> Iterator[Tuple[float, int]]:
    """Piecewise-Poisson arrival times over a ``(duration, rate)`` trace.

    Yields ``(arrival_time, segment_index)`` pairs, deterministic per seeded
    ``rng``.  Gaps are drawn at the current segment's rate; a gap that
    crosses a boundary restarts the draw inside the next segment (a cheap,
    deterministic stand-in for exact thinning — the bias is one inter-arrival
    gap per boundary).
    """
    t = 0.0
    start = 0.0
    for segment, (duration, rate) in enumerate(trace):
        end = start + duration
        t = max(t, start)
        while True:
            gap = rng.expovariate(rate)
            if t + gap >= end:
                break
            t += gap
            yield t, segment
        start = end


def traced_request_stream(spec: WorkloadSpec,
                          rng: random.Random) -> Iterator[Tuple[Request, float]]:
    """One client's requests under the spec's arrival-rate trace.

    Yields ``(request, intended_arrival_time)``; the request's ``phase`` is
    the trace segment it arrived in.  Key popularity and the (possibly
    key-correlated) read/write mix work exactly as in :func:`request_stream`,
    drawn in a fixed order so the stream is identical across configurations.
    """
    sampler = KeySampler(spec)
    seq = 0
    for arrival, segment in trace_arrivals(spec.arrival_trace, rng):
        key = sampler.sample(rng)
        read_fraction = spec.read_fraction
        if key < spec.hot_keys:
            read_fraction = spec.hot_read_fraction
        is_write = rng.random() >= read_fraction
        yield Request(seq=seq, key=key, is_write=is_write, phase=segment), arrival
        seq += 1


def observed_mix(requests: Sequence[Request]) -> float:
    """Fraction of reads in a generated request sequence (test helper)."""
    if not requests:
        return 0.0
    return sum(1 for request in requests if not request.is_write) / len(requests)
