"""The workload runner: simulated clients driving scenarios on any runtime.

:class:`WorkloadRunner` assembles a cluster, builds one of the four runtime
systems (broadcast RTS, point-to-point RTS, central-server baseline, Ivy DSM
baseline), runs a scenario's setup, then spawns ``clients_per_node``
simulated client processes on every node.  Each client issues the request
stream its :class:`~repro.workloads.spec.WorkloadSpec` describes — closed
loop with think times, or open loop with Poisson arrivals — and records the
virtual-time latency of every request.

Latency is collected at two levels:

* **request latency** — what a client observed, measured from the *intended*
  arrival time under the open-loop model (so queueing delay counts);
* **runtime latency** — per-invocation latency recorded inside the runtime
  system via :class:`~repro.rts.stats.LatencyProbe`.

Everything is deterministic under a fixed seed: clients draw keys, mixes,
think times and arrival gaps from per-client named rng streams, so two runs
of the same configuration produce byte-identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..amoeba.cluster import Cluster
from ..baselines.central_server import CentralServerRts
from ..baselines.ivy_dsm import IvyObjectRuntime
from ..config import ClusterConfig
from ..errors import ConfigurationError
from ..metrics.latency import LatencyRecorder
from ..rts.base import RuntimeSystem
from ..rts.hybrid import HybridRts
from ..rts.policy import DEFAULT_POLICY_FOR_KIND
from ..rts.sharding import batching_params
from .scenarios import Scenario, ScenarioRegistry
from .spec import WorkloadSpec, request_stream, traced_request_stream

#: Every runtime kind the runner can sweep.  ``broadcast``/``p2p`` are the
#: fixed-policy configurations of the unified runtime; ``adaptive`` lets
#: every object migrate between the policies on its observed read/write mix.
RUNTIME_KINDS = ("broadcast", "p2p", "central", "ivy", "adaptive")

#: Runtime kinds that may need the totally-ordered broadcast groups.
_BROADCAST_CAPABLE = ("broadcast", "adaptive")


def build_runtime(cluster: Cluster, kind: str,
                  options: Optional[Dict[str, Any]] = None) -> RuntimeSystem:
    """Instantiate one of the runtime systems on ``cluster``."""
    options = dict(options or {})
    if kind in DEFAULT_POLICY_FOR_KIND:
        options.setdefault("default_policy", DEFAULT_POLICY_FOR_KIND[kind])
        return HybridRts(cluster, **options)
    if kind == "central":
        return CentralServerRts(cluster, **options)
    if kind == "ivy":
        return IvyObjectRuntime(cluster, **options)
    raise ConfigurationError(f"unknown runtime kind {kind!r} (use one of {RUNTIME_KINDS})")


def network_type_for(kind: str) -> str:
    """Broadcast-capable kinds need the shared Ethernet; the rest run
    point-to-point."""
    return "ethernet" if kind in _BROADCAST_CAPABLE else "switched"


@dataclass
class WorkloadReport:
    """Everything measured during one scenario x runtime workload run."""

    scenario: str
    runtime: str
    workload: str
    num_nodes: int
    num_clients: int
    total_ops: int
    reads: int
    writes: int
    #: Virtual seconds from first client start to last client completion.
    elapsed: float
    #: Requests per virtual second over the measurement window.
    throughput: float
    #: Client-observed request latency summaries (read / write / overall).
    request_latency: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Runtime-level invocation latency summaries.
    rts_latency: Dict[str, Dict[str, float]] = field(default_factory=dict)
    network: Dict[str, Any] = field(default_factory=dict)
    rts_summary: Dict[str, Any] = field(default_factory=dict)
    #: Scenario-specific post-run facts (counter totals, queue backlog, ...).
    scenario_facts: Dict[str, Any] = field(default_factory=dict)
    #: Broadcast-RTS scaling knobs this cell ran with (1 / None = classic).
    num_shards: int = 1
    batching: Optional[Dict[str, Any]] = None

    def percentile_row(self, kind: str = "overall") -> Dict[str, float]:
        """p50/p95/p99/mean (seconds) of one request-latency class."""
        summary = self.request_latency.get(kind, {})
        return {key: summary.get(key, 0.0) for key in ("p50", "p95", "p99", "mean")}

    def object_rows(self) -> Dict[str, Dict[str, Any]]:
        """The runtime's reconciled per-object summary (reads/writes/policy)."""
        return dict(self.rts_summary.get("per_object", {}))

    def final_policies(self) -> Dict[str, str]:
        """Object name -> management policy at the end of the run."""
        return {name: row.get("policy", "?") for name, row in self.object_rows().items()}

    def fingerprint(self) -> Dict[str, Any]:
        """A stable, rounded digest used by determinism checks and tests."""
        overall = self.percentile_row()
        extras: Dict[str, Any] = {}
        recovery = self.rts_summary.get("recovery")
        if recovery:
            # Primary takeovers (who died, who took over, from copy or
            # snapshot, how long the seat was dark) are part of the
            # behaviour the determinism regression pins down.
            extras["recovery"] = {
                "count": recovery["primary_recoveries"],
                "max_window": recovery["max_window"],
                "log": [list(entry) for entry in recovery["log"]],
            }
        elasticity = self.rts_summary.get("elasticity")
        if elasticity:
            # Rejoins, drains and group merges (who, how many objects were
            # reseeded, which seats moved) are behaviour the determinism
            # regression pins down, exactly like takeovers.
            extras["elasticity"] = {
                "node_rejoins": elasticity["node_rejoins"],
                "nodes_drained": elasticity["nodes_drained"],
                "shards_removed": elasticity["shards_removed"],
                "rejoin_log": [list(entry)
                               for entry in elasticity["rejoin_log"]],
            }
        transactions = self.rts_summary.get("transactions")
        if transactions:
            # Commit/abort/retry counts per path (same-shard vs 2PC) are
            # behaviour the determinism regression pins down; runs that
            # never transact carry no block at all, so pre-transaction
            # baselines stay byte-identical.
            extras["transactions"] = dict(sorted(transactions.items()))
        gateway = self.rts_summary.get("gateway")
        if gateway:
            # The gateway block is already fingerprint-stable (counters are
            # ints, latency summaries pre-rounded), so the whole admission/
            # shed/per-tenant behaviour is pinned by the determinism
            # regression; tier-less runs carry no block and stay
            # byte-identical to pre-gateway baselines.
            extras["gateway"] = gateway
        rebalancing = self.rts_summary.get("rebalancing")
        if rebalancing:
            # Where and when objects moved is part of the behaviour the
            # determinism regression must pin down, exactly like policies.
            extras["rebalancing"] = {
                "moves": rebalancing["moves"],
                "shards_added": rebalancing["shards_added"],
                "placement_epoch": rebalancing["placement_epoch"],
                "log": [list(entry) for entry in rebalancing["log"]],
            }
        return {
            **extras,
            "scenario": self.scenario,
            "runtime": self.runtime,
            "num_shards": self.num_shards,
            "batching": self.batching,
            "ops": self.total_ops,
            "reads": self.reads,
            "writes": self.writes,
            "elapsed": round(self.elapsed, 9),
            "throughput": round(self.throughput, 6),
            "p50": round(overall["p50"], 9),
            "p95": round(overall["p95"], 9),
            "p99": round(overall["p99"], 9),
            "messages": self.network.get("messages"),
            "facts": dict(sorted(self.scenario_facts.items())),
            # Where every object ended up (policy switches are part of the
            # behaviour the determinism regression must pin down).
            "policies": dict(sorted(self.final_policies().items())),
        }


class WorkloadRunner:
    """Run one scenario under one workload spec on one runtime system."""

    def __init__(self, scenario: str, workload: Optional[WorkloadSpec] = None,
                 runtime: str = "broadcast", num_nodes: int = 8,
                 clients_per_node: int = 1, seed: int = 42,
                 num_shards: int = 1, batching: Optional[Any] = None,
                 rts_options: Optional[Dict[str, Any]] = None,
                 config: Optional[ClusterConfig] = None,
                 network_type: Optional[str] = None,
                 backend: str = "sim",
                 gateway: Optional[Any] = None) -> None:
        """``network_type`` overrides the runtime's natural interconnect
        (e.g. run the p2p runtime on the shared Ethernet so a cross-runtime
        comparison holds the hardware fixed).

        ``backend`` selects the execution substrate: ``"sim"`` (default)
        runs inside the deterministic discrete-event simulator; ``"real"``
        runs the same scenario across real OS processes over UDP sockets
        (see :mod:`repro.net`), reporting real wall-clock throughput.

        ``gateway`` switches the client edge to the session tier
        (:mod:`repro.gateway`): ``True`` / a dict of
        :class:`~repro.gateway.GatewayParams` fields / params.  Instead of
        ``clients_per_node`` simulated client processes, each client node
        hosts one gateway driving the spec's tenant sessions through
        admission control, weighted fair queueing and overload shedding.
        ``None`` (default) keeps the classic runner.
        """
        if backend not in ("sim", "real"):
            raise ConfigurationError(f"unknown backend {backend!r} (use 'sim' or 'real')")
        self.backend = backend
        if gateway is not None:
            # Deferred import: the classic runner path must not pull in the
            # gateway tier (and repro.gateway imports workload specs).
            from ..gateway import gateway_params

            if backend != "sim":
                raise ConfigurationError(
                    "the gateway tier is simulator-only; run backend='sim'")
            self.gateway = gateway_params(gateway)
        else:
            self.gateway = None
        if backend == "real":
            if runtime != "broadcast":
                raise ConfigurationError(
                    "the real backend maps per-object policies itself; "
                    "select it with runtime='broadcast'")
            if batching is not None or rts_options or config or network_type:
                raise ConfigurationError(
                    "batching / rts_options / config / network_type are "
                    "simulator-only knobs; the real backend does not "
                    "accept them")
        if runtime not in RUNTIME_KINDS:
            raise ConfigurationError(
                f"unknown runtime kind {runtime!r} (use one of {RUNTIME_KINDS})")
        self.scenario_kind = scenario
        scenario_class = ScenarioRegistry.get(scenario)
        self.workload = workload or scenario_class.default_spec()
        self.runtime_kind = runtime
        self.num_nodes = num_nodes
        self.clients_per_node = clients_per_node
        self.seed = seed
        self.rts_options = dict(rts_options or {})
        # Sharding and batching are sweep axes of the broadcast mechanism.
        if num_shards != 1 or batching is not None:
            if runtime not in _BROADCAST_CAPABLE:
                raise ConfigurationError(
                    "num_shards / batching only apply to broadcast-capable "
                    f"runtimes {_BROADCAST_CAPABLE}")
            if num_shards != 1:
                self.rts_options.setdefault("num_shards", num_shards)
            if batching is not None:
                self.rts_options.setdefault("batching", batching)
        self.num_shards = int(self.rts_options.get("num_shards", 1))
        self.batching = self.rts_options.get("batching")
        self.config = config
        self.network_type = network_type or network_type_for(runtime)

    # ------------------------------------------------------------------ #

    def run(self) -> WorkloadReport:
        """Execute the workload to completion; returns the full report."""
        if self.backend == "real":
            # Deferred import: the sim path must not depend on repro.net.
            from ..net.runner import run_real_workload

            return run_real_workload(
                scenario=self.scenario_kind, workload=self.workload,
                num_nodes=self.num_nodes,
                clients_per_node=self.clients_per_node, seed=self.seed,
                num_shards=max(1, self.num_shards))
        config = self.config or ClusterConfig(num_nodes=self.num_nodes, seed=self.seed)
        cluster = Cluster(config, network_type=self.network_type)
        try:
            return self._run_on(cluster)
        finally:
            cluster.shutdown()

    def _run_on(self, cluster: Cluster) -> WorkloadReport:
        sim = cluster.sim
        rts = build_runtime(cluster, self.runtime_kind, self.rts_options)
        rts_recorder = LatencyRecorder()
        request_recorder = LatencyRecorder()
        scenario = ScenarioRegistry.create(self.scenario_kind, self.workload)
        spec = scenario.spec
        phases = spec.resolved_phases()
        counts = {"reads": 0, "writes": 0, "clients": 0}
        window = {"start": 0.0, "end": 0.0}
        facts: Dict[str, Any] = {}

        def client_body(node_id: int, client_id: int) -> None:
            proc = sim.current_process
            rng = sim.rng.stream(f"workload.client.{node_id}.{client_id}")
            if spec.arrival_trace:
                # Trace-driven open loop: arrivals follow the deterministic
                # (duration, rate) segments; the request count falls out of
                # the trace.  Latency is measured from the intended arrival,
                # so queueing delay counts (no coordinated omission).
                start = proc.local_time
                for request, offset in traced_request_stream(spec, rng):
                    arrival = start + offset
                    if proc.local_time < arrival:
                        proc.hold(arrival - proc.local_time)
                    scenario.perform(rts, proc, request)
                    kind = "write" if request.is_write else "read"
                    request_recorder.record(kind, proc.local_time - arrival)
                    counts["writes" if request.is_write else "reads"] += 1
                return
            # The loop mode is per resolved phase, so one client can switch
            # between closed-loop think/issue and open-loop Poisson arrivals
            # mid-stream (a "hybrid" client).  The open-loop arrival clock
            # restarts at every closed->open handover instead of
            # back-filling arrivals for the time spent closed.
            prev_model = None
            next_arrival = proc.local_time
            for request in request_stream(spec, rng):
                phase = phases[request.phase]
                if phase.client_model == "open":
                    if prev_model == "closed":
                        next_arrival = proc.local_time
                    prev_model = "open"
                    next_arrival += rng.expovariate(phase.arrival_rate)
                    if proc.local_time < next_arrival:
                        proc.hold(next_arrival - proc.local_time)
                    # Intended arrival, not actual issue time: queueing delay
                    # counts toward latency (no coordinated omission).
                    issued_at = next_arrival
                else:
                    prev_model = "closed"
                    if phase.think_time > 0.0:
                        proc.hold(rng.expovariate(1.0 / phase.think_time))
                    issued_at = proc.local_time
                scenario.perform(rts, proc, request)
                kind = "write" if request.is_write else "read"
                request_recorder.record(kind, proc.local_time - issued_at)
                counts["writes" if request.is_write else "reads"] += 1

        gateway_tier = None
        if self.gateway is not None:
            from ..gateway import GatewayTier

            gateway_tier = GatewayTier(rts, scenario, self.gateway,
                                       recorder=request_recorder,
                                       counts=counts)
            rts.gateway_tier = gateway_tier

        def orchestrator() -> None:
            proc = sim.current_process
            scenario.setup(rts, proc)
            proc.flush()
            # Record runtime-level latencies only over the measurement
            # window: setup and post-run validation stay out of the stats.
            rts.attach_latency_recorder(rts_recorder)
            window["start"] = proc.local_time
            # Scenario kinds that crash machines mid-run reserve them here,
            # so no client is stranded on a node scheduled to die.
            hosts = scenario.client_nodes(cluster)
            if gateway_tier is not None:
                clients = gateway_tier.build(cluster, hosts)
                counts["clients"] = gateway_tier.num_sessions
            else:
                clients = []
                counts["clients"] = len(hosts) * self.clients_per_node
                for node_id in hosts:
                    node = cluster.node(node_id)
                    for client_id in range(self.clients_per_node):
                        clients.append(node.kernel.spawn_thread(
                            client_body, node.node_id, client_id,
                            name=f"client{client_id}"))
            for client in clients:
                proc.join(client)
            window["end"] = proc.local_time
            rts.latency_probe.recorder = None
            # A finished client only proves its writes were delivered at its
            # own node; broadcasts to the other replicas can still be in
            # flight at this instant.  Let them land before validation reads
            # local state.
            proc.hold(10 * cluster.cost_model.network.latency)
            facts.update(scenario.validate(rts, proc, counts))

        cluster.node(0).kernel.spawn_thread(orchestrator, name="workload")
        cluster.run()

        total_ops = counts["reads"] + counts["writes"]
        elapsed = max(window["end"] - window["start"], 1e-12)
        batch_params = batching_params(self.batching)
        batching_facts = (None if batch_params is None else
                          {"max_batch": batch_params.max_batch,
                           "flush_delay": batch_params.flush_delay})
        return WorkloadReport(
            scenario=self.scenario_kind,
            runtime=rts.name,
            workload=spec.name,
            num_nodes=cluster.num_nodes,
            num_clients=counts["clients"],
            total_ops=total_ops,
            reads=counts["reads"],
            writes=counts["writes"],
            elapsed=elapsed,
            throughput=total_ops / elapsed,
            request_latency=request_recorder.summaries(),
            rts_latency=rts_recorder.summaries(),
            network=cluster.network_summary(),
            rts_summary=rts.read_write_summary(),
            scenario_facts=facts,
            num_shards=self.num_shards,
            batching=batching_facts,
        )


def run_scenario_matrix(scenarios: List[str], runtimes: List[str],
                        workload: Optional[WorkloadSpec] = None,
                        **runner_kwargs: Any) -> List[WorkloadReport]:
    """Sweep scenarios x runtimes; returns one report per combination."""
    reports = []
    for scenario_kind in scenarios:
        for runtime_kind in runtimes:
            runner = WorkloadRunner(scenario_kind, workload=workload,
                                    runtime=runtime_kind, **runner_kwargs)
            reports.append(runner.run())
    return reports


def run_shard_sweep(scenario: str, shard_counts: List[int],
                    workload: Optional[WorkloadSpec] = None,
                    batching: Optional[Any] = None,
                    **runner_kwargs: Any) -> List[WorkloadReport]:
    """Sweep the broadcast RTS over shard counts for one scenario.

    Every cell runs the identical workload; only the number of broadcast
    groups (and thus sequencers) changes, which is what isolates the
    single-sequencer ceiling in the resulting throughput curve.
    """
    reports = []
    for num_shards in shard_counts:
        runner = WorkloadRunner(scenario, workload=workload,
                                runtime="broadcast", num_shards=num_shards,
                                batching=batching, **runner_kwargs)
        reports.append(runner.run())
    return reports
