"""Synthetic shared-object workloads with latency-percentile measurement.

This package opens the scenario-diversity axis of the reproduction: instead
of the paper's four hand-written applications, it drives the runtimes with
parameterised synthetic traffic and reports latency *distributions* (p50,
p95, p99) and throughput, not just aggregate speedup.

* :mod:`repro.workloads.spec` — workload descriptions: key-popularity
  distributions (uniform / Zipfian), read/write mix, closed-loop (think
  time) and open-loop (Poisson arrivals) client models, multi-phase and
  bursty schedules;
* :mod:`repro.workloads.scenarios` — shared-object scenario kinds built on
  the :class:`~repro.rts.object_model.ObjectSpec` model (counter farm, KV
  table, FIFO job queue, read-mostly catalog, hot-spot cell) plus the
  :class:`ScenarioRegistry` new kinds register with;
* :mod:`repro.workloads.runner` — the :class:`WorkloadRunner`, which spawns
  simulated client processes on every node of a cluster and runs the traffic
  against any of the four runtimes: broadcast RTS, point-to-point RTS,
  central-server baseline, and the Ivy DSM baseline.

Quick use::

    from repro.workloads import WorkloadRunner

    report = WorkloadRunner("hot-spot", runtime="broadcast", num_nodes=8).run()
    print(report.throughput, report.percentile_row()["p99"])
"""

from .runner import (
    RUNTIME_KINDS,
    WorkloadReport,
    WorkloadRunner,
    build_runtime,
    run_scenario_matrix,
    run_shard_sweep,
)
from .scenarios import PollableQueue, Scenario, ScenarioRegistry, scenario
from .spec import (
    KeySampler,
    PhaseSpec,
    Request,
    TenantSpec,
    WorkloadSpec,
    bursty,
    request_stream,
    trace_arrivals,
    traced_request_stream,
)

__all__ = [
    "RUNTIME_KINDS",
    "WorkloadReport",
    "WorkloadRunner",
    "build_runtime",
    "run_scenario_matrix",
    "run_shard_sweep",
    "Scenario",
    "ScenarioRegistry",
    "scenario",
    "PollableQueue",
    "KeySampler",
    "PhaseSpec",
    "Request",
    "TenantSpec",
    "WorkloadSpec",
    "bursty",
    "request_stream",
    "trace_arrivals",
    "traced_request_stream",
]
