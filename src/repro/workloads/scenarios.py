"""Shared-object scenario kinds: what objects exist and what requests do.

A :class:`Scenario` binds an abstract :class:`~repro.workloads.spec.Request`
stream to concrete shared objects and operations, via the common
:class:`~repro.rts.base.RuntimeSystem` interface — so the same scenario runs
unchanged on the broadcast RTS, the point-to-point RTS, the central-server
baseline and the Ivy DSM baseline.

The built-in kinds cover the access patterns the paper's evaluation and the
cluster-benchmark literature care about:

* ``counter-farm``   — many independent counters; requests spread over them;
* ``kv-table``       — one shared dictionary with get/put traffic;
* ``fifo-queue``     — a producer/consumer job queue (writes produce, reads
  consume via a non-blocking poll — both are RTS-level writes, which makes
  this the broadcast-heaviest scenario);
* ``read-mostly-catalog`` — a preloaded dictionary served almost exclusively
  to readers (replication's best case);
* ``hot-spot``       — every request hits one cell (contention's worst case);
* ``policy-mix``     — a read-mostly catalog next to a write-hot ledger,
  with the ledger pinned to primary-copy management on runtimes that honour
  per-object policies (one cluster, two management strategies at once);
* ``hotspot-shift``  — a counter farm whose hot keys rotate every workload
  phase (or arrival-trace segment), the moving-hotspot pattern that static
  shard placement cannot follow but online rebalancing can;
* ``primary-churn``  — mixed-policy counters whose primary seats are parked
  on reserved victim nodes that crash on a schedule mid-run: the scenario
  that exercises primary-failure recovery end to end (and degrades to
  crash-free traffic on runtimes without takeover support);
* ``rolling-restart`` — mixed-policy counters while every non-client node is
  crashed, recovered and caught back up in sequence: the elasticity loop
  (takeover, rejoin, seat handback) under live traffic;
* ``scale-in``       — a counter farm whose broadcast-group count is merged
  down mid-run via ``remove_shard``, the inverse of the rebalancer's live
  group growth;
* ``bank-transfer``  — guarded accounts with atomic two-account transfers
  through ``rts.transact`` (conservation is the invariant; runtimes without
  transactions fall back to sequential unguarded adjustments);
* ``kv-index``       — a table and its secondary index updated atomically,
  validated entry-for-entry (the mirror only survives concurrent writers if
  the two stores really commit as one);
* ``queue-move``     — producer traffic into an inbox plus atomic
  take-from-inbox/put-to-outbox moves (dequeue and enqueue counts must agree
  exactly);
* ``multi-tenant-noisy-neighbour`` — a counter farm shared by a quiet
  tenant and a noisy one whose open-loop rate far exceeds its token-bucket
  quota: the gateway-tier isolation scenario (quota + weighted fair
  queueing must keep the quiet tenant's p99 flat);
* ``flash-crowd``    — calm / 4x-overload / calm open-loop phases piling
  onto one hot counter: the graceful-degradation scenario (bounded accept
  queues and priority shedding versus the unshed p99 spiral);
* ``diurnal-trace``  — a counter farm driven by an ``arrival_trace`` day
  curve (night / ramp / peak / evening), replayed deterministically.

New kinds register themselves with :class:`ScenarioRegistry` via the
:func:`scenario` class decorator.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Dict, List, Type

from ..errors import ConfigurationError, TransactionAborted
from ..orca.builtin_objects import DictObject, IntObject
from ..rts.base import ObjectHandle, RuntimeSystem
from ..rts.object_model import ObjectSpec, operation
from .spec import PhaseSpec, Request, TenantSpec, WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.process import SimProcess


class PollableQueue(ObjectSpec):
    """A FIFO queue whose dequeue never blocks (workload-friendly consume).

    The classic Orca :class:`~repro.orca.builtin_objects.JobQueue` blocks
    consumers on a guard while the queue is empty; synthetic traffic instead
    wants a bounded-time ``poll`` that returns ``None`` on empty, so client
    loops always terminate.
    """

    def init(self) -> None:
        self.items: List[Any] = []
        self.enqueued = 0
        self.dequeued = 0
        self.empty_polls = 0

    @operation(write=True)
    def put(self, item: Any) -> int:
        self.items.append(item)
        self.enqueued += 1
        return len(self.items)

    @operation(write=True)
    def poll(self) -> Any:
        """Dequeue the oldest item, or return ``None`` when empty."""
        if self.items:
            self.dequeued += 1
            return self.items.pop(0)
        self.empty_polls += 1
        return None

    @operation(write=True, guard=lambda self: bool(self.items))
    def take(self) -> Any:
        """Dequeue the oldest item; the guard rejects an empty queue.

        Unlike ``poll`` this never consumes "nothing" — inside a transaction
        the guard turns move-from-empty into a clean all-or-nothing abort.
        """
        self.dequeued += 1
        return self.items.pop(0)

    @operation(write=False)
    def size(self) -> int:
        return len(self.items)

    @operation(write=False)
    def totals(self) -> Dict[str, int]:
        return {"enqueued": self.enqueued, "dequeued": self.dequeued,
                "empty_polls": self.empty_polls}


class Scenario(ABC):
    """One shared-object traffic scenario, runnable against any runtime."""

    #: Registry key; subclasses set it via the :func:`scenario` decorator.
    kind = "abstract"

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self.handles: List[ObjectHandle] = []

    @classmethod
    def default_spec(cls) -> WorkloadSpec:
        """The workload this scenario is usually driven with."""
        return WorkloadSpec(name=cls.kind)

    def client_nodes(self, cluster) -> List[int]:
        """Node ids that should host workload clients (default: all).

        Scenario kinds that crash machines mid-run (``primary-churn``)
        reserve their victims here, so no client is stranded on a machine
        that is scheduled to die.
        """
        return [node.node_id for node in cluster.nodes]

    @abstractmethod
    def setup(self, rts: RuntimeSystem, proc: "SimProcess") -> None:
        """Create the scenario's shared objects (runs once, before clients)."""

    @abstractmethod
    def perform(self, rts: RuntimeSystem, proc: "SimProcess", request: Request) -> Any:
        """Execute one request against the shared objects."""

    def validate(self, rts: RuntimeSystem, proc: "SimProcess",
                 totals: Dict[str, int]) -> Dict[str, Any]:
        """Post-run consistency check; returns scenario-specific facts.

        ``totals`` carries the runner's request counts (``reads``/``writes``).
        The default implementation returns an empty dict; scenario kinds
        override it to assert invariants like "the counters add up".
        """
        return {}


class ScenarioRegistry:
    """Name -> scenario-class registry with creation helpers."""

    _kinds: Dict[str, Type[Scenario]] = {}

    @classmethod
    def register(cls, kind: str, scenario_class: Type[Scenario]) -> None:
        if kind in cls._kinds:
            raise ConfigurationError(f"scenario kind {kind!r} already registered")
        scenario_class.kind = kind
        cls._kinds[kind] = scenario_class

    @classmethod
    def names(cls) -> List[str]:
        return sorted(cls._kinds)

    @classmethod
    def get(cls, kind: str) -> Type[Scenario]:
        try:
            return cls._kinds[kind]
        except KeyError:
            raise ConfigurationError(
                f"unknown scenario kind {kind!r} (known: {', '.join(cls.names())})"
            ) from None

    @classmethod
    def create(cls, kind: str, spec: "WorkloadSpec | None" = None) -> Scenario:
        """Instantiate ``kind`` with ``spec`` (default: the kind's own spec)."""
        scenario_class = cls.get(kind)
        return scenario_class(spec or scenario_class.default_spec())


def scenario(kind: str):
    """Class decorator registering a :class:`Scenario` subclass under ``kind``."""

    def decorate(scenario_class: Type[Scenario]) -> Type[Scenario]:
        ScenarioRegistry.register(kind, scenario_class)
        return scenario_class

    return decorate


# ---------------------------------------------------------------------- #
# Built-in scenario kinds
# ---------------------------------------------------------------------- #


@scenario("counter-farm")
class CounterFarm(Scenario):
    """``num_keys`` independent counters; key popularity picks which one."""

    def setup(self, rts: RuntimeSystem, proc: "SimProcess") -> None:
        self.handles = [
            rts.create_object(proc, IntObject, (0,), name=f"counter[{i}]")
            for i in range(self.spec.num_keys)
        ]

    def perform(self, rts: RuntimeSystem, proc: "SimProcess", request: Request) -> Any:
        handle = self.handles[request.key]
        if request.is_write:
            return rts.invoke(proc, handle, "add", (1,))
        return rts.invoke(proc, handle, "read")

    def validate(self, rts, proc, totals):
        total = sum(rts.invoke(proc, handle, "read") for handle in self.handles)
        assert total == totals["writes"], (
            f"counter farm lost updates: {total} != {totals['writes']}")
        return {"counter_total": total}


@scenario("kv-table")
class KVTable(Scenario):
    """One shared dictionary; reads look keys up, writes overwrite them."""

    def setup(self, rts: RuntimeSystem, proc: "SimProcess") -> None:
        self.handles = [rts.create_object(proc, DictObject, name="kv-table")]

    def perform(self, rts: RuntimeSystem, proc: "SimProcess", request: Request) -> Any:
        handle = self.handles[0]
        key = f"k{request.key}"
        if request.is_write:
            value: Any = request.seq
            size = self.spec.value_size(request.key)
            if size:
                # Per-key payload weight: the stored value carries the bytes
                # the spec models for this key, so byte-weighted rebalancing
                # sees real payload-size skew on the wire.
                value = f"{request.seq}:" + "v" * size
            return rts.invoke(proc, handle, "store", (key, value))
        return rts.invoke(proc, handle, "lookup", (key,))

    def validate(self, rts, proc, totals):
        size = rts.invoke(proc, self.handles[0], "size")
        assert size <= min(self.spec.num_keys, max(1, totals["writes"])), (
            f"kv table grew beyond its key space: {size}")
        return {"kv_size": size}


@scenario("fifo-queue")
class FifoJobQueue(Scenario):
    """Producer/consumer traffic on a FIFO queue.

    Write requests produce (``put``); read requests consume (``poll``).  Note
    that at the RTS level *both* are write operations — a dequeue mutates
    state on every replica — so this scenario stresses the write path of
    whichever coherence protocol runs it.
    """

    @classmethod
    def default_spec(cls) -> WorkloadSpec:
        # Balanced produce/consume keeps the queue short but never starved.
        return WorkloadSpec(name=cls.kind, read_fraction=0.5)

    def setup(self, rts: RuntimeSystem, proc: "SimProcess") -> None:
        self.handles = [rts.create_object(proc, PollableQueue, name="job-queue")]

    def perform(self, rts: RuntimeSystem, proc: "SimProcess", request: Request) -> Any:
        handle = self.handles[0]
        if request.is_write:
            return rts.invoke(proc, handle, "put", (request.seq,))
        return rts.invoke(proc, handle, "poll")

    def validate(self, rts, proc, totals):
        queue_totals = rts.invoke(proc, self.handles[0], "totals")
        backlog = rts.invoke(proc, self.handles[0], "size")
        assert queue_totals["enqueued"] == totals["writes"]
        assert queue_totals["enqueued"] - queue_totals["dequeued"] == backlog
        return {"backlog": backlog, **queue_totals}


@scenario("read-mostly-catalog")
class ReadMostlyCatalog(Scenario):
    """A preloaded catalog served to readers, with rare in-place updates."""

    @classmethod
    def default_spec(cls) -> WorkloadSpec:
        return WorkloadSpec(name=cls.kind, read_fraction=0.98, num_keys=32,
                            popularity="zipfian", zipf_s=1.2)

    def setup(self, rts: RuntimeSystem, proc: "SimProcess") -> None:
        self.handles = [rts.create_object(proc, DictObject, name="catalog")]
        for key in range(self.spec.num_keys):
            rts.invoke(proc, self.handles[0], "store", (f"k{key}", 0))

    def perform(self, rts: RuntimeSystem, proc: "SimProcess", request: Request) -> Any:
        handle = self.handles[0]
        key = f"k{request.key}"
        if request.is_write:
            return rts.invoke(proc, handle, "store", (key, request.seq))
        return rts.invoke(proc, handle, "lookup", (key,))

    def validate(self, rts, proc, totals):
        size = rts.invoke(proc, self.handles[0], "size")
        assert size == self.spec.num_keys, (f"catalog size changed: {size} != {self.spec.num_keys}")
        return {"catalog_size": size}


@scenario("policy-mix")
class PolicyMix(Scenario):
    """A read-mostly catalog and a write-hot ledger under different policies.

    Reads look up catalog entries (the replication-friendly traffic); writes
    increment one shared ledger (the replication-hostile traffic).  The
    ledger is created with ``policy="primary-invalidate"`` so that, on the
    unified runtime, the two objects run under different management
    strategies in the same cluster; runtimes that manage every object one
    way accept the policy argument and ignore it.
    """

    @classmethod
    def default_spec(cls) -> WorkloadSpec:
        return WorkloadSpec(name=cls.kind, num_keys=16, read_fraction=0.9,
                            popularity="zipfian", zipf_s=1.1)

    def setup(self, rts: RuntimeSystem, proc: "SimProcess") -> None:
        catalog = rts.create_object(proc, DictObject, name="catalog")
        for key in range(self.spec.num_keys):
            rts.invoke(proc, catalog, "store", (f"k{key}", 0))
        ledger = rts.create_object(proc, IntObject, (0,), name="ledger",
                                   policy="primary-invalidate")
        self.handles = [catalog, ledger]

    def perform(self, rts: RuntimeSystem, proc: "SimProcess", request: Request) -> Any:
        catalog, ledger = self.handles
        if request.is_write:
            return rts.invoke(proc, ledger, "add", (1,))
        return rts.invoke(proc, catalog, "lookup", (f"k{request.key}",))

    def validate(self, rts, proc, totals):
        catalog, ledger = self.handles
        total = rts.invoke(proc, ledger, "read")
        size = rts.invoke(proc, catalog, "size")
        assert total == totals["writes"], (f"ledger lost updates: {total} != {totals['writes']}")
        assert size == self.spec.num_keys, (f"catalog size changed: {size} != {self.spec.num_keys}")
        facts = {"ledger_total": total, "catalog_size": size}
        policy_of = getattr(rts, "policy_of", None)
        if policy_of is not None:
            facts["policies"] = {h.name: policy_of(h) for h in self.handles}
        return facts


@scenario("hotspot-shift")
class HotspotShift(Scenario):
    """A counter farm whose hot keys rotate with the workload phase.

    The sampled key is rotated by ``phase * stride`` before it picks a
    counter, so the Zipf-hottest objects are different in every phase (and
    every arrival-trace segment).  The stride is chosen so consecutive
    phases land the hotspot on a *different* shard under the id-hash
    placement — the moving hotspot a static placement cannot follow.
    """

    @classmethod
    def default_spec(cls) -> WorkloadSpec:
        return WorkloadSpec(name=cls.kind, num_keys=16, popularity="zipfian",
                            zipf_s=1.3, read_fraction=0.5,
                            client_model="open",
                            arrival_trace=((0.02, 800.0), (0.02, 800.0),
                                           (0.02, 800.0)))

    @property
    def stride(self) -> int:
        # num_keys // 4 + 1 is coprime-ish with the usual shard counts, so
        # the rotated hotspot does not stay pinned to one group.
        return max(1, self.spec.num_keys // 4 + 1)

    def _counter_for(self, request: Request) -> int:
        return (request.key + request.phase * self.stride) % self.spec.num_keys

    def setup(self, rts: RuntimeSystem, proc: "SimProcess") -> None:
        self.handles = [
            rts.create_object(proc, IntObject, (0,), name=f"counter[{i}]")
            for i in range(self.spec.num_keys)
        ]

    def perform(self, rts: RuntimeSystem, proc: "SimProcess", request: Request) -> Any:
        handle = self.handles[self._counter_for(request)]
        if request.is_write:
            return rts.invoke(proc, handle, "add", (1,))
        return rts.invoke(proc, handle, "read")

    def validate(self, rts, proc, totals):
        total = sum(rts.invoke(proc, handle, "read") for handle in self.handles)
        assert total == totals["writes"], (
            f"shifting counter farm lost updates: {total} != {totals['writes']}")
        return {"counter_total": total}


@scenario("primary-churn")
class PrimaryChurn(Scenario):
    """Counters under every management policy while their primaries die.

    The scenario creates ``num_keys`` counters cycling through all four
    management policies, parks the primary-copy counters' seats on reserved
    *victim* nodes (which host no clients), and kills those victims on a
    fixed schedule while the request mix keeps flowing.  On runtimes with
    primary-failure recovery (the unified runtime on a broadcast-capable
    network) every counter must survive with exactly-once semantics — the
    ``validate`` hook checks conservation.  On runtimes without takeover
    support the schedule is skipped and the scenario degrades to plain
    mixed-policy counter traffic, so it still runs everywhere.
    """

    #: Policies assigned round-robin over the counters.
    POLICIES = ("primary-invalidate", "primary-update", "broadcast", "adaptive")
    #: Virtual times at which the victims die, one entry per victim.
    crash_times = (0.004, 0.009)

    def __init__(self, spec: WorkloadSpec) -> None:
        super().__init__(spec)
        self.churn_active = False
        self.victims: List[int] = []

    @classmethod
    def default_spec(cls) -> WorkloadSpec:
        # A little think time stretches the run across the crash schedule.
        return WorkloadSpec(name=cls.kind, num_keys=8, read_fraction=0.5, think_time=0.0005)

    def _pick_victims(self, cluster) -> List[int]:
        count = min(len(self.crash_times), max(0, cluster.num_nodes - 2))
        return [cluster.nodes[-1 - i].node_id for i in range(count)]

    def client_nodes(self, cluster) -> List[int]:
        reserved = set(self._pick_victims(cluster))
        return [node.node_id for node in cluster.nodes if node.node_id not in reserved]

    @staticmethod
    def _supports_churn(rts: RuntimeSystem) -> bool:
        """Can this runtime survive (and therefore stage) primary crashes?"""
        return hasattr(rts, "relocate_primary") and rts.cluster.network.supports_broadcast

    def setup(self, rts: RuntimeSystem, proc: "SimProcess") -> None:
        is_hybrid = hasattr(rts, "relocate_primary")
        self.churn_active = self._supports_churn(rts)
        if is_hybrid and not rts.cluster.network.supports_broadcast:
            # Per-object policies that include broadcast management need a
            # broadcast-capable network; fall back to the runtime's default.
            policies: Any = (None,) * len(self.POLICIES)
        else:
            policies = self.POLICIES
        self.handles = [
            rts.create_object(proc, IntObject, (0,), name=f"churn[{i}]",
                              policy=policies[i % len(policies)])
            for i in range(self.spec.num_keys)
        ]
        if not self.churn_active:
            return
        cluster = rts.cluster
        self.victims = self._pick_victims(cluster)
        if not self.victims:
            self.churn_active = False
            return
        # Park every primary seat on a victim, round-robin, so each crash
        # takes a live primary down with clients still writing through it.
        seat = 0
        for handle in self.handles:
            if rts.policy_of(handle) in ("primary-invalidate", "primary-update"):
                rts.relocate_primary(proc, handle, target=self.victims[seat % len(self.victims)])
                seat += 1

        def crasher() -> None:
            cproc = cluster.sim.current_process
            for crash_at, victim in zip(self.crash_times, self.victims):
                if cproc.local_time < crash_at:
                    cproc.hold(crash_at - cproc.local_time)
                cluster.node(victim).crash()

        host = self.client_nodes(cluster)[0]
        cluster.node(host).kernel.spawn_thread(crasher, name="primary-churn", daemon=True)

    def perform(self, rts: RuntimeSystem, proc: "SimProcess", request: Request) -> Any:
        handle = self.handles[request.key]
        if request.is_write:
            return rts.invoke(proc, handle, "add", (1,))
        return rts.invoke(proc, handle, "read")

    def validate(self, rts, proc, totals):
        total = sum(rts.invoke(proc, handle, "read") for handle in self.handles)
        assert total == totals["writes"], (
            f"churned counters lost or duplicated updates: "
            f"{total} != {totals['writes']}")
        facts: Dict[str, Any] = {"counter_total": total, "churn_active": self.churn_active}
        if self.churn_active:
            facts["crashed_nodes"] = [
                victim for victim in self.victims
                if not rts.cluster.node(victim).alive]
            facts["recoveries"] = rts.stats.primary_recoveries
        return facts


@scenario("rolling-restart")
class RollingRestart(Scenario):
    """Mixed-policy counters while every non-client node restarts in turn.

    Clients live on the first two machines only; every other machine is a
    *victim* that gets crashed, dwells dead for a moment, recovers with its
    memory wiped, and is polled until the runtime reports it caught back up
    (history reseeded, membership re-armed) — then the next victim goes
    down.  Primary seats are parked round-robin on the victims up front so
    each crash forces a takeover and each rejoin re-seats real object
    copies.  ``validate`` asserts conservation: a full rolling restart of
    the cluster must lose or duplicate nothing.

    On runtimes without a rejoin protocol (no ``is_caught_up``) the restart
    schedule is skipped and the scenario degrades to plain mixed-policy
    counter traffic.
    """

    #: Policies assigned round-robin over the counters.
    POLICIES = ("primary-invalidate", "primary-update", "broadcast", "adaptive")
    #: Virtual time of the first crash.
    first_crash_at = 0.003
    #: How long a victim stays dead before it is recovered.
    dwell = 0.0015
    #: Pause between a victim reporting caught-up and the next crash.
    gap = 0.001
    #: Catch-up poll interval (and its safety bound, in polls).
    poll = 0.0005
    max_polls = 2000

    def __init__(self, spec: WorkloadSpec) -> None:
        super().__init__(spec)
        self.churn_active = False
        self.victims: List[int] = []
        self.restarted: List[int] = []

    @classmethod
    def default_spec(cls) -> WorkloadSpec:
        # Think time stretches the run across the whole restart schedule.
        return WorkloadSpec(name=cls.kind, num_keys=8, read_fraction=0.5, think_time=0.0005)

    def _pick_victims(self, cluster) -> List[int]:
        # Keep the first two machines for clients; roll everything else.
        return [node.node_id for node in cluster.nodes[2:]]

    def client_nodes(self, cluster) -> List[int]:
        reserved = set(self._pick_victims(cluster))
        return [node.node_id for node in cluster.nodes if node.node_id not in reserved]

    @staticmethod
    def _supports_restart(rts: RuntimeSystem) -> bool:
        """Can this runtime catch a wiped machine back up after recovery?"""
        return hasattr(rts, "is_caught_up") and rts.cluster.network.supports_broadcast

    def setup(self, rts: RuntimeSystem, proc: "SimProcess") -> None:
        is_hybrid = hasattr(rts, "relocate_primary")
        self.churn_active = self._supports_restart(rts)
        if is_hybrid and not rts.cluster.network.supports_broadcast:
            policies: Any = (None,) * len(self.POLICIES)
        else:
            policies = self.POLICIES
        self.handles = [
            rts.create_object(proc, IntObject, (0,), name=f"roll[{i}]",
                              policy=policies[i % len(policies)])
            for i in range(self.spec.num_keys)
        ]
        if not self.churn_active:
            return
        cluster = rts.cluster
        self.victims = self._pick_victims(cluster)
        if not self.victims:
            self.churn_active = False
            return
        # Park the primary seats on the victims so every restart takes a
        # live primary down and every rejoin has seats to re-seat.
        seat = 0
        for handle in self.handles:
            if rts.policy_of(handle) in ("primary-invalidate", "primary-update"):
                rts.relocate_primary(proc, handle, target=self.victims[seat % len(self.victims)])
                seat += 1

        def restarter() -> None:
            rproc = cluster.sim.current_process
            if rproc.local_time < self.first_crash_at:
                rproc.hold(self.first_crash_at - rproc.local_time)
            for victim in self.victims:
                cluster.node(victim).crash()
                rproc.hold(self.dwell)
                cluster.node(victim).recover()
                for _ in range(self.max_polls):
                    if rts.is_caught_up(victim):
                        break
                    rproc.hold(self.poll)
                else:  # pragma: no cover - deterministic safety bound
                    raise AssertionError(f"node {victim} never caught up after recovery")
                self.restarted.append(victim)
                rproc.hold(self.gap)

        host = self.client_nodes(cluster)[0]
        cluster.node(host).kernel.spawn_thread(restarter, name="rolling-restart", daemon=True)

    def perform(self, rts: RuntimeSystem, proc: "SimProcess", request: Request) -> Any:
        handle = self.handles[request.key]
        if request.is_write:
            return rts.invoke(proc, handle, "add", (1,))
        return rts.invoke(proc, handle, "read")

    def validate(self, rts, proc, totals):
        if self.churn_active:
            # Clients may drain before the last victim finishes its
            # restart; the schedule must still run to completion (the
            # restarter is a daemon thread), so wait it out, bounded.
            for _ in range(self.max_polls):
                if len(self.restarted) == len(self.victims):
                    break
                proc.hold(self.poll)
        total = sum(rts.invoke(proc, handle, "read") for handle in self.handles)
        assert total == totals["writes"], (
            f"rolling restart lost or duplicated updates: "
            f"{total} != {totals['writes']}")
        facts: Dict[str, Any] = {"counter_total": total, "churn_active": self.churn_active}
        if self.churn_active:
            assert self.restarted == self.victims, (
                f"restart schedule incomplete: {self.restarted} != "
                f"{self.victims}")
            dead = [n.node_id for n in rts.cluster.nodes if not n.alive]
            assert not dead, f"nodes still dead after rolling restart: {dead}"
            facts["restarted_nodes"] = list(self.restarted)
            facts["rejoins"] = rts.stats.node_rejoins
            facts["reseeded"] = sum(r.objects_reseeded for r in rts.rejoins)
        return facts


@scenario("scale-in")
class ScaleIn(Scenario):
    """A counter farm whose broadcast-group count shrinks under load.

    Run it with ``num_shards`` > 1: a shrinker thread merges the
    highest-numbered active group away at each scheduled time via
    ``remove_shard`` while the request mix keeps flowing, so objects are
    evacuated through their group's total order mid-traffic.  ``validate``
    asserts conservation.  On runtimes without live group removal (or with
    a single group) the schedule degrades to plain counter traffic.
    """

    #: Virtual times at which one group is merged away.
    shrink_times = (0.004, 0.008)

    def __init__(self, spec: WorkloadSpec) -> None:
        super().__init__(spec)
        self.scale_active = False

    @classmethod
    def default_spec(cls) -> WorkloadSpec:
        return WorkloadSpec(name=cls.kind, num_keys=16, read_fraction=0.5, think_time=0.0005)

    @staticmethod
    def _supports_scale_in(rts: RuntimeSystem) -> bool:
        return (hasattr(rts, "remove_shard")
                and rts.cluster.network.supports_broadcast
                and getattr(rts, "router", None) is not None
                and rts.router.num_active_shards > 1)

    def setup(self, rts: RuntimeSystem, proc: "SimProcess") -> None:
        self.handles = [
            rts.create_object(proc, IntObject, (0,), name=f"farm[{i}]")
            for i in range(self.spec.num_keys)
        ]
        self.scale_active = self._supports_scale_in(rts)
        if not self.scale_active:
            return
        cluster = rts.cluster

        def shrinker() -> None:
            sproc = cluster.sim.current_process
            for shrink_at in self.shrink_times:
                if sproc.local_time < shrink_at:
                    sproc.hold(shrink_at - sproc.local_time)
                active = rts.router.active_shards()
                if len(active) <= 1:
                    break
                rts.remove_shard(sproc, active[-1])

        cluster.node(0).kernel.spawn_thread(shrinker, name="scale-in", daemon=True)

    def perform(self, rts: RuntimeSystem, proc: "SimProcess", request: Request) -> Any:
        handle = self.handles[request.key]
        if request.is_write:
            return rts.invoke(proc, handle, "add", (1,))
        return rts.invoke(proc, handle, "read")

    def validate(self, rts, proc, totals):
        total = sum(rts.invoke(proc, handle, "read") for handle in self.handles)
        assert total == totals["writes"], (f"scale-in lost updates: {total} != {totals['writes']}")
        facts: Dict[str, Any] = {"counter_total": total, "scale_active": self.scale_active}
        if self.scale_active:
            facts["shards_removed"] = rts.stats.shards_removed
            facts["active_shards"] = rts.router.num_active_shards
            facts["removed"] = list(rts.removed_shards)
        return facts


@scenario("hot-spot")
class HotSpotCell(Scenario):
    """Every request, read or write, hits one shared cell (max contention)."""

    @classmethod
    def default_spec(cls) -> WorkloadSpec:
        return WorkloadSpec(name=cls.kind, num_keys=1, read_fraction=0.5)

    def setup(self, rts: RuntimeSystem, proc: "SimProcess") -> None:
        self.handles = [rts.create_object(proc, IntObject, (0,), name="hot-cell")]

    def perform(self, rts: RuntimeSystem, proc: "SimProcess", request: Request) -> Any:
        handle = self.handles[0]
        if request.is_write:
            return rts.invoke(proc, handle, "add", (1,))
        return rts.invoke(proc, handle, "read")

    def validate(self, rts, proc, totals):
        value = rts.invoke(proc, self.handles[0], "read")
        assert value == totals["writes"], (f"hot cell lost updates: {value} != {totals['writes']}")
        return {"cell_value": value}


# ---------------------------------------------------------------------- #
# Transactional scenario kinds
# ---------------------------------------------------------------------- #


def supports_transactions(rts: RuntimeSystem) -> bool:
    """Can this runtime commit cross-object groups atomically?

    ``transact`` sequences its prepare/decide records through the broadcast
    groups, so besides the method itself the interconnect must support
    broadcast.  Scenario kinds degrade to sequential per-object writes when
    this is false, so they still run on every runtime.
    """
    return hasattr(rts, "transact") and rts.cluster.network.supports_broadcast


class BankAccount(ObjectSpec):
    """An account whose withdrawals are guarded against overdraft."""

    def init(self, balance: int = 0) -> None:
        self.balance = balance

    @operation(write=False)
    def read(self) -> int:
        return self.balance

    @operation(write=True)
    def deposit(self, amount: int) -> int:
        self.balance += amount
        return self.balance

    @operation(write=True, guard=lambda self, amount: self.balance >= amount)
    def withdraw(self, amount: int) -> int:
        self.balance -= amount
        return self.balance

    @operation(write=True)
    def adjust(self, delta: int) -> int:
        """Unguarded balance change (the non-transactional fallback path)."""
        self.balance += delta
        return self.balance


@scenario("bank-transfer")
class BankTransfer(Scenario):
    """Guarded accounts with atomic two-account transfers.

    A write request moves a small amount from the sampled account to a
    deterministic partner via ``rts.transact`` — guarded withdraw plus
    deposit as one all-or-nothing group — so the invariant is exact
    conservation: the balances always sum to the initial endowment, at
    every settle point, no matter which nodes crash mid-protocol.
    Insufficient funds abort the transfer cleanly (counted, not retried).
    Runtimes without transactions fall back to a sequential
    deposit-then-adjust pair, which conserves in crash-free runs but is
    not atomic — the degraded mode keeps the scenario runnable everywhere.
    """

    INITIAL_BALANCE = 100

    def __init__(self, spec: WorkloadSpec) -> None:
        super().__init__(spec)
        self.transactional = False
        self.transfers = 0
        self.aborted = 0

    @classmethod
    def default_spec(cls) -> WorkloadSpec:
        return WorkloadSpec(name=cls.kind, num_keys=8, read_fraction=0.5)

    def setup(self, rts: RuntimeSystem, proc: "SimProcess") -> None:
        self.transactional = supports_transactions(rts)
        self.handles = [
            rts.create_object(proc, BankAccount, (self.INITIAL_BALANCE,),
                              name=f"acct[{i}]")
            for i in range(self.spec.num_keys)
        ]

    def _partner(self, request: Request) -> int:
        if self.spec.num_keys < 2:
            return request.key
        offset = 1 + request.seq % (self.spec.num_keys - 1)
        return (request.key + offset) % self.spec.num_keys

    def perform(self, rts: RuntimeSystem, proc: "SimProcess", request: Request) -> Any:
        src = self.handles[request.key]
        if not request.is_write:
            return rts.invoke(proc, src, "read")
        dst = self.handles[self._partner(request)]
        amount = request.seq % 5 + 1
        if self.transactional:
            try:
                result = rts.transact(proc, [(src, "withdraw", (amount,)),
                                             (dst, "deposit", (amount,))],
                                      on_guard="abort")
            except TransactionAborted:
                self.aborted += 1
                return None
            self.transfers += 1
            return result
        # Sequential fallback: deposit first, then an unguarded adjust, so
        # no client ever blocks on a drained account.  Conserving, but not
        # atomic — which is exactly the contrast the scenario documents.
        rts.invoke(proc, dst, "deposit", (amount,))
        self.transfers += 1
        return rts.invoke(proc, src, "adjust", (-amount,))

    def validate(self, rts, proc, totals):
        balances = [rts.invoke(proc, handle, "read") for handle in self.handles]
        total = sum(balances)
        endowment = self.INITIAL_BALANCE * self.spec.num_keys
        assert total == endowment, (f"bank transfers broke conservation: {total} != {endowment}")
        facts: Dict[str, Any] = {
            "bank_total": total,
            "transfers_committed": self.transfers,
            "transfers_aborted": self.aborted,
            "transactional": self.transactional,
        }
        return facts


@scenario("kv-index")
class KVIndexed(Scenario):
    """A table and its secondary index kept consistent atomically.

    Every write stores the same entry into the primary table *and* the
    index object as one transaction.  With concurrent writers racing on
    hot keys, the mirror ``table[k] == index[k]`` (for every key, at any
    settle point) survives only if the two stores really commit as one
    — two sequential writes can interleave as T1.table, T2.table,
    T2.index, T1.index and leave the index pointing at a value the table
    no longer holds.  That makes the validation a direct serializability
    check.  Runtimes without transactions use the sequential path, and
    validation reports (rather than asserts) the mirror.
    """

    def __init__(self, spec: WorkloadSpec) -> None:
        super().__init__(spec)
        self.transactional = False

    @classmethod
    def default_spec(cls) -> WorkloadSpec:
        return WorkloadSpec(name=cls.kind, num_keys=8, read_fraction=0.7,
                            popularity="zipfian", zipf_s=1.2)

    def setup(self, rts: RuntimeSystem, proc: "SimProcess") -> None:
        self.transactional = supports_transactions(rts)
        table = rts.create_object(proc, DictObject, name="kv-primary")
        index = rts.create_object(proc, DictObject, name="kv-index")
        self.handles = [table, index]

    def perform(self, rts: RuntimeSystem, proc: "SimProcess", request: Request) -> Any:
        table, index = self.handles
        key = f"k{request.key}"
        if not request.is_write:
            return rts.invoke(proc, table, "lookup", (key,))
        value = request.seq
        if self.transactional:
            return rts.transact(proc, [(table, "store", (key, value)),
                                       (index, "store", (key, value))])
        rts.invoke(proc, table, "store", (key, value))
        return rts.invoke(proc, index, "store", (key, value))

    def validate(self, rts, proc, totals):
        table, index = self.handles
        mismatches = 0
        for k in range(self.spec.num_keys):
            key = f"k{k}"
            main = rts.invoke(proc, table, "lookup", (key,))
            mirror = rts.invoke(proc, index, "lookup", (key,))
            if main != mirror:
                mismatches += 1
        if self.transactional:
            assert mismatches == 0, (f"secondary index diverged from table on {mismatches} keys")
        return {"index_mismatches": mismatches,
                "table_size": rts.invoke(proc, table, "size"),
                "transactional": self.transactional}


@scenario("queue-move")
class QueueMove(Scenario):
    """Producer traffic plus atomic inbox-to-outbox moves.

    Even-sequence writes produce into the inbox; odd-sequence writes move
    one item to the outbox via a transaction pairing the inbox's guarded
    ``take`` with an outbox ``put`` — a move from an empty inbox aborts
    cleanly instead of conjuring an item.  The invariant is exact flow
    accounting: inbox dequeues equal outbox enqueues equal committed
    moves, and the two backlogs partition everything produced.  Reads
    poll queue sizes.  Without transactions the move degrades to
    poll-then-put (skipping the put when the poll came up empty).
    """

    def __init__(self, spec: WorkloadSpec) -> None:
        super().__init__(spec)
        self.transactional = False
        self.produced = 0
        self.moves = 0
        self.aborted = 0

    @classmethod
    def default_spec(cls) -> WorkloadSpec:
        return WorkloadSpec(name=cls.kind, num_keys=2, read_fraction=0.3)

    def setup(self, rts: RuntimeSystem, proc: "SimProcess") -> None:
        self.transactional = supports_transactions(rts)
        inbox = rts.create_object(proc, PollableQueue, name="inbox")
        outbox = rts.create_object(proc, PollableQueue, name="outbox")
        self.handles = [inbox, outbox]

    def perform(self, rts: RuntimeSystem, proc: "SimProcess", request: Request) -> Any:
        inbox, outbox = self.handles
        if not request.is_write:
            return rts.invoke(proc, self.handles[request.key % 2], "size")
        if request.seq % 2 == 0:
            self.produced += 1
            return rts.invoke(proc, inbox, "put", (request.seq,))
        if self.transactional:
            try:
                result = rts.transact(proc, [(inbox, "take"),
                                             (outbox, "put", (request.seq,))],
                                      on_guard="abort")
            except TransactionAborted:
                self.aborted += 1
                return None
            self.moves += 1
            return result
        item = rts.invoke(proc, inbox, "poll")
        if item is None:
            self.aborted += 1
            return None
        self.moves += 1
        return rts.invoke(proc, outbox, "put", (item,))

    def validate(self, rts, proc, totals):
        inbox, outbox = self.handles
        totals_in = rts.invoke(proc, inbox, "totals")
        totals_out = rts.invoke(proc, outbox, "totals")
        backlog_in = rts.invoke(proc, inbox, "size")
        backlog_out = rts.invoke(proc, outbox, "size")
        assert totals_in["enqueued"] == self.produced, (
            f"inbox lost produced items: {totals_in['enqueued']} != "
            f"{self.produced}")
        assert totals_in["dequeued"] == totals_out["enqueued"] == self.moves, (
            f"moves are not atomic: took {totals_in['dequeued']}, delivered "
            f"{totals_out['enqueued']}, committed {self.moves}")
        assert backlog_in == self.produced - self.moves
        assert backlog_out == self.moves
        return {"produced": self.produced, "moves": self.moves,
                "moves_aborted": self.aborted, "inbox_backlog": backlog_in,
                "outbox_backlog": backlog_out,
                "transactional": self.transactional}


# ---------------------------------------------------------------------- #
# Gateway-tier scenario kinds
# ---------------------------------------------------------------------- #


@scenario("multi-tenant-noisy-neighbour")
class NoisyNeighbour(CounterFarm):
    """A quiet tenant and a rate-capped noisy one sharing a counter farm.

    The noisy tenant's open-loop sessions offer far more traffic than its
    token-bucket quota allows; the gateway tier must shed the excess at
    admission and fair-queue what remains, so the quiet tenant's latency
    barely moves compared to running alone.  Run it through
    ``WorkloadRunner(gateway=...)``; under the classic runner the tenant
    list is inert and this degrades to a plain open-loop counter farm.
    """

    @classmethod
    def default_spec(cls) -> WorkloadSpec:
        return WorkloadSpec(
            name=cls.kind, num_keys=16, read_fraction=0.9,
            client_model="open", arrival_rate=150.0, ops_per_client=30,
            tenants=(
                TenantSpec(name="quiet", sessions=4, weight=1.0, priority=1),
                TenantSpec(name="noisy", sessions=8, weight=1.0, priority=0,
                           rate=300.0, burst=30.0, arrival_rate=600.0),
            ))


@scenario("flash-crowd")
class FlashCrowd(CounterFarm):
    """Calm / overload / calm arrival phases piling onto one hot counter.

    The middle phase multiplies the open-loop arrival rate (4x by
    default) and redirects every request to counter 0, the "everyone
    refreshes the same page" shape.  With a bounded accept queue (and
    priority shedding for the standard tenant) admitted-request p99 stays
    near the unloaded cell's; without admission control the backlog — and
    p99 — grows with the length of the crowd phase.
    """

    #: Crowd-phase arrival-rate multiplier over the calm phases.
    overload = 4.0

    @classmethod
    def default_spec(cls) -> WorkloadSpec:
        calm_rate = 100.0
        return WorkloadSpec(
            name=cls.kind, num_keys=8, read_fraction=0.9,
            client_model="open", arrival_rate=calm_rate,
            phases=(
                PhaseSpec(ops_per_client=10, arrival_rate=calm_rate),
                PhaseSpec(ops_per_client=40,
                          arrival_rate=calm_rate * cls.overload),
                PhaseSpec(ops_per_client=10, arrival_rate=calm_rate),
            ),
            tenants=(
                TenantSpec(name="premium", sessions=2, weight=2.0, priority=1),
                TenantSpec(name="standard", sessions=6, weight=1.0, priority=0),
            ))

    def perform(self, rts: RuntimeSystem, proc: "SimProcess", request: Request) -> Any:
        key = 0 if request.phase == 1 else request.key
        handle = self.handles[key]
        if request.is_write:
            return rts.invoke(proc, handle, "add", (1,))
        return rts.invoke(proc, handle, "read")


@scenario("diurnal-trace")
class DiurnalTrace(CounterFarm):
    """A counter farm under a deterministic day-curve ``arrival_trace``.

    Night trickle, morning ramp, midday peak, evening tail — replayed as
    piecewise-Poisson segments, so one run sweeps the gateway through
    idle, nominal and saturated operating points.  The trace segment index
    is the request's ``phase``.
    """

    @classmethod
    def default_spec(cls) -> WorkloadSpec:
        return WorkloadSpec(
            name=cls.kind, num_keys=16, popularity="zipfian", zipf_s=1.1,
            read_fraction=0.9, client_model="open",
            arrival_trace=((0.02, 50.0),    # night
                           (0.02, 250.0),   # morning ramp
                           (0.02, 600.0),   # midday peak
                           (0.02, 150.0)),  # evening
            tenants=(
                TenantSpec(name="interactive", sessions=4, weight=2.0,
                           priority=1),
                TenantSpec(name="batch", sessions=4, weight=1.0, priority=0,
                           rate=400.0),
            ))
