"""Sequential ATPG: PODEM over the whole fault list, with optional fault simulation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from .circuit import Circuit
from .faults import Fault, all_faults, fault_simulate
from .podem import podem


@dataclass
class SequentialAtpgResult:
    """Result of a sequential ATPG run."""

    patterns: List[Dict[str, str]]
    covered: Set[Fault]
    untestable: List[Fault]
    aborted: List[Fault]
    work_units: int

    @property
    def coverage(self) -> float:
        total = len(self.covered) + len(self.untestable) + len(self.aborted)
        return len(self.covered) / total if total else 0.0


def solve_sequential_atpg(circuit: Circuit, faults: Optional[List[Fault]] = None,
                          use_fault_simulation: bool = False,
                          max_backtracks: int = 200) -> SequentialAtpgResult:
    """Generate patterns for every fault, one CPU, optionally with fault simulation."""
    fault_list = list(faults) if faults is not None else all_faults(circuit)
    covered: Set[Fault] = set()
    patterns: List[Dict[str, str]] = []
    untestable: List[Fault] = []
    aborted: List[Fault] = []
    work = 0

    for fault in fault_list:
        if fault in covered:
            continue
        result = podem(circuit, fault, max_backtracks=max_backtracks)
        work += result.work_units
        if result.pattern is None:
            if result.backtracks > max_backtracks:
                aborted.append(fault)
            else:
                untestable.append(fault)
            continue
        patterns.append(result.pattern)
        covered.add(fault)
        if use_fault_simulation:
            detected, sim_work = fault_simulate(circuit, result.pattern, fault_list,
                                                skip=covered)
            work += sim_work
            covered.update(detected)
    return SequentialAtpgResult(
        patterns=patterns,
        covered=covered,
        untestable=untestable,
        aborted=aborted,
        work_units=work,
    )
