"""PODEM (Path-Oriented DEcision Making) test generation (Goel, 1981).

PODEM searches over primary-input assignments only: it repeatedly picks an
*objective* (first: activate the fault; later: propagate the D-frontier),
*backtraces* the objective to an unassigned primary input, assigns it,
re-implies the whole circuit, and backtracks on failure.  The implementation
is deliberately straightforward — the paper's interest is in parallelising
over the fault list, not in ATPG heuristics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .circuit import CONTROLLING_VALUE, Circuit, D, DB, Gate, INVERTING, ONE, X, ZERO
from .faults import Fault


@dataclass
class PodemResult:
    """Outcome of one PODEM run."""

    fault: Fault
    pattern: Optional[Dict[str, str]]
    backtracks: int
    work_units: int

    @property
    def testable(self) -> bool:
        return self.pattern is not None


def _fault_activated(values: Dict[str, str], fault: Fault) -> bool:
    return values.get(fault.line) in (D, DB)


def _d_frontier(circuit: Circuit, values: Dict[str, str]) -> List[Gate]:
    """Gates whose output is X but that have a D/DB on some input."""
    frontier = []
    for gate in circuit.gates:
        if values.get(gate.name) != X:
            continue
        if any(values.get(src) in (D, DB) for src in gate.inputs):
            frontier.append(gate)
    return frontier


def _fault_at_output(circuit: Circuit, values: Dict[str, str]) -> bool:
    return any(values.get(po) in (D, DB) for po in circuit.primary_outputs)


def _objective(circuit: Circuit, values: Dict[str, str], fault: Fault) -> Optional[Tuple[str, str]]:
    """The next (line, value) goal: activate the fault, then drive the D-frontier."""
    if not _fault_activated(values, fault):
        if values.get(fault.line) != X:
            return None  # the fault site is already fixed at the stuck value
        return fault.line, (ONE if fault.stuck_at == ZERO else ZERO)
    frontier = _d_frontier(circuit, values)
    if not frontier:
        return None
    gate = frontier[0]
    for src in gate.inputs:
        if values.get(src) == X:
            controlling = CONTROLLING_VALUE.get(gate.gate_type)
            if controlling is None:
                # XOR/NOT/BUF: any defined value lets the difference through.
                return src, ZERO
            non_controlling = ONE if controlling == ZERO else ZERO
            return src, non_controlling
    return None


def _backtrace(circuit: Circuit, line: str, value: str,
               values: Dict[str, str]) -> Optional[Tuple[str, str]]:
    """Walk an objective back to an unassigned primary input."""
    current_line, current_value = line, value
    for _ in range(10_000):  # cycle-free by construction; bound as a safety net
        gate = circuit.gate_for(current_line)
        if gate is None:
            if values.get(current_line) != X:
                return None
            return current_line, current_value
        if INVERTING.get(gate.gate_type, False):
            current_value = ONE if current_value == ZERO else ZERO
        # Prefer an unassigned input; the "easiest" heuristic is simply the first.
        next_line = None
        for src in gate.inputs:
            if values.get(src) == X:
                next_line = src
                break
        if next_line is None:
            return None
        current_line = next_line
    return None


def podem(circuit: Circuit, fault: Fault, max_backtracks: int = 200) -> PodemResult:
    """Generate a test pattern for ``fault`` (or report it untestable/aborted)."""
    assignment: Dict[str, str] = {}
    decision_stack: List[Tuple[str, str, bool]] = []  # (pi, value, tried_both)
    backtracks = 0
    work = 0

    def imply() -> Dict[str, str]:
        nonlocal work
        values, evaluations = circuit.simulate(assignment, fault=(fault.line, fault.stuck_at))
        work += evaluations
        return values

    values = imply()
    while True:
        if _fault_at_output(circuit, values):
            pattern = {pi: assignment.get(pi, X) for pi in circuit.primary_inputs}
            return PodemResult(fault, pattern, backtracks, work)

        objective = _objective(circuit, values, fault)
        pi_assignment = None
        if objective is not None:
            pi_assignment = _backtrace(circuit, objective[0], objective[1], values)

        if pi_assignment is not None:
            pi, value = pi_assignment
            assignment[pi] = value
            decision_stack.append((pi, value, False))
            values = imply()
            continue

        # No way forward: backtrack.
        backtracked = False
        while decision_stack:
            pi, value, tried_both = decision_stack.pop()
            if tried_both:
                del assignment[pi]
                continue
            flipped = ONE if value == ZERO else ZERO
            assignment[pi] = flipped
            decision_stack.append((pi, flipped, True))
            backtracks += 1
            values = imply()
            backtracked = True
            break
        if not backtracked:
            return PodemResult(fault, None, backtracks, work)
        if backtracks > max_backtracks:
            return PodemResult(fault, None, backtracks, work)
