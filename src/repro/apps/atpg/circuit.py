"""Combinational circuits: gates, netlists, levelization and 5-valued simulation.

Signals use the classic D-calculus values:

* ``0`` / ``1`` — known logic values,
* ``X`` — unassigned,
* ``D`` — 1 in the good circuit, 0 in the faulty circuit,
* ``DB`` — 0 in the good circuit, 1 in the faulty circuit.

The same evaluator supports plain binary simulation (no X/D present), which
the fault simulator uses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...errors import ApplicationError

# Signal values.
ZERO, ONE, X, D, DB = "0", "1", "X", "D", "DB"

#: Gate types and their controlling / inversion properties.
GATE_TYPES = ("AND", "OR", "NAND", "NOR", "NOT", "BUF", "XOR")

CONTROLLING_VALUE = {"AND": ZERO, "NAND": ZERO, "OR": ONE, "NOR": ONE}
INVERTING = {"NAND": True, "NOR": True, "NOT": True, "AND": False, "OR": False,
             "BUF": False, "XOR": False}


def _invert(value: str) -> str:
    return {ZERO: ONE, ONE: ZERO, D: DB, DB: D, X: X}[value]


def _to_good_bad(value: str) -> Tuple[Optional[int], Optional[int]]:
    """Split a 5-valued signal into (good-circuit bit, faulty-circuit bit)."""
    return {
        ZERO: (0, 0), ONE: (1, 1), D: (1, 0), DB: (0, 1), X: (None, None),
    }[value]


def _from_good_bad(good: Optional[int], bad: Optional[int]) -> str:
    if good is None or bad is None:
        return X
    return {(0, 0): ZERO, (1, 1): ONE, (1, 0): D, (0, 1): DB}[(good, bad)]


def _eval_binary(gate_type: str, bits: Sequence[Optional[int]]) -> Optional[int]:
    """Evaluate one gate over plain bits (None = unknown)."""
    if gate_type in ("AND", "NAND"):
        if any(b == 0 for b in bits):
            out = 0
        elif any(b is None for b in bits):
            return None
        else:
            out = 1
    elif gate_type in ("OR", "NOR"):
        if any(b == 1 for b in bits):
            out = 1
        elif any(b is None for b in bits):
            return None
        else:
            out = 0
    elif gate_type in ("NOT", "BUF"):
        if bits[0] is None:
            return None
        out = bits[0]
    elif gate_type == "XOR":
        if any(b is None for b in bits):
            return None
        out = 0
        for b in bits:
            out ^= b
    else:  # pragma: no cover - guarded by construction
        raise ApplicationError(f"unknown gate type {gate_type}")
    if gate_type in ("NAND", "NOR", "NOT"):
        out = 1 - out
    return out


def evaluate_gate(gate_type: str, inputs: Sequence[str]) -> str:
    """Evaluate one gate over 5-valued inputs."""
    goods = []
    bads = []
    for value in inputs:
        good, bad = _to_good_bad(value)
        goods.append(good)
        bads.append(bad)
    return _from_good_bad(_eval_binary(gate_type, goods), _eval_binary(gate_type, bads))


@dataclass(frozen=True)
class Gate:
    """One gate: its output line name, type, and input line names."""

    name: str
    gate_type: str
    inputs: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.gate_type not in GATE_TYPES:
            raise ApplicationError(f"unknown gate type {self.gate_type!r}")
        if self.gate_type in ("NOT", "BUF") and len(self.inputs) != 1:
            raise ApplicationError(f"{self.gate_type} takes exactly one input")
        if self.gate_type not in ("NOT", "BUF") and len(self.inputs) < 2:
            raise ApplicationError(f"{self.gate_type} needs at least two inputs")


@dataclass
class Circuit:
    """A combinational circuit: primary inputs, gates (a DAG), primary outputs."""

    primary_inputs: List[str]
    gates: List[Gate]
    primary_outputs: List[str]
    _order: Optional[List[Gate]] = field(default=None, repr=False)
    _fanout: Optional[Dict[str, List[str]]] = field(default=None, repr=False)
    _gate_by_name: Optional[Dict[str, Gate]] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        names = set(self.primary_inputs)
        for gate in self.gates:
            if gate.name in names:
                raise ApplicationError(f"duplicate line name {gate.name!r}")
            names.add(gate.name)
        for gate in self.gates:
            for source in gate.inputs:
                if source not in names:
                    raise ApplicationError(
                        f"gate {gate.name!r} reads undefined line {source!r}"
                    )
        for output in self.primary_outputs:
            if output not in names:
                raise ApplicationError(f"undefined primary output {output!r}")

    # -- structure --------------------------------------------------------- #

    @property
    def lines(self) -> List[str]:
        """Every signal line: primary inputs plus every gate output."""
        return list(self.primary_inputs) + [gate.name for gate in self.gates]

    def gate_for(self, name: str) -> Optional[Gate]:
        if self._gate_by_name is None:
            self._gate_by_name = {gate.name: gate for gate in self.gates}
        return self._gate_by_name.get(name)

    def topological_gates(self) -> List[Gate]:
        """Gates in dependency order (inputs before the gates reading them)."""
        if self._order is not None:
            return self._order
        resolved = set(self.primary_inputs)
        remaining = list(self.gates)
        order: List[Gate] = []
        while remaining:
            progressed = False
            still: List[Gate] = []
            for gate in remaining:
                if all(source in resolved for source in gate.inputs):
                    order.append(gate)
                    resolved.add(gate.name)
                    progressed = True
                else:
                    still.append(gate)
            if not progressed:
                raise ApplicationError("the circuit contains a combinational cycle")
            remaining = still
        self._order = order
        return order

    def fanout(self) -> Dict[str, List[str]]:
        """Map from each line to the gates that read it."""
        if self._fanout is None:
            fanout: Dict[str, List[str]] = {line: [] for line in self.lines}
            for gate in self.gates:
                for source in gate.inputs:
                    fanout[source].append(gate.name)
            self._fanout = fanout
        return self._fanout

    # -- simulation --------------------------------------------------------- #

    def simulate(self, assignment: Dict[str, str],
                 fault: Optional[Tuple[str, str]] = None) -> Tuple[Dict[str, str], int]:
        """5-valued forward simulation.

        ``assignment`` maps primary inputs to values (missing inputs are X).
        ``fault`` is an optional ``(line, stuck_value)`` pair; the fault site
        takes value D (stuck-at-0 activated by a good 1) or DB (stuck-at-1
        activated by a good 0) when the good value differs from the stuck
        value.  Returns the value of every line and the number of gate
        evaluations performed (the work-unit count).
        """
        values: Dict[str, str] = {}
        evaluations = 0
        for pi in self.primary_inputs:
            values[pi] = assignment.get(pi, X)
        if fault is not None and fault[0] in values:
            values[fault[0]] = self._faulty_value(values[fault[0]], fault[1])
        for gate in self.topological_gates():
            evaluations += 1
            value = evaluate_gate(gate.gate_type, [values[s] for s in gate.inputs])
            if fault is not None and gate.name == fault[0]:
                value = self._faulty_value(value, fault[1])
            values[gate.name] = value
        return values, evaluations

    @staticmethod
    def _faulty_value(good_value: str, stuck_at: str) -> str:
        """Value of the fault site given its good value and the stuck-at value."""
        if good_value == X:
            return X
        good_bit, _ = _to_good_bad(good_value)
        stuck_bit = 0 if stuck_at == ZERO else 1
        if good_bit == stuck_bit:
            return good_value
        return D if good_bit == 1 else DB

    def output_values(self, values: Dict[str, str]) -> Dict[str, str]:
        return {po: values[po] for po in self.primary_outputs}


def random_circuit(num_inputs: int = 8, num_gates: int = 40, num_outputs: int = 4,
                   seed: int = 0, max_fanin: int = 3) -> Circuit:
    """Generate a random levelized combinational circuit.

    Gates draw their inputs from recently created lines (guaranteeing a DAG
    and keeping every line in some output cone).  Every gate whose output is
    not read by another gate becomes a primary output, so no line dangles;
    ``num_outputs`` is a lower bound on how many such sinks the construction
    leaves.
    """
    if num_inputs < 2 or num_gates < num_outputs:
        raise ApplicationError("circuit parameters too small")
    rng = random.Random(seed)
    inputs = [f"i{k}" for k in range(num_inputs)]
    available = list(inputs)
    gates: List[Gate] = []
    binary_types = ["AND", "OR", "NAND", "NOR", "XOR"]
    for index in range(num_gates):
        name = f"g{index}"
        # Bias input selection toward recent lines so earlier gates get fanout.
        window = available[-(num_inputs + 6):]
        if rng.random() < 0.15:
            gate_type = "NOT"
            sources = (rng.choice(window),)
        else:
            gate_type = rng.choice(binary_types)
            fanin = rng.randint(2, max_fanin)
            sources = tuple(rng.sample(window, min(fanin, len(window))))
            if len(sources) < 2:
                sources = tuple(list(sources) + [rng.choice(available)])
        gates.append(Gate(name=name, gate_type=gate_type, inputs=sources))
        available.append(name)
    read_lines = {source for gate in gates for source in gate.inputs}
    outputs = [gate.name for gate in gates if gate.name not in read_lines]
    if not outputs:
        outputs = [gates[-1].name]
    return Circuit(primary_inputs=inputs, gates=gates, primary_outputs=outputs)
