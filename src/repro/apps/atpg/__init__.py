"""Automatic Test Pattern Generation (§4.4): PODEM over combinational circuits."""

from .circuit import Circuit, Gate, random_circuit
from .faults import Fault, all_faults, fault_simulate
from .podem import podem
from .sequential import solve_sequential_atpg
from .orca_atpg import atpg_main, run_atpg_program

__all__ = [
    "Circuit",
    "Gate",
    "random_circuit",
    "Fault",
    "all_faults",
    "fault_simulate",
    "podem",
    "solve_sequential_atpg",
    "atpg_main",
    "run_atpg_program",
]
