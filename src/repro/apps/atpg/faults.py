"""Stuck-at faults and fault simulation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .circuit import Circuit, ONE, X, ZERO


@dataclass(frozen=True)
class Fault:
    """A single stuck-at fault on one line."""

    line: str
    stuck_at: str  # ZERO or ONE

    def __str__(self) -> str:
        return f"{self.line}/SA{self.stuck_at}"

    def marshal_size(self) -> int:
        return len(self.line) + 4


def all_faults(circuit: Circuit) -> List[Fault]:
    """The complete single-stuck-at fault list (both polarities on every line)."""
    faults: List[Fault] = []
    for line in circuit.lines:
        faults.append(Fault(line, ZERO))
        faults.append(Fault(line, ONE))
    return faults


def complete_pattern(circuit: Circuit, pattern: Dict[str, str],
                     fill_value: str = ZERO) -> Dict[str, str]:
    """Fill a (possibly partial) test pattern's X inputs with ``fill_value``."""
    filled = {}
    for pi in circuit.primary_inputs:
        value = pattern.get(pi, X)
        filled[pi] = fill_value if value == X else value
    return filled


def _simulate_faulty_cone(circuit: Circuit, good_values: Dict[str, str],
                          fault: Fault) -> Tuple[bool, int]:
    """Event-driven faulty simulation restricted to the fault's fan-out cone.

    Only gates whose inputs actually changed relative to the good simulation
    are re-evaluated — the standard trick that makes serial fault simulation
    far cheaper than re-running test generation, and the reason the fault
    simulation optimisation pays off in absolute terms.
    """
    from .circuit import evaluate_gate  # local import avoids a cycle at module load

    stuck_bit = ZERO if fault.stuck_at == ZERO else ONE
    if good_values.get(fault.line) == stuck_bit:
        return False, 1  # fault not activated by this pattern
    changed: Dict[str, str] = {fault.line: stuck_bit}
    work = 1
    for gate in circuit.topological_gates():
        if gate.name == fault.line:
            continue
        if not any(src in changed for src in gate.inputs):
            continue
        work += 1
        inputs = [changed.get(src, good_values[src]) for src in gate.inputs]
        value = evaluate_gate(gate.gate_type, inputs)
        if gate.name == fault.line:
            value = stuck_bit
        if value != good_values[gate.name]:
            changed[gate.name] = value
    detected = any(po in changed for po in circuit.primary_outputs)
    return detected, work


def detects(circuit: Circuit, pattern: Dict[str, str], fault: Fault) -> Tuple[bool, int]:
    """Does ``pattern`` detect ``fault``?  Returns (detected, gate evaluations)."""
    full = complete_pattern(circuit, pattern)
    good_values, work_good = circuit.simulate(full)
    detected, work_bad = _simulate_faulty_cone(circuit, good_values, fault)
    return detected, work_good + work_bad


def fault_simulate(circuit: Circuit, pattern: Dict[str, str], faults: Sequence[Fault],
                   skip: Optional[set] = None) -> Tuple[List[Fault], int]:
    """Serial fault simulation: which of ``faults`` does ``pattern`` detect?

    The good circuit is simulated once; each candidate fault is then simulated
    only through its fan-out cone.  Returns the detected faults and the total
    gate-evaluation work.  ``skip`` is an optional set of faults already known
    to be covered.
    """
    full = complete_pattern(circuit, pattern)
    good_values, work = circuit.simulate(full)
    detected: List[Fault] = []
    for fault in faults:
        if skip is not None and fault in skip:
            continue
        hit, cost = _simulate_faulty_cone(circuit, good_values, fault)
        work += cost
        if hit:
            detected.append(fault)
    return detected, work
