"""The Orca ATPG program (§4.4): static fault partitioning, shared covered-fault set.

The fault list is statically partitioned over the processors; every worker
generates test patterns for its own faults with PODEM.  With the *fault
simulation* optimisation enabled, each new pattern is simulated against the
remaining faults and every newly covered fault is added to a shared set, so
other workers skip it — "faster in absolute speed (by about a factor of 3),
but it obtains inferior speedups", partly from communication overhead and
partly from the load imbalance the static partitioning now causes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ...config import ClusterConfig
from ...orca.builtin_objects import SetObject
from ...orca.process import OrcaProcess
from ...orca.program import OrcaProgram, ProgramResult
from .circuit import Circuit
from .faults import Fault, all_faults, fault_simulate
from .podem import podem


@dataclass
class AtpgResult:
    """Application-level answer of the parallel ATPG program."""

    covered: int
    total_faults: int
    patterns: int
    untestable: int
    aborted: int

    @property
    def coverage(self) -> float:
        return self.covered / self.total_faults if self.total_faults else 0.0


def partition_faults(faults: Sequence[Fault], num_workers: int) -> List[List[Fault]]:
    """Static round-robin partition of the fault list (the paper's approach)."""
    partitions: List[List[Fault]] = [[] for _ in range(num_workers)]
    for index, fault in enumerate(faults):
        partitions[index % num_workers].append(fault)
    return partitions


def atpg_worker(proc: OrcaProcess, circuit: Circuit, my_faults: List[Fault],
                all_fault_list: List[Fault], covered, results,
                use_fault_simulation: bool = False, max_backtracks: int = 200,
                worker_id: int = 0) -> Dict[str, int]:
    """One ATPG worker: generate patterns for its statically assigned faults."""
    patterns = 0
    untestable = 0
    aborted = 0
    for fault in my_faults:
        # Skip faults another worker's pattern already covers (a cheap local read).
        if covered.contains(str(fault)):
            continue
        result = podem(circuit, fault, max_backtracks=max_backtracks)
        proc.compute(result.work_units)
        if result.pattern is None:
            if result.backtracks > max_backtracks:
                aborted += 1
            else:
                untestable += 1
            continue
        patterns += 1
        newly_covered = [str(fault)]
        if use_fault_simulation:
            detected, sim_work = fault_simulate(circuit, result.pattern, all_fault_list)
            proc.compute(sim_work)
            newly_covered.extend(str(f) for f in detected)
        covered.add_many(sorted(set(newly_covered)))
    results.add_many([(worker_id, patterns, untestable, aborted)])
    return {"patterns": patterns, "untestable": untestable, "aborted": aborted}


def atpg_main(proc: OrcaProcess, circuit: Circuit,
              use_fault_simulation: bool = False,
              faults: Optional[List[Fault]] = None,
              max_backtracks: int = 200) -> AtpgResult:
    """The Orca main process: partition faults, fork workers, tally coverage."""
    fault_list = list(faults) if faults is not None else all_faults(circuit)
    covered = proc.new_object(SetObject, name="atpg-covered")
    results = proc.new_object(SetObject, name="atpg-results")

    partitions = partition_faults(fault_list, proc.num_nodes)
    workers = []
    for worker_id, part in enumerate(partitions):
        workers.append(
            proc.fork(atpg_worker, circuit, part, fault_list, covered, results,
                      use_fault_simulation, max_backtracks,
                      on_node=worker_id % proc.num_nodes, worker_id=worker_id,
                      name=f"atpg-worker[{worker_id}]")
        )
    stats = proc.join_all(workers)

    return AtpgResult(
        covered=covered.size(),
        total_faults=len(fault_list),
        patterns=sum(s["patterns"] for s in stats),
        untestable=sum(s["untestable"] for s in stats),
        aborted=sum(s["aborted"] for s in stats),
    )


def run_atpg_program(circuit: Circuit, num_procs: int,
                     use_fault_simulation: bool = False, seed: int = 31,
                     max_backtracks: int = 200,
                     rts: str = "broadcast",
                     rts_options: Optional[Dict[str, Any]] = None,
                     config: Optional[ClusterConfig] = None) -> ProgramResult:
    """Convenience wrapper used by the examples, tests and benchmarks."""
    cluster_config = (config or ClusterConfig()).with_nodes(num_procs).with_seed(seed)
    program = OrcaProgram(atpg_main, cluster_config, rts=rts, rts_options=rts_options)
    return program.run(circuit, use_fault_simulation, None, max_backtracks)
