"""The paper's example applications, each in a sequential and an Orca-parallel form.

* :mod:`repro.apps.tsp` — the Traveling Salesman Problem with replicated
  workers, a shared job queue and a replicated global bound (Fig. 2);
* :mod:`repro.apps.acp` — the Arc Consistency Problem with shared domain /
  work / result objects and distributed termination detection (Fig. 3);
* :mod:`repro.apps.chess` — Oracol-style parallel alpha-beta search with
  shared killer and transposition tables (§4.3);
* :mod:`repro.apps.atpg` — Automatic Test Pattern Generation with PODEM,
  static fault partitioning and shared fault-simulation results (§4.4).
"""
