"""The Traveling Salesman Problem (the paper's favourite Orca example)."""

from .problem import TspInstance, circle_instance, random_instance
from .sequential import solve_sequential
from .orca_tsp import TspResult, run_tsp_program, tsp_main

__all__ = [
    "TspInstance",
    "random_instance",
    "circle_instance",
    "solve_sequential",
    "tsp_main",
    "run_tsp_program",
    "TspResult",
]
