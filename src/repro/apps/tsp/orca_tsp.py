"""The Orca TSP program: replicated workers, a job queue and a shared bound.

This is the program the paper describes in §4.1:

* a *manager* (the main process) generates jobs — partial routes — and puts
  them in a shared ``JobQueue`` object;
* one *worker* process per processor repeatedly takes a job and searches all
  routes starting with that partial route;
* the best tour length found so far lives in a shared ``IntObject``
  (the *global bound*), read at every search node and written only when a
  better tour is found — the classic high read/write ratio that makes
  replication win.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ...config import ClusterConfig
from ...orca.builtin_objects import IntObject, JobQueue
from ...orca.process import OrcaProcess
from ...orca.program import OrcaProgram, ProgramResult
from .problem import TspInstance, TspJob, generate_jobs, search_subtree


@dataclass
class TspResult:
    """Application-level answer returned by the Orca TSP program."""

    best_length: int
    jobs_processed: int
    nodes_expanded: int

    def __iter__(self):
        yield self.best_length
        yield self.jobs_processed
        yield self.nodes_expanded


def tsp_worker(proc: OrcaProcess, instance: TspInstance, queue, bound,
               stats, read_interval: int = 1, worker_id: int = 0) -> Dict[str, int]:
    """One replicated worker: drain the job queue, searching each subtree."""
    jobs_done = 0
    nodes = 0

    def read_bound() -> int:
        return bound.read()

    def report_tour(length: int, tour: Tuple[int, ...]) -> None:
        # Indivisible check-and-update prevents the race the paper mentions.
        bound.min_update(length)

    def account_work(units: int) -> None:
        proc.compute(units)

    while True:
        job = queue.get_job()
        if job is None:
            break
        jobs_done += 1
        nodes += search_subtree(instance, job, read_bound, report_tour,
                                account_work, read_interval=read_interval)
    stats.add_many([(worker_id, jobs_done, nodes)])
    return {"jobs": jobs_done, "nodes": nodes}


def tsp_main(proc: OrcaProcess, instance: TspInstance, job_depth: int = 2,
             read_interval: int = 1,
             initial_bound: Optional[int] = None) -> TspResult:
    """The Orca main process: generate jobs, fork workers, collect the answer."""
    from ...orca.builtin_objects import SetObject

    if initial_bound is None:
        _tour, initial_bound = instance.nearest_neighbour_tour()

    bound = proc.new_object(IntObject, initial_bound, name="tsp-bound")
    queue = proc.new_object(JobQueue, name="tsp-jobs")
    stats = proc.new_object(SetObject, name="tsp-stats")

    jobs = generate_jobs(instance, job_depth)
    # The manager charges a little work per generated job (route construction).
    proc.compute(len(jobs) * instance.num_cities)
    queue.add_jobs(jobs)

    workers = proc.fork_workers(tsp_worker, instance, queue, bound, stats,
                                read_interval)
    queue.no_more_jobs()
    results = proc.join_all(workers)

    return TspResult(
        best_length=bound.read(),
        jobs_processed=sum(r["jobs"] for r in results),
        nodes_expanded=sum(r["nodes"] for r in results),
    )


def run_tsp_program(instance: TspInstance, num_procs: int, seed: int = 11,
                    job_depth: int = 2, read_interval: int = 1,
                    rts: str = "broadcast",
                    rts_options: Optional[Dict[str, Any]] = None,
                    config: Optional[ClusterConfig] = None) -> ProgramResult:
    """Convenience wrapper used by the examples, tests and benchmarks."""
    cluster_config = (config or ClusterConfig()).with_nodes(num_procs).with_seed(seed)
    program = OrcaProgram(tsp_main, cluster_config, rts=rts, rts_options=rts_options)
    return program.run(instance, job_depth, read_interval)
