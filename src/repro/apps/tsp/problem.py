"""TSP instances: distance matrices, generators, and shared search helpers."""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ...errors import ApplicationError


@dataclass(frozen=True)
class TspInstance:
    """A symmetric TSP instance described by an integer distance matrix."""

    distances: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        n = len(self.distances)
        if n < 3:
            raise ApplicationError("a TSP instance needs at least 3 cities")
        for row in self.distances:
            if len(row) != n:
                raise ApplicationError("the distance matrix must be square")

    @property
    def num_cities(self) -> int:
        return len(self.distances)

    def distance(self, a: int, b: int) -> int:
        return self.distances[a][b]

    def tour_length(self, tour: Sequence[int]) -> int:
        """Length of a closed tour visiting ``tour`` in order and returning home."""
        if sorted(tour) != list(range(self.num_cities)):
            raise ApplicationError("tour must visit every city exactly once")
        total = 0
        for i in range(len(tour)):
            total += self.distance(tour[i], tour[(i + 1) % len(tour)])
        return total

    def nearest_neighbour_tour(self, start: int = 0) -> Tuple[List[int], int]:
        """A greedy tour used as the initial upper bound for branch-and-bound."""
        unvisited = set(range(self.num_cities))
        unvisited.discard(start)
        tour = [start]
        total = 0
        current = start
        while unvisited:
            nxt = min(unvisited, key=lambda c: (self.distance(current, c), c))
            total += self.distance(current, nxt)
            tour.append(nxt)
            unvisited.discard(nxt)
            current = nxt
        total += self.distance(current, start)
        return tour, total

    def marshal_size(self) -> int:
        """Size estimate used when an instance travels in a message."""
        return 8 * self.num_cities * self.num_cities


def random_instance(num_cities: int, seed: int = 0, max_distance: int = 100) -> TspInstance:
    """A random symmetric instance with integer distances in [1, max_distance]."""
    rng = random.Random(seed)
    matrix = [[0] * num_cities for _ in range(num_cities)]
    for i in range(num_cities):
        for j in range(i + 1, num_cities):
            d = rng.randint(1, max_distance)
            matrix[i][j] = matrix[j][i] = d
    return TspInstance(tuple(tuple(row) for row in matrix))


def circle_instance(num_cities: int, radius: float = 100.0) -> TspInstance:
    """Cities evenly spaced on a circle (known optimal tour: the circle order)."""
    points = [
        (radius * math.cos(2 * math.pi * i / num_cities),
         radius * math.sin(2 * math.pi * i / num_cities))
        for i in range(num_cities)
    ]
    matrix = [
        [int(round(math.dist(points[i], points[j]))) for j in range(num_cities)]
        for i in range(num_cities)
    ]
    return TspInstance(tuple(tuple(row) for row in matrix))


@dataclass(frozen=True)
class TspJob:
    """One unit of work: a partial route to be extended exhaustively."""

    route: Tuple[int, ...]
    length: int

    def marshal_size(self) -> int:
        return 8 * (len(self.route) + 1)


def generate_jobs(instance: TspInstance, depth: int) -> List[TspJob]:
    """Split the search space into jobs: all partial routes of ``depth`` cities.

    The manager process generates these and stores them in the shared job
    queue; each job is the root of an independent subtree.
    """
    if not 1 <= depth < instance.num_cities:
        raise ApplicationError("job depth must be between 1 and num_cities - 1")
    jobs: List[TspJob] = []

    def extend(route: Tuple[int, ...], length: int) -> None:
        if len(route) == depth:
            jobs.append(TspJob(route=route, length=length))
            return
        current = route[-1]
        for city in range(instance.num_cities):
            if city in route:
                continue
            extend(route + (city,), length + instance.distance(current, city))

    extend((0,), 0)
    return jobs


def search_subtree(instance: TspInstance, job: TspJob,
                   read_bound: Callable[[], int],
                   report_tour: Callable[[int, Tuple[int, ...]], None],
                   account_work: Callable[[int], None],
                   read_interval: int = 1) -> int:
    """Exhaustively search the subtree rooted at ``job`` with branch-and-bound.

    ``read_bound`` supplies the current global bound (a shared-object read in
    the parallel program), ``report_tour`` is called for every improving
    complete tour, and ``account_work`` receives the work units spent (one
    unit per candidate edge examined).  Returns the number of search nodes
    expanded.
    """
    n = instance.num_cities
    distances = instance.distances
    nodes_expanded = 0
    route = list(job.route)
    in_route = [False] * n
    for city in route:
        in_route[city] = True
    bound_cache = read_bound()
    since_read = 0

    def recurse(current: int, length: int) -> None:
        nonlocal nodes_expanded, bound_cache, since_read
        nodes_expanded += 1
        since_read += 1
        if since_read >= read_interval:
            bound_cache = read_bound()
            since_read = 0
        if len(route) == n:
            total = length + distances[current][route[0]]
            account_work(1)
            if total < bound_cache:
                bound_cache = total
                report_tour(total, tuple(route))
            return
        row = distances[current]
        candidates = 0
        for city in range(n):
            if in_route[city]:
                continue
            candidates += 1
            new_length = length + row[city]
            if new_length >= bound_cache:
                continue
            route.append(city)
            in_route[city] = True
            recurse(city, new_length)
            in_route[city] = False
            route.pop()
        account_work(max(1, candidates))

    recurse(route[-1], job.length)
    return nodes_expanded
