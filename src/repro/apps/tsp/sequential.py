"""Sequential branch-and-bound TSP solver (the single-CPU reference)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .problem import TspInstance, TspJob, generate_jobs, search_subtree


@dataclass
class SequentialTspResult:
    """Result of a sequential solve."""

    best_length: int
    best_tour: Tuple[int, ...]
    nodes_expanded: int
    work_units: int


def solve_sequential(instance: TspInstance, job_depth: int = 2,
                     initial_bound: Optional[int] = None) -> SequentialTspResult:
    """Solve ``instance`` exactly with the same job structure as the parallel program.

    Using the identical job decomposition keeps the sequential and parallel
    versions comparable: the only difference is that here the bound is a local
    variable rather than a replicated shared object.
    """
    if initial_bound is None:
        _tour, initial_bound = instance.nearest_neighbour_tour()
    state = {
        "bound": initial_bound,
        "tour": tuple(),
        "nodes": 0,
        "work": 0,
    }

    def read_bound() -> int:
        return state["bound"]

    def report_tour(length: int, tour: Tuple[int, ...]) -> None:
        if length < state["bound"]:
            state["bound"] = length
            state["tour"] = tour

    def account_work(units: int) -> None:
        state["work"] += units

    for job in generate_jobs(instance, job_depth):
        state["nodes"] += search_subtree(instance, job, read_bound, report_tour,
                                         account_work)
    return SequentialTspResult(
        best_length=state["bound"],
        best_tour=state["tour"],
        nodes_expanded=state["nodes"],
        work_units=state["work"],
    )
