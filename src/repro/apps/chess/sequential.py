"""Sequential Oracol: single-CPU iterative-deepening search of a set of positions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .board import Board, Move
from .search import SearchResult, SearchTables, iterative_deepening


@dataclass
class SequentialChessResult:
    """Result of searching a batch of positions sequentially."""

    results: List[Tuple[Optional[Move], int]]
    total_nodes: int


def solve_position_sequential(board: Board, depth: int,
                              tables: Optional[SearchTables] = None) -> SearchResult:
    """Search a single position to ``depth`` with fresh (or provided) tables."""
    return iterative_deepening(board.copy(), depth, tables=tables)


def solve_positions_sequential(boards: Sequence[Board], depth: int,
                               share_tables: bool = True) -> SequentialChessResult:
    """Search several positions one after the other.

    ``share_tables`` reuses one killer/transposition table across positions,
    which is what the sequential Oracol does between iterative-deepening
    rounds.
    """
    tables = SearchTables() if share_tables else None
    results: List[Tuple[Optional[Move], int]] = []
    total_nodes = 0
    for board in boards:
        outcome = iterative_deepening(
            board.copy(), depth, tables=tables if share_tables else SearchTables()
        )
        results.append((outcome.best_move, outcome.score))
        total_nodes += outcome.stats.total_nodes
    return SequentialChessResult(results=results, total_nodes=total_nodes)
