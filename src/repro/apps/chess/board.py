"""6x6 Los Alamos chess: board representation, move generation, make/unmake.

Pieces are encoded as signed integers (positive = white, negative = black):
pawn 1, knight 2, rook 3, queen 4, king 5.  The board is a flat tuple-backed
list of 36 squares, index = rank * 6 + file, rank 0 at white's back rank.
Rules: standard piece movement; pawns move one square forward and capture
diagonally, promoting to a queen on the last rank; no castling, no en passant,
no double pawn step (the Los Alamos rules).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from ...errors import ApplicationError

SIZE = 6
NUM_SQUARES = SIZE * SIZE

EMPTY = 0
PAWN, KNIGHT, ROOK, QUEEN, KING = 1, 2, 3, 4, 5

PIECE_NAMES = {PAWN: "P", KNIGHT: "N", ROOK: "R", QUEEN: "Q", KING: "K"}

#: Piece values in centipawns (used by the evaluator and move ordering).
PIECE_VALUES = {PAWN: 100, KNIGHT: 300, ROOK: 500, QUEEN: 900, KING: 100_000}

KNIGHT_DELTAS = ((1, 2), (2, 1), (2, -1), (1, -2), (-1, -2), (-2, -1), (-2, 1), (-1, 2))
ROOK_DIRS = ((1, 0), (-1, 0), (0, 1), (0, -1))
QUEEN_DIRS = ROOK_DIRS + ((1, 1), (1, -1), (-1, 1), (-1, -1))
KING_DELTAS = QUEEN_DIRS


def square(rank: int, file: int) -> int:
    return rank * SIZE + file


def on_board(rank: int, file: int) -> bool:
    return 0 <= rank < SIZE and 0 <= file < SIZE


@dataclass(frozen=True)
class Move:
    """One move: from-square, to-square, captured piece, and promotion flag."""

    src: int
    dst: int
    captured: int = EMPTY
    promotion: bool = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = f"{chr(ord('a') + self.src % SIZE)}{self.src // SIZE + 1}"
        d = f"{chr(ord('a') + self.dst % SIZE)}{self.dst // SIZE + 1}"
        suffix = "=Q" if self.promotion else ""
        return f"{s}{d}{suffix}"


# Deterministic Zobrist keys for hashing positions.
_zobrist_rng = random.Random(0xC0FFEE)
ZOBRIST_PIECES = [
    [_zobrist_rng.getrandbits(64) for _ in range(NUM_SQUARES)]
    for _ in range(11)  # index = piece + 5 (piece in -5..5)
]
ZOBRIST_SIDE = _zobrist_rng.getrandbits(64)


class Board:
    """A mutable 6x6 chess position."""

    __slots__ = ("squares", "side_to_move", "_hash")

    def __init__(self, squares: List[int], side_to_move: int = 1) -> None:
        if len(squares) != NUM_SQUARES:
            raise ApplicationError(f"a board needs exactly {NUM_SQUARES} squares")
        self.squares = list(squares)
        self.side_to_move = side_to_move
        self._hash: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Hashing / copying
    # ------------------------------------------------------------------ #

    def zobrist(self) -> int:
        """Position hash (recomputed lazily; invalidated by make/unmake)."""
        if self._hash is None:
            h = 0
            for sq, piece in enumerate(self.squares):
                if piece != EMPTY:
                    h ^= ZOBRIST_PIECES[piece + 5][sq]
            if self.side_to_move == -1:
                h ^= ZOBRIST_SIDE
            self._hash = h
        return self._hash

    def copy(self) -> "Board":
        return Board(list(self.squares), self.side_to_move)

    def key(self) -> Tuple:
        """An exact, hashable position key (squares + side to move)."""
        return (tuple(self.squares), self.side_to_move)

    # ------------------------------------------------------------------ #
    # Attack / check detection
    # ------------------------------------------------------------------ #

    def king_square(self, side: int) -> Optional[int]:
        target = KING * side
        for sq, piece in enumerate(self.squares):
            if piece == target:
                return sq
        return None

    def is_attacked(self, sq: int, by_side: int) -> bool:
        """Is ``sq`` attacked by any piece of ``by_side``?"""
        rank, file = divmod(sq, SIZE)
        board = self.squares
        # Pawn attacks (pawns capture diagonally forward).
        pawn_rank = rank - by_side
        for df in (-1, 1):
            if on_board(pawn_rank, file + df):
                if board[square(pawn_rank, file + df)] == PAWN * by_side:
                    return True
        # Knight attacks.
        for dr, df in KNIGHT_DELTAS:
            r, f = rank + dr, file + df
            if on_board(r, f) and board[square(r, f)] == KNIGHT * by_side:
                return True
        # King adjacency.
        for dr, df in KING_DELTAS:
            r, f = rank + dr, file + df
            if on_board(r, f) and board[square(r, f)] == KING * by_side:
                return True
        # Sliding pieces: rooks and queens on ranks/files, queens on diagonals.
        for dr, df in ROOK_DIRS:
            r, f = rank + dr, file + df
            while on_board(r, f):
                piece = board[square(r, f)]
                if piece != EMPTY:
                    if piece * by_side > 0 and abs(piece) in (ROOK, QUEEN):
                        return True
                    break
                r += dr
                f += df
        for dr, df in ((1, 1), (1, -1), (-1, 1), (-1, -1)):
            r, f = rank + dr, file + df
            while on_board(r, f):
                piece = board[square(r, f)]
                if piece != EMPTY:
                    if piece * by_side > 0 and abs(piece) == QUEEN:
                        return True
                    break
                r += dr
                f += df
        return False

    def in_check(self, side: Optional[int] = None) -> bool:
        side = self.side_to_move if side is None else side
        king = self.king_square(side)
        if king is None:
            return True  # king already captured: treated as terminal
        return self.is_attacked(king, -side)

    # ------------------------------------------------------------------ #
    # Move generation
    # ------------------------------------------------------------------ #

    def pseudo_moves(self, captures_only: bool = False) -> List[Move]:
        """All pseudo-legal moves for the side to move."""
        moves: List[Move] = []
        side = self.side_to_move
        board = self.squares
        for src, piece in enumerate(board):
            if piece == EMPTY or piece * side <= 0:
                continue
            kind = abs(piece)
            rank, file = divmod(src, SIZE)
            if kind == PAWN:
                forward = rank + side
                # Single push (with promotion on the last rank).
                if not captures_only and on_board(forward, file):
                    dst = square(forward, file)
                    if board[dst] == EMPTY:
                        moves.append(Move(src, dst, EMPTY,
                                          promotion=(forward in (0, SIZE - 1))))
                # Diagonal captures.
                for df in (-1, 1):
                    if on_board(forward, file + df):
                        dst = square(forward, file + df)
                        target = board[dst]
                        if target != EMPTY and target * side < 0:
                            moves.append(Move(src, dst, target,
                                              promotion=(forward in (0, SIZE - 1))))
            elif kind == KNIGHT:
                for dr, df in KNIGHT_DELTAS:
                    r, f = rank + dr, file + df
                    if not on_board(r, f):
                        continue
                    dst = square(r, f)
                    target = board[dst]
                    if target == EMPTY:
                        if not captures_only:
                            moves.append(Move(src, dst))
                    elif target * side < 0:
                        moves.append(Move(src, dst, target))
            elif kind == KING:
                for dr, df in KING_DELTAS:
                    r, f = rank + dr, file + df
                    if not on_board(r, f):
                        continue
                    dst = square(r, f)
                    target = board[dst]
                    if target == EMPTY:
                        if not captures_only:
                            moves.append(Move(src, dst))
                    elif target * side < 0:
                        moves.append(Move(src, dst, target))
            else:
                directions = ROOK_DIRS if kind == ROOK else QUEEN_DIRS
                for dr, df in directions:
                    r, f = rank + dr, file + df
                    while on_board(r, f):
                        dst = square(r, f)
                        target = board[dst]
                        if target == EMPTY:
                            if not captures_only:
                                moves.append(Move(src, dst))
                        else:
                            if target * side < 0:
                                moves.append(Move(src, dst, target))
                            break
                        r += dr
                        f += df
        return moves

    def legal_moves(self, captures_only: bool = False) -> List[Move]:
        """Pseudo-legal moves filtered so the mover's king is not left in check."""
        legal = []
        for move in self.pseudo_moves(captures_only):
            self.make(move)
            if not self.in_check(-self.side_to_move):
                legal.append(move)
            self.unmake(move)
        return legal

    # ------------------------------------------------------------------ #
    # Make / unmake
    # ------------------------------------------------------------------ #

    def make(self, move: Move) -> None:
        board = self.squares
        piece = board[move.src]
        board[move.src] = EMPTY
        if move.promotion:
            board[move.dst] = QUEEN * self.side_to_move
        else:
            board[move.dst] = piece
        self.side_to_move = -self.side_to_move
        self._hash = None

    def unmake(self, move: Move) -> None:
        self.side_to_move = -self.side_to_move
        board = self.squares
        if move.promotion:
            board[move.src] = PAWN * self.side_to_move
        else:
            board[move.src] = board[move.dst]
        board[move.dst] = move.captured
        self._hash = None

    # ------------------------------------------------------------------ #
    # Game state
    # ------------------------------------------------------------------ #

    def is_terminal(self) -> bool:
        return not self.legal_moves() or self.king_square(1) is None \
            or self.king_square(-1) is None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rows = []
        for rank in range(SIZE - 1, -1, -1):
            row = []
            for file in range(SIZE):
                piece = self.squares[square(rank, file)]
                if piece == EMPTY:
                    row.append(".")
                else:
                    name = PIECE_NAMES[abs(piece)]
                    row.append(name if piece > 0 else name.lower())
            rows.append(" ".join(row))
        side = "white" if self.side_to_move == 1 else "black"
        return "\n".join(rows) + f"\n({side} to move)"


def initial_board() -> Board:
    """The Los Alamos chess starting position."""
    squares = [EMPTY] * NUM_SQUARES
    back_rank = [ROOK, KNIGHT, QUEEN, KING, KNIGHT, ROOK]
    for file, piece in enumerate(back_rank):
        squares[square(0, file)] = piece
        squares[square(SIZE - 1, file)] = -piece
    for file in range(SIZE):
        squares[square(1, file)] = PAWN
        squares[square(SIZE - 2, file)] = -PAWN
    return Board(squares, side_to_move=1)


def random_tactical_position(seed: int = 0, plies: int = 8) -> Board:
    """A quiet-ish middlegame position reached by playing random legal moves.

    Used to generate the benchmark's test positions deterministically; the
    generator avoids ending in a terminal position.
    """
    rng = random.Random(seed)
    board = initial_board()
    for _ in range(plies):
        moves = board.legal_moves()
        if not moves:
            break
        # Prefer non-capturing moves early so material stays on the board.
        quiet = [m for m in moves if m.captured == EMPTY]
        pool = quiet if quiet and rng.random() < 0.8 else moves
        move = rng.choice(pool)
        board.make(move)
        if board.is_terminal():
            board.unmake(move)
            break
    return board
