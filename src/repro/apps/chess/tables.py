"""Killer and transposition tables, in local and shared-object form.

The paper highlights that in Orca "the two versions differ in only a few
lines of code": the table is an abstract data type; the local version
instantiates it per process, the shared version declares one object in the
main process and passes it to every worker.  The search code below talks to
either through the same four methods (``tt_lookup`` / ``tt_store`` /
``killers`` / ``note_killer``), so switching is a constructor argument.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ...rts.object_model import ObjectSpec, operation

#: Transposition-table entry flags.
FLAG_EXACT = 0
FLAG_LOWER = 1
FLAG_UPPER = 2


class TranspositionTable(ObjectSpec):
    """A shared transposition table: position key -> (depth, score, flag, move)."""

    def init(self, capacity: int = 50_000) -> None:
        self.entries: Dict[Any, Tuple[int, int, int, Any]] = {}
        self.capacity = capacity
        self.stores = 0
        self.hits = 0

    @operation(write=False)
    def lookup(self, key: Any) -> Optional[Tuple[int, int, int, Any]]:
        return self.entries.get(key)

    @operation(write=True)
    def store(self, key: Any, depth: int, score: int, flag: int, move: Any) -> bool:
        """Store an entry; deeper results overwrite shallower ones."""
        existing = self.entries.get(key)
        if existing is not None and existing[0] > depth:
            return False
        if existing is None and len(self.entries) >= self.capacity:
            return False
        self.entries[key] = (depth, score, flag, move)
        self.stores += 1
        return True

    @operation(write=False)
    def size(self) -> int:
        return len(self.entries)


class KillerTable(ObjectSpec):
    """A shared killer-move table: search depth -> the moves causing most cutoffs."""

    def init(self, slots_per_depth: int = 2) -> None:
        self.slots = slots_per_depth
        self.killers: Dict[int, List[Any]] = {}

    @operation(write=False)
    def get_killers(self, depth: int) -> List[Any]:
        return list(self.killers.get(depth, ()))

    @operation(write=True)
    def note_killer(self, depth: int, move: Any) -> None:
        slot = self.killers.setdefault(depth, [])
        if move in slot:
            return
        slot.insert(0, move)
        del slot[self.slots:]


class LocalTranspositionTable:
    """Per-process transposition table with the same interface as the shared one."""

    def __init__(self, capacity: int = 50_000) -> None:
        self.entries: Dict[Any, Tuple[int, int, int, Any]] = {}
        self.capacity = capacity

    def lookup(self, key: Any) -> Optional[Tuple[int, int, int, Any]]:
        return self.entries.get(key)

    def store(self, key: Any, depth: int, score: int, flag: int, move: Any) -> bool:
        existing = self.entries.get(key)
        if existing is not None and existing[0] > depth:
            return False
        if existing is None and len(self.entries) >= self.capacity:
            return False
        self.entries[key] = (depth, score, flag, move)
        return True

    def size(self) -> int:
        return len(self.entries)


class LocalKillerTable:
    """Per-process killer table with the same interface as the shared one."""

    def __init__(self, slots_per_depth: int = 2) -> None:
        self.slots = slots_per_depth
        self.killers: Dict[int, List[Any]] = {}

    def get_killers(self, depth: int) -> List[Any]:
        return list(self.killers.get(depth, ()))

    def note_killer(self, depth: int, move: Any) -> None:
        slot = self.killers.setdefault(depth, [])
        if move in slot:
            return
        slot.insert(0, move)
        del slot[self.slots:]
