"""Oracol: parallel game-tree search with shared killer/transposition tables (§4.3).

The engine plays 6x6 Los Alamos chess (standard piece movement without
castling, en-passant or double pawn steps) — small enough to search quickly
in pure Python while exercising exactly the same algorithmic structure as the
paper's full-chess program: alpha-beta with iterative deepening, quiescence
search, killer moves and a transposition table, parallelised by dynamically
partitioning the search tree over worker processes.
"""

from .board import Board, initial_board, random_tactical_position
from .search import SearchResult, SearchTables, iterative_deepening
from .sequential import solve_position_sequential
from .orca_chess import chess_main, run_chess_program

__all__ = [
    "Board",
    "initial_board",
    "random_tactical_position",
    "SearchTables",
    "SearchResult",
    "iterative_deepening",
    "solve_position_sequential",
    "chess_main",
    "run_chess_program",
]
