"""The Orca chess program (Oracol): parallel alpha-beta over shared tables.

Parallelism follows the paper's description: the search tree is partitioned
dynamically — each (position, root move) pair is a job in a shared job
queue — and the killer and transposition tables can be kept either local to
every worker or in shared objects, which "differ in only a few lines of
code".  Workers prune against a shared best-score object, so a good move
found by one worker immediately tightens every other worker's window; the
remaining duplicated work is the *search overhead* the paper blames for the
modest (4.5–5.5 on 10 CPUs) speedups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ...config import ClusterConfig
from ...orca.builtin_objects import JobQueue
from ...orca.process import OrcaProcess
from ...orca.program import OrcaProgram, ProgramResult
from ...rts.object_model import ObjectSpec, operation
from .board import Board, Move
from .evaluate import MATE_SCORE
from .search import (
    NODE_WORK,
    SearchStats,
    SearchTables,
    order_moves,
    search_root_move,
)
from .tables import KillerTable, LocalKillerTable, LocalTranspositionTable, TranspositionTable


class BestMoveObject(ObjectSpec):
    """Shared per-position best (score, move), updated with an atomic max."""

    def init(self, num_positions: int = 0) -> None:
        self.scores = [-2 * MATE_SCORE] * num_positions
        self.moves: List[Any] = [None] * num_positions

    @operation(write=False)
    def get_score(self, position: int) -> int:
        return self.scores[position]

    @operation(write=True)
    def report(self, position: int, score: int, move: Any) -> bool:
        """Record ``move`` if it improves the position's best score."""
        if score > self.scores[position]:
            self.scores[position] = score
            self.moves[position] = move
            return True
        return False

    @operation(write=False)
    def summary(self) -> List[Tuple[int, Any]]:
        return list(zip(self.scores, self.moves))


class HybridTranspositionTable:
    """Worker-side table: local for shallow entries, shared for deep ones.

    Sharing every store would broadcast once per interior node; the run-time
    heuristic the paper alludes to is to share only the entries worth the
    traffic (deep sub-trees), keeping shallow entries in a private table.
    """

    def __init__(self, shared, min_shared_depth: int = 2) -> None:
        self.shared = shared
        self.min_shared_depth = min_shared_depth
        self.local = LocalTranspositionTable()

    def lookup(self, key):
        entry = self.local.lookup(key)
        if entry is not None:
            return entry
        if self.shared is not None:
            return self.shared.lookup(key)
        return None

    def store(self, key, depth, score, flag, move):
        if self.shared is not None and depth >= self.min_shared_depth:
            return self.shared.store(key, depth, score, flag, move)
        return self.local.store(key, depth, score, flag, move)


class HybridKillerTable:
    """Worker-side killer table: share the near-root plies, keep the rest local."""

    def __init__(self, shared, max_shared_ply: int = 2) -> None:
        self.shared = shared
        self.max_shared_ply = max_shared_ply
        self.local = LocalKillerTable()

    def get_killers(self, ply):
        if self.shared is not None and ply <= self.max_shared_ply:
            return self.shared.get_killers(ply)
        return self.local.get_killers(ply)

    def note_killer(self, ply, move):
        if self.shared is not None and ply <= self.max_shared_ply:
            self.shared.note_killer(ply, move)
        else:
            self.local.note_killer(ply, move)


@dataclass
class ChessResult:
    """Application-level answer of the parallel chess program."""

    scores: List[int]
    moves: List[Any]
    total_nodes: int
    jobs_processed: int


def chess_worker(proc: OrcaProcess, position_squares: List[Tuple[Tuple[int, ...], int]],
                 queue, best, shared_tt, shared_killers, depth: int,
                 worker_id: int = 0) -> Dict[str, int]:
    """One chess worker: take (position, root move) jobs and search them."""
    tables = SearchTables(
        transposition=HybridTranspositionTable(shared_tt),
        killers=HybridKillerTable(shared_killers),
    )
    stats = SearchStats()
    jobs_done = 0

    def account_work(units: int) -> None:
        proc.compute(units)

    while True:
        job = queue.get_job()
        if job is None:
            break
        jobs_done += 1
        position_index, move = job
        squares, side = position_squares[position_index]
        board = Board(list(squares), side)
        # Iterative deepening on this root move; the shared best score tightens
        # the window as other workers report their results.
        score = -2 * MATE_SCORE
        for d in range(1, depth + 1):
            alpha = best.get_score(position_index)
            account_work(NODE_WORK)
            score = search_root_move(board, move, d, alpha, 2 * MATE_SCORE,
                                     tables, stats, account_work)
        best.report(position_index, score, repr(move))
    return {"jobs": jobs_done, "nodes": stats.total_nodes}


def chess_main(proc: OrcaProcess, positions: Sequence[Board], depth: int = 3,
               shared_tables: bool = True) -> ChessResult:
    """The Orca main process: enumerate root moves, fork workers, collect results."""
    position_squares = [(tuple(b.squares), b.side_to_move) for b in positions]

    best = proc.new_object(BestMoveObject, len(positions), name="chess-best")
    queue = proc.new_object(JobQueue, name="chess-jobs")
    shared_tt = proc.new_object(TranspositionTable, name="chess-tt") if shared_tables else None
    shared_killers = proc.new_object(KillerTable, name="chess-killers") if shared_tables else None

    jobs = []
    for index, board in enumerate(positions):
        moves = board.copy().legal_moves()
        ordered = order_moves(board, moves, None, [])
        proc.compute(len(ordered) * NODE_WORK)
        for move in ordered:
            jobs.append((index, move))
    queue.add_jobs(jobs)

    workers = proc.fork_workers(chess_worker, position_squares, queue, best,
                                shared_tt, shared_killers, depth)
    queue.no_more_jobs()
    results = proc.join_all(workers)

    summary = best.summary()
    return ChessResult(
        scores=[score for score, _move in summary],
        moves=[move for _score, move in summary],
        total_nodes=sum(r["nodes"] for r in results),
        jobs_processed=sum(r["jobs"] for r in results),
    )


def run_chess_program(positions: Sequence[Board], num_procs: int, depth: int = 3,
                      shared_tables: bool = True, seed: int = 23,
                      rts: str = "broadcast",
                      rts_options: Optional[Dict[str, Any]] = None,
                      config: Optional[ClusterConfig] = None) -> ProgramResult:
    """Convenience wrapper used by the examples, tests and benchmarks."""
    cluster_config = (config or ClusterConfig()).with_nodes(num_procs).with_seed(seed)
    program = OrcaProgram(chess_main, cluster_config, rts=rts, rts_options=rts_options)
    return program.run(positions, depth, shared_tables)
