"""Static evaluation for the 6x6 chess engine.

Oracol "does not consider positional characteristics" beyond what is needed
for tactical play; the evaluator here is material plus a small centre/advance
bonus and a mobility term, which is enough to drive sensible alpha-beta
cutoffs.
"""

from __future__ import annotations

from .board import (
    EMPTY,
    KING,
    NUM_SQUARES,
    PAWN,
    PIECE_VALUES,
    SIZE,
    Board,
)

#: Score returned for a side that has been checkmated (from its perspective).
MATE_SCORE = 100_000

#: Small bonus per square of advancement for pawns and per centre proximity.
_CENTRE = (SIZE - 1) / 2.0
_CENTRE_BONUS = [
    int(4 * ((_CENTRE - abs(sq // SIZE - _CENTRE)) + (_CENTRE - abs(sq % SIZE - _CENTRE))))
    for sq in range(NUM_SQUARES)
]


def material_balance(board: Board) -> int:
    """Material difference from white's point of view, in centipawns."""
    total = 0
    for piece in board.squares:
        if piece == EMPTY:
            continue
        kind = abs(piece)
        if kind == KING:
            continue
        value = PIECE_VALUES[kind]
        total += value if piece > 0 else -value
    return total


def evaluate(board: Board, mobility_hint: int = 0) -> int:
    """Static score from the perspective of the side to move.

    ``mobility_hint`` (the number of legal moves, when the caller already has
    it) adds a small mobility term without recomputing move generation.
    """
    score = 0
    for sq, piece in enumerate(board.squares):
        if piece == EMPTY:
            continue
        kind = abs(piece)
        sign = 1 if piece > 0 else -1
        if kind != KING:
            score += sign * PIECE_VALUES[kind]
        score += sign * _CENTRE_BONUS[sq]
        if kind == PAWN:
            advance = sq // SIZE if piece > 0 else (SIZE - 1 - sq // SIZE)
            score += sign * 6 * advance
    score = score if board.side_to_move == 1 else -score
    return score + 2 * mobility_hint
