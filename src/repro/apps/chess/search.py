"""Alpha-beta search with iterative deepening, quiescence, killers and a TT.

The same search code serves the sequential solver, the parallel workers, and
both the local-table and shared-table configurations: tables are passed in
behind a tiny method interface, and work accounting is a callback so that the
Orca version can charge simulated CPU time per node searched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from .board import EMPTY, PIECE_VALUES, Board, Move
from .evaluate import MATE_SCORE, evaluate
from .tables import (
    FLAG_EXACT,
    FLAG_LOWER,
    FLAG_UPPER,
    LocalKillerTable,
    LocalTranspositionTable,
)

#: Work units charged per interior node and per quiescence node.
NODE_WORK = 3
QNODE_WORK = 1


@dataclass
class SearchTables:
    """The killer and transposition tables used by one search.

    Both attributes may be plain local tables or shared-object proxies — the
    search only calls ``lookup``/``store`` and ``get_killers``/``note_killer``.
    """

    transposition: Any = field(default_factory=LocalTranspositionTable)
    killers: Any = field(default_factory=LocalKillerTable)


@dataclass
class SearchStats:
    """Node counts collected during a search."""

    nodes: int = 0
    qnodes: int = 0
    cutoffs: int = 0
    tt_hits: int = 0

    @property
    def total_nodes(self) -> int:
        return self.nodes + self.qnodes


@dataclass
class SearchResult:
    """Outcome of searching one position."""

    best_move: Optional[Move]
    score: int
    depth: int
    stats: SearchStats


def _noop_work(units: int) -> None:
    return None


def order_moves(board: Board, moves: List[Move], tt_move: Optional[Move],
                killer_moves: List[Move]) -> List[Move]:
    """Order moves: TT move, captures by MVV-LVA, killers, then the rest."""

    def score(move: Move) -> int:
        if tt_move is not None and move == tt_move:
            return 1_000_000
        if move.captured != EMPTY:
            victim = PIECE_VALUES[abs(move.captured)]
            attacker = PIECE_VALUES[abs(board.squares[move.src])]
            return 100_000 + victim * 10 - attacker // 100
        if move in killer_moves:
            return 50_000
        return 0

    return sorted(moves, key=score, reverse=True)


def quiescence(board: Board, alpha: int, beta: int, stats: SearchStats,
               account_work: Callable[[int], None] = _noop_work) -> int:
    """Capture-only search to settle tactical positions before evaluating."""
    stats.qnodes += 1
    account_work(QNODE_WORK)
    stand_pat = evaluate(board)
    if stand_pat >= beta:
        return beta
    alpha = max(alpha, stand_pat)
    captures = board.legal_moves(captures_only=True)
    captures = order_moves(board, captures, None, [])
    for move in captures:
        board.make(move)
        score = -quiescence(board, -beta, -alpha, stats, account_work)
        board.unmake(move)
        if score >= beta:
            return beta
        alpha = max(alpha, score)
    return alpha


def alpha_beta(board: Board, depth: int, alpha: int, beta: int, ply: int,
               tables: SearchTables, stats: SearchStats,
               account_work: Callable[[int], None] = _noop_work) -> int:
    """Negamax alpha-beta with transposition table and killer-move ordering."""
    stats.nodes += 1
    account_work(NODE_WORK)
    original_alpha = alpha
    key = board.zobrist()

    entry = tables.transposition.lookup(key)
    tt_move: Optional[Move] = None
    if entry is not None:
        entry_depth, entry_score, entry_flag, entry_move = entry
        tt_move = entry_move
        if entry_depth >= depth:
            stats.tt_hits += 1
            if entry_flag == FLAG_EXACT:
                return entry_score
            if entry_flag == FLAG_LOWER:
                alpha = max(alpha, entry_score)
            elif entry_flag == FLAG_UPPER:
                beta = min(beta, entry_score)
            if alpha >= beta:
                return entry_score

    if depth <= 0:
        return quiescence(board, alpha, beta, stats, account_work)

    moves = board.legal_moves()
    if not moves:
        if board.in_check():
            return -MATE_SCORE + ply
        return 0  # stalemate

    killer_moves = tables.killers.get_killers(ply)
    moves = order_moves(board, moves, tt_move, killer_moves)

    best_score = -MATE_SCORE * 2
    best_move: Optional[Move] = None
    for move in moves:
        board.make(move)
        score = -alpha_beta(board, depth - 1, -beta, -alpha, ply + 1,
                            tables, stats, account_work)
        board.unmake(move)
        if score > best_score:
            best_score = score
            best_move = move
        alpha = max(alpha, score)
        if alpha >= beta:
            stats.cutoffs += 1
            if move.captured == EMPTY:
                tables.killers.note_killer(ply, move)
            break

    if best_score <= original_alpha:
        flag = FLAG_UPPER
    elif best_score >= beta:
        flag = FLAG_LOWER
    else:
        flag = FLAG_EXACT
    tables.transposition.store(key, depth, best_score, flag, best_move)
    return best_score


def search_root_move(board: Board, move: Move, depth: int, alpha: int, beta: int,
                     tables: SearchTables, stats: SearchStats,
                     account_work: Callable[[int], None] = _noop_work) -> int:
    """Search a single root move to ``depth`` (used by the parallel workers)."""
    board.make(move)
    try:
        return -alpha_beta(board, depth - 1, -beta, -alpha, 1, tables, stats,
                           account_work)
    finally:
        board.unmake(move)


def iterative_deepening(board: Board, max_depth: int,
                        tables: Optional[SearchTables] = None,
                        account_work: Callable[[int], None] = _noop_work) -> SearchResult:
    """Iteratively deepen from 1 to ``max_depth`` (Oracol's search driver)."""
    tables = tables or SearchTables()
    stats = SearchStats()
    best_move: Optional[Move] = None
    best_score = 0
    for depth in range(1, max_depth + 1):
        alpha, beta = -MATE_SCORE * 2, MATE_SCORE * 2
        moves = board.legal_moves()
        if not moves:
            return SearchResult(None, -MATE_SCORE if board.in_check() else 0, depth, stats)
        killer_moves = tables.killers.get_killers(0)
        entry = tables.transposition.lookup(board.zobrist())
        tt_move = entry[3] if entry is not None else None
        moves = order_moves(board, moves, tt_move or best_move, killer_moves)
        depth_best_move = None
        depth_best_score = -MATE_SCORE * 2
        for move in moves:
            stats.nodes += 1
            account_work(NODE_WORK)
            score = search_root_move(board, move, depth, alpha, beta, tables,
                                     stats, account_work)
            if score > depth_best_score:
                depth_best_score = score
                depth_best_move = move
            alpha = max(alpha, score)
        best_move, best_score = depth_best_move, depth_best_score
        tables.transposition.store(board.zobrist(), depth, best_score,
                                   FLAG_EXACT, best_move)
    return SearchResult(best_move, best_score, max_depth, stats)
