"""The Arc Consistency Problem (Fig. 3 of the paper)."""

from .problem import AcpProblem, random_acp_problem
from .sequential import solve_sequential_ac3
from .orca_acp import acp_main, run_acp_program

__all__ = [
    "AcpProblem",
    "random_acp_problem",
    "solve_sequential_ac3",
    "acp_main",
    "run_acp_program",
]
