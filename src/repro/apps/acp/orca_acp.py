"""The Orca Arc Consistency program (§4.2 of the paper).

Shared objects, mirroring the paper's description:

* ``domain`` — an array of value sets, one per variable, with operations to
  read a variable's set and to shrink it;
* ``work`` — an array of Booleans saying which variables must be rechecked;
* ``result`` — an array of Booleans, one per worker, set when a worker has no
  more work (used, together with ``work``, for distributed termination);
* ``failed`` — a Boolean set when some variable's set becomes empty (no
  solution exists).

The variables are statically partitioned among the workers.  All four objects
are replicated on every processor, so every domain/work update is broadcast —
this is exactly the CPU overhead the paper blames for ACP's speedups being
lower than the hypercube implementation's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ...config import ClusterConfig
from ...orca.builtin_objects import BoolObject
from ...orca.process import OrcaProcess
from ...orca.program import OrcaProgram, ProgramResult
from ...rts.object_model import ObjectSpec, operation
from .problem import AcpProblem, revise


class DomainObject(ObjectSpec):
    """The shared array of per-variable value sets."""

    def init(self, domains: Sequence[FrozenSet[int]] = ()) -> None:
        self.domains: List[FrozenSet[int]] = [frozenset(d) for d in domains]

    @operation(write=False)
    def get_domain(self, var: int) -> FrozenSet[int]:
        return self.domains[var]

    @operation(write=False)
    def sizes(self) -> List[int]:
        return [len(d) for d in self.domains]

    @operation(write=True)
    def restrict(self, var: int, new_domain: FrozenSet[int]) -> Tuple[bool, bool]:
        """Shrink variable ``var``'s set; returns (changed, now_empty)."""
        current = self.domains[var]
        new_domain = frozenset(new_domain) & current
        if new_domain == current:
            return False, len(current) == 0
        self.domains[var] = new_domain
        return True, len(new_domain) == 0


class WorkObject(ObjectSpec):
    """The shared array of 'needs rechecking' flags, one per variable."""

    def init(self, num_variables: int = 0) -> None:
        self.flags = [True] * num_variables

    @operation(write=False)
    def pending_in(self, variables: Tuple[int, ...]) -> List[int]:
        """Which of ``variables`` are currently flagged (local read)."""
        return [v for v in variables if self.flags[v]]

    @operation(write=False)
    def any_pending(self) -> bool:
        return any(self.flags)

    @operation(write=True)
    def take(self, variables: Tuple[int, ...]) -> List[int]:
        """Atomically fetch-and-clear the flags of ``variables``."""
        taken = [v for v in variables if self.flags[v]]
        for v in taken:
            self.flags[v] = False
        return taken

    @operation(write=True)
    def flag(self, variables: Tuple[int, ...]) -> int:
        """Mark ``variables`` as needing a recheck; returns how many were newly set."""
        newly = 0
        for v in variables:
            if not self.flags[v]:
                self.flags[v] = True
                newly += 1
        return newly


class ReadyObject(ObjectSpec):
    """The shared per-worker 'willing to terminate' flags."""

    def init(self, num_workers: int = 0) -> None:
        self.ready = [False] * num_workers

    @operation(write=True)
    def set_ready(self, worker: int, value: bool) -> None:
        self.ready[worker] = value

    @operation(write=False)
    def all_ready(self) -> bool:
        return all(self.ready)


@dataclass
class AcpResult:
    """Application-level answer of the parallel ACP program."""

    domain_sizes: List[int]
    consistent: bool
    total_revisions: int


def partition_variables(num_variables: int, num_workers: int) -> List[Tuple[int, ...]]:
    """Static block partition of the variables over the workers."""
    partitions: List[Tuple[int, ...]] = []
    base = num_variables // num_workers
    extra = num_variables % num_workers
    start = 0
    for worker in range(num_workers):
        size = base + (1 if worker < extra else 0)
        partitions.append(tuple(range(start, start + size)))
        start += size
    return partitions


def acp_worker(proc: OrcaProcess, problem: AcpProblem, domain, work, ready, failed,
               my_vars: Tuple[int, ...], poll_interval: float = 0.002,
               worker_id: int = 0) -> Dict[str, int]:
    """One ACP worker, responsible for the variables in ``my_vars``."""
    revisions = 0
    am_ready = False
    while True:
        if failed.read():
            break
        # Cheap local read first; only pay for the fetch-and-clear write when
        # there is something to take.
        if work.pending_in(my_vars):
            pending = work.take(my_vars)
        else:
            pending = []
        if pending:
            if am_ready:
                ready.set_ready(worker_id, False)
                am_ready = False
            stop = False
            for var in pending:
                for constraint in problem.constraints_involving(var):
                    other = (constraint.var_b if constraint.var_a == var
                             else constraint.var_a)
                    d_var = domain.get_domain(var)
                    d_other = domain.get_domain(other)
                    revised, checks = revise(d_var, d_other, constraint, var)
                    proc.compute(checks + 2)
                    revisions += 1
                    if revised != d_var:
                        changed, empty = domain.restrict(var, revised)
                        if empty:
                            failed.set(True)
                            stop = True
                            break
                        if changed:
                            neighbours = problem.neighbours(var)
                            work.flag(tuple(neighbours))
                if stop:
                    break
            if stop:
                break
            continue
        # No local work: declare readiness and test the termination condition.
        if not am_ready:
            ready.set_ready(worker_id, True)
            am_ready = True
        # Read order matters: all_ready first, then any_pending (sequential
        # consistency then guarantees we cannot miss freshly flagged work).
        if ready.all_ready() and not work.any_pending():
            break
        proc.hold(poll_interval)
    return {"revisions": revisions}


def acp_main(proc: OrcaProcess, problem: AcpProblem,
             num_workers: Optional[int] = None,
             poll_interval: float = 0.002) -> AcpResult:
    """The Orca main process for ACP.

    The paper's program "uses at least two processors, since the master
    process that distributes the work runs on a separate processor"; here the
    master also runs on processor 0 and workers occupy the remaining
    processors when more than one is available.
    """
    workers_wanted = num_workers
    if workers_wanted is None:
        workers_wanted = max(1, proc.num_nodes - 1) if proc.num_nodes > 1 else 1

    domain = proc.new_object(DomainObject, tuple(problem.domains), name="acp-domain")
    work = proc.new_object(WorkObject, problem.num_variables, name="acp-work")
    ready = proc.new_object(ReadyObject, workers_wanted, name="acp-ready")
    failed = proc.new_object(BoolObject, False, name="acp-failed")

    partitions = partition_variables(problem.num_variables, workers_wanted)
    start_node = 1 if proc.num_nodes > 1 else 0
    workers = []
    for worker_id, my_vars in enumerate(partitions):
        node = (start_node + worker_id) % proc.num_nodes if proc.num_nodes > 1 else 0
        workers.append(
            proc.fork(acp_worker, problem, domain, work, ready, failed, my_vars,
                      poll_interval, on_node=node, worker_id=worker_id,
                      name=f"acp-worker[{worker_id}]")
        )
    results = proc.join_all(workers)

    return AcpResult(
        domain_sizes=domain.sizes(),
        consistent=not failed.read(),
        total_revisions=sum(r["revisions"] for r in results),
    )


def run_acp_program(problem: AcpProblem, num_procs: int, seed: int = 17,
                    num_workers: Optional[int] = None,
                    rts: str = "broadcast",
                    rts_options: Optional[Dict[str, Any]] = None,
                    config: Optional[ClusterConfig] = None) -> ProgramResult:
    """Convenience wrapper used by the examples, tests and benchmarks."""
    cluster_config = (config or ClusterConfig()).with_nodes(num_procs).with_seed(seed)
    program = OrcaProgram(acp_main, cluster_config, rts=rts, rts_options=rts_options)
    return program.run(problem, num_workers)
