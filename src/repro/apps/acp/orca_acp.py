"""The Orca Arc Consistency program (§4.2 of the paper).

Shared objects, mirroring the paper's description:

* ``domain`` — an array of value sets, one per variable, with operations to
  read a variable's set and to shrink it;
* ``work`` — the Booleans saying which variables must be rechecked, plus the
  per-worker idle flags the paper keeps in its ``result`` object.  Both live
  in one shared object so the distributed-termination check ("every worker
  idle and nothing flagged") is a single operation evaluated in the object's
  total write order — keeping them separate is racy, because all-idle and
  no-pending can then be observed from two different points in the order;
* ``failed`` — a Boolean set when some variable's set becomes empty (no
  solution exists).

The variables are statically partitioned among the workers.  All four objects
are replicated on every processor, so every domain/work update is broadcast —
this is exactly the CPU overhead the paper blames for ACP's speedups being
lower than the hypercube implementation's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ...config import ClusterConfig
from ...orca.builtin_objects import BoolObject
from ...orca.process import OrcaProcess
from ...orca.program import OrcaProgram, ProgramResult
from ...rts.object_model import ObjectSpec, operation
from .problem import AcpProblem, revise


class DomainObject(ObjectSpec):
    """The shared array of per-variable value sets."""

    def init(self, domains: Sequence[FrozenSet[int]] = ()) -> None:
        self.domains: List[FrozenSet[int]] = [frozenset(d) for d in domains]

    @operation(write=False)
    def get_domain(self, var: int) -> FrozenSet[int]:
        return self.domains[var]

    @operation(write=False)
    def sizes(self) -> List[int]:
        return [len(d) for d in self.domains]

    @operation(write=True)
    def restrict(self, var: int, new_domain: FrozenSet[int]) -> Tuple[bool, bool]:
        """Shrink variable ``var``'s set; returns (changed, now_empty)."""
        current = self.domains[var]
        new_domain = frozenset(new_domain) & current
        if new_domain == current:
            return False, len(current) == 0
        self.domains[var] = new_domain
        return True, len(new_domain) == 0


class WorkObject(ObjectSpec):
    """The shared 'needs rechecking' flags plus the termination state.

    Distributed termination needs to see "every worker is idle AND no
    variable is flagged" *atomically*.  Reading those from two separate
    shared objects is racy: a worker can observe all-ready before another
    worker's busy-announcement arrives, and no-pending after that worker's
    ``take`` but before its re-``flag`` — and exit while work for its
    partition is still in flight.  Folding both into one object makes the
    check a single operation in the object's total write order, which every
    replica evaluates at the same point: once ``done`` is set, no later
    operation can ever flag new work.
    """

    def init(self, num_variables: int = 0, num_workers: int = 0) -> None:
        self.flags = [True] * num_variables
        self.ready = [False] * num_workers
        self.done = False

    @operation(write=False)
    def pending_in(self, variables: Tuple[int, ...]) -> List[int]:
        """Which of ``variables`` are currently flagged (local read)."""
        return [v for v in variables if self.flags[v]]

    @operation(write=False)
    def any_pending(self) -> bool:
        return any(self.flags)

    @operation(write=True)
    def take(self, variables: Tuple[int, ...], worker: int) -> List[int]:
        """Atomically fetch-and-clear the flags of ``variables``.

        Taking work also marks the worker busy, in the same totally-ordered
        operation, so the termination check can never see a stale idle flag
        for a worker that is about to generate more work.
        """
        taken = [v for v in variables if self.flags[v]]
        for v in taken:
            self.flags[v] = False
        if taken:
            self.ready[worker] = False
        return taken

    @operation(write=True)
    def flag(self, variables: Tuple[int, ...]) -> int:
        """Mark ``variables`` as needing a recheck; returns how many were newly set."""
        newly = 0
        for v in variables:
            if not self.flags[v]:
                self.flags[v] = True
                newly += 1
        return newly

    @operation(write=True)
    def offer_termination(self, worker: int) -> bool:
        """Declare ``worker`` idle and test the termination condition.

        Applied in the object's total order, so "all workers idle and
        nothing flagged" is evaluated against the same state on every
        replica; the verdict is latched in ``done``.
        """
        self.ready[worker] = True
        if not self.done and all(self.ready) and not any(self.flags):
            self.done = True
        return self.done

    @operation(write=False)
    def finished(self) -> bool:
        return self.done


@dataclass
class AcpResult:
    """Application-level answer of the parallel ACP program."""

    domain_sizes: List[int]
    consistent: bool
    total_revisions: int


def partition_variables(num_variables: int, num_workers: int) -> List[Tuple[int, ...]]:
    """Static block partition of the variables over the workers."""
    partitions: List[Tuple[int, ...]] = []
    base = num_variables // num_workers
    extra = num_variables % num_workers
    start = 0
    for worker in range(num_workers):
        size = base + (1 if worker < extra else 0)
        partitions.append(tuple(range(start, start + size)))
        start += size
    return partitions


def acp_worker(proc: OrcaProcess, problem: AcpProblem, domain, work, failed,
               my_vars: Tuple[int, ...], poll_interval: float = 0.002,
               worker_id: int = 0) -> Dict[str, int]:
    """One ACP worker, responsible for the variables in ``my_vars``."""
    revisions = 0
    am_ready = False
    while True:
        if failed.read() or work.finished():
            break
        # Cheap local read first; only pay for the fetch-and-clear write when
        # there is something to take (taking also marks this worker busy).
        if work.pending_in(my_vars):
            pending = work.take(my_vars, worker_id)
            if pending:
                am_ready = False
        else:
            pending = []
        if pending:
            stop = False
            for var in pending:
                for constraint in problem.constraints_involving(var):
                    other = (constraint.var_b if constraint.var_a == var
                             else constraint.var_a)
                    d_var = domain.get_domain(var)
                    d_other = domain.get_domain(other)
                    revised, checks = revise(d_var, d_other, constraint, var)
                    proc.compute(checks + 2)
                    revisions += 1
                    if revised != d_var:
                        changed, empty = domain.restrict(var, revised)
                        if empty:
                            failed.set(True)
                            stop = True
                            break
                        if changed:
                            neighbours = problem.neighbours(var)
                            work.flag(tuple(neighbours))
                if stop:
                    break
            if stop:
                break
            continue
        # No local work: offer termination once per idle episode.  The offer
        # is a totally-ordered write that declares this worker idle and
        # evaluates "all idle and nothing flagged" atomically inside the
        # work object, so no freshly flagged work can slip past the check.
        # While idle, the cheap local ``finished()`` read at the loop head
        # observes a verdict latched by whichever worker went idle last;
        # only ``take`` (our own action) can clear our idle flag again.
        if not am_ready:
            if work.offer_termination(worker_id):
                break
            am_ready = True
        proc.hold(poll_interval)
    return {"revisions": revisions}


def acp_main(proc: OrcaProcess, problem: AcpProblem,
             num_workers: Optional[int] = None,
             poll_interval: float = 0.002) -> AcpResult:
    """The Orca main process for ACP.

    The paper's program "uses at least two processors, since the master
    process that distributes the work runs on a separate processor"; here the
    master also runs on processor 0 and workers occupy the remaining
    processors when more than one is available.
    """
    workers_wanted = num_workers
    if workers_wanted is None:
        workers_wanted = max(1, proc.num_nodes - 1) if proc.num_nodes > 1 else 1

    domain = proc.new_object(DomainObject, tuple(problem.domains), name="acp-domain")
    work = proc.new_object(WorkObject, problem.num_variables, workers_wanted,
                           name="acp-work")
    failed = proc.new_object(BoolObject, False, name="acp-failed")

    partitions = partition_variables(problem.num_variables, workers_wanted)
    start_node = 1 if proc.num_nodes > 1 else 0
    workers = []
    for worker_id, my_vars in enumerate(partitions):
        node = (start_node + worker_id) % proc.num_nodes if proc.num_nodes > 1 else 0
        workers.append(
            proc.fork(acp_worker, problem, domain, work, failed, my_vars,
                      poll_interval, on_node=node, worker_id=worker_id,
                      name=f"acp-worker[{worker_id}]")
        )
    results = proc.join_all(workers)

    return AcpResult(
        domain_sizes=domain.sizes(),
        consistent=not failed.read(),
        total_revisions=sum(r["revisions"] for r in results),
    )


def run_acp_program(problem: AcpProblem, num_procs: int, seed: int = 17,
                    num_workers: Optional[int] = None,
                    rts: str = "broadcast",
                    rts_options: Optional[Dict[str, Any]] = None,
                    config: Optional[ClusterConfig] = None) -> ProgramResult:
    """Convenience wrapper used by the examples, tests and benchmarks."""
    cluster_config = (config or ClusterConfig()).with_nodes(num_procs).with_seed(seed)
    program = OrcaProgram(acp_main, cluster_config, rts=rts, rts_options=rts_options)
    return program.run(problem, num_workers)
