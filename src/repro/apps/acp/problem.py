"""Arc-consistency problem instances.

An instance consists of variables ``V0..Vn-1``, each with a finite integer
domain, and binary constraints of the form ``Vi + offset <= Vj`` (the paper's
own example is ``A < B``).  Such inequality constraints propagate strongly,
which gives the algorithm plenty of work and mirrors the 64-variable input
used for Fig. 3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Tuple

from ...errors import ApplicationError


@dataclass(frozen=True)
class Constraint:
    """The binary constraint ``var_a + offset <= var_b``."""

    var_a: int
    var_b: int
    offset: int = 1

    def allows(self, value_a: int, value_b: int) -> bool:
        return value_a + self.offset <= value_b

    def involves(self, var: int) -> bool:
        return var in (self.var_a, self.var_b)


@dataclass(frozen=True)
class AcpProblem:
    """An arc-consistency instance: domains plus constraints."""

    domains: Tuple[FrozenSet[int], ...]
    constraints: Tuple[Constraint, ...]

    def __post_init__(self) -> None:
        if len(self.domains) < 2:
            raise ApplicationError("an ACP instance needs at least two variables")
        for constraint in self.constraints:
            if not (0 <= constraint.var_a < len(self.domains) and
                    0 <= constraint.var_b < len(self.domains)):
                raise ApplicationError("constraint references an unknown variable")

    @property
    def num_variables(self) -> int:
        return len(self.domains)

    def constraints_involving(self, var: int) -> List[Constraint]:
        return [c for c in self.constraints if c.involves(var)]

    def neighbours(self, var: int) -> List[int]:
        """Variables sharing a constraint with ``var``."""
        out = set()
        for constraint in self.constraints_involving(var):
            out.add(constraint.var_b if constraint.var_a == var else constraint.var_a)
        return sorted(out)

    def marshal_size(self) -> int:
        return 8 * (sum(len(d) for d in self.domains) + 3 * len(self.constraints))


def random_acp_problem(num_variables: int = 64, domain_size: int = 16,
                       constraints_per_variable: float = 2.0, seed: int = 0,
                       max_offset: int = 3, feasible: bool = True) -> AcpProblem:
    """Generate a random instance in the style of the paper's 64-variable input.

    Constraints are inequalities ``Vi + offset <= Vj`` between randomly chosen
    pairs; chains of such constraints force long propagation sequences.  When
    ``feasible`` is true (the default), constraints are generated consistently
    with a hidden random assignment, so arc consistency prunes aggressively
    but never wipes out a domain.
    """
    if num_variables < 2 or domain_size < 2:
        raise ApplicationError("instance too small")
    rng = random.Random(seed)
    domains = tuple(frozenset(range(domain_size)) for _ in range(num_variables))
    num_constraints = int(num_variables * constraints_per_variable)
    # Hidden witness assignment used to keep the instance satisfiable.
    witness = [rng.randrange(domain_size) for _ in range(num_variables)]
    constraints: List[Constraint] = []
    seen = set()

    def add_constraint(a: int, b: int) -> None:
        if feasible:
            # Orient the inequality so the witness satisfies it.
            if witness[a] > witness[b]:
                a, b = b, a
            slack = witness[b] - witness[a]
            offset = rng.randint(0, min(max_offset, slack))
        else:
            offset = rng.randint(1, max_offset)
        if (a, b) in seen or a == b:
            return
        seen.add((a, b))
        constraints.append(Constraint(a, b, offset))

    # A backbone over consecutive variables guarantees connectivity (and
    # therefore long propagation chains through the whole variable set).
    for i in range(num_variables - 1):
        add_constraint(i, i + 1)
    attempts = 0
    while len(constraints) < num_constraints and attempts < 50 * num_constraints:
        attempts += 1
        add_constraint(rng.randrange(num_variables), rng.randrange(num_variables))
    return AcpProblem(domains=domains, constraints=tuple(constraints))


def revise(domain_a: FrozenSet[int], domain_b: FrozenSet[int],
           constraint: Constraint, var: int) -> Tuple[FrozenSet[int], int]:
    """Compute the revised domain of ``var`` under ``constraint``.

    Returns the set of values of ``var`` that have at least one support in the
    other variable's domain, together with the number of value-pair checks
    performed (the work-unit count used by both implementations).
    """
    checks = 0
    if var == constraint.var_a:
        other = domain_b
        keep = set()
        for value in domain_a:
            for support in other:
                checks += 1
                if constraint.allows(value, support):
                    keep.add(value)
                    break
        return frozenset(keep), checks
    other = domain_b
    keep = set()
    for value in domain_a:
        for support in other:
            checks += 1
            if constraint.allows(support, value):
                keep.add(value)
                break
    return frozenset(keep), checks
