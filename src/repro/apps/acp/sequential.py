"""Sequential AC-3 arc consistency (the single-CPU reference)."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from .problem import AcpProblem, revise


@dataclass
class SequentialAcpResult:
    """Result of a sequential arc-consistency run."""

    domains: Tuple[FrozenSet[int], ...]
    consistent: bool
    revisions: int
    work_units: int

    def domain_sizes(self) -> List[int]:
        return [len(d) for d in self.domains]


def solve_sequential_ac3(problem: AcpProblem) -> SequentialAcpResult:
    """Run AC-3 to a fixed point; returns the maximal arc-consistent domains."""
    domains = list(problem.domains)
    queue = deque()
    for constraint in problem.constraints:
        queue.append((constraint.var_a, constraint))
        queue.append((constraint.var_b, constraint))
    revisions = 0
    work = 0
    consistent = True
    while queue:
        var, constraint = queue.popleft()
        other = constraint.var_b if constraint.var_a == var else constraint.var_a
        revised, checks = revise(domains[var], domains[other], constraint, var)
        revisions += 1
        work += checks
        if revised != domains[var]:
            domains[var] = revised
            if not revised:
                consistent = False
                break
            # Every constraint involving var (other than this one) must be rechecked.
            for neighbour_constraint in problem.constraints_involving(var):
                neighbour = (neighbour_constraint.var_b
                             if neighbour_constraint.var_a == var
                             else neighbour_constraint.var_a)
                queue.append((neighbour, neighbour_constraint))
    return SequentialAcpResult(
        domains=tuple(domains),
        consistent=consistent,
        revisions=revisions,
        work_units=work,
    )
