"""Structured collection of benchmark run results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from ..orca.program import ProgramResult


@dataclass
class RunRecord:
    """One benchmark run with its identifying parameters and measurements."""

    label: str
    params: Dict[str, Any]
    elapsed: float
    value: Any = None
    network: Dict[str, Any] = field(default_factory=dict)
    rts: Dict[str, Any] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_program_result(cls, label: str, params: Dict[str, Any],
                            result: ProgramResult, **extra: Any) -> "RunRecord":
        return cls(
            label=label,
            params=dict(params),
            elapsed=result.elapsed,
            value=result.value,
            network=dict(result.network),
            rts=dict(result.rts),
            extra=dict(extra),
        )


class RunCollection:
    """An append-only set of :class:`RunRecord` with simple query helpers."""

    def __init__(self, records: Optional[Iterable[RunRecord]] = None) -> None:
        self.records: List[RunRecord] = list(records or [])

    def add(self, record: RunRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def filter(self, **criteria: Any) -> "RunCollection":
        """Select records whose params match every given key/value."""
        selected = [
            record for record in self.records
            if all(record.params.get(key) == value for key, value in criteria.items())
        ]
        return RunCollection(selected)

    def times_by(self, param: str) -> Dict[Any, float]:
        """Map of ``param`` value to elapsed time (last record wins on duplicates)."""
        return {record.params.get(param): record.elapsed for record in self.records}

    def values_by(self, param: str) -> Dict[Any, Any]:
        return {record.params.get(param): record.value for record in self.records}

    def column(self, key: str, source: str = "params") -> List[Any]:
        """Extract one column across records (from params/network/rts/extra)."""
        return [getattr(record, source).get(key) for record in self.records]
