"""Latency distributions: deterministic histograms with percentile reporting.

Aggregate speedup hides what contended paths do to individual operations, so
the workload subsystem reports *distributions* — p50/p95/p99 — rather than
means.  The collector is a geometric-bucket histogram: samples are counted in
buckets whose bounds grow by a fixed ratio, which keeps percentile queries
deterministic (no reservoir sampling, no randomness) and memory bounded no
matter how many operations a run issues.  Exact count, mean, min and max are
tracked streaming alongside the buckets.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Smallest latency resolved exactly (seconds); everything below lands in
#: bucket 0.  One tenth of a microsecond is far below any simulated cost.
_MIN_LATENCY = 1e-7

#: Ratio between consecutive bucket upper bounds.  1.04 keeps the relative
#: quantile error under ~4% while needing only a few hundred buckets to span
#: from 0.1 us to minutes.
_GROWTH = 1.04

_LOG_GROWTH = math.log(_GROWTH)

#: The percentiles every summary reports.
REPORT_PERCENTILES = (0.50, 0.95, 0.99)


def _bucket_index(value: float) -> int:
    if value <= _MIN_LATENCY:
        return 0
    return 1 + int(math.log(value / _MIN_LATENCY) / _LOG_GROWTH)


def _bucket_upper_bound(index: int) -> float:
    if index == 0:
        return _MIN_LATENCY
    return _MIN_LATENCY * (_GROWTH ** index)


class LatencyHistogram:
    """A geometric-bucket latency histogram with deterministic percentiles."""

    __slots__ = ("count", "total", "min", "max", "_buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._buckets: Dict[int, int] = {}

    # -- recording -------------------------------------------------------- #

    def record(self, seconds: float) -> None:
        """Add one latency sample (negative samples clamp to zero)."""
        value = max(0.0, seconds)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = _bucket_index(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram's samples into this one."""
        self.count += other.count
        self.total += other.total
        for bound in (other.min, other.max):
            if bound is None:
                continue
            if self.min is None or bound < self.min:
                self.min = bound
            if self.max is None or bound > self.max:
                self.max = bound
        for index, n in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + n

    # -- queries ----------------------------------------------------------- #

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """The latency at quantile ``fraction`` (e.g. 0.99 for p99).

        Returns the upper bound of the bucket containing the quantile,
        clamped to the exact observed maximum.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"percentile fraction must be in (0, 1], got {fraction}")
        if self.count == 0:
            return 0.0
        target = math.ceil(fraction * self.count)
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= target:
                return min(_bucket_upper_bound(index), self.max or 0.0)
        return self.max or 0.0  # pragma: no cover - unreachable

    def summary(self, percentiles: Sequence[float] = REPORT_PERCENTILES) -> Dict[str, float]:
        """A compact dict: count, mean, min/max and the requested percentiles."""
        out: Dict[str, float] = {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.min or 0.0,
            "max": self.max or 0.0,
        }
        for fraction in percentiles:
            out[f"p{int(round(fraction * 100))}"] = self.percentile(fraction)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<LatencyHistogram n={self.count} mean={self.mean * 1000:.3f}ms "
                f"p99={self.percentile(0.99) * 1000:.3f}ms>")


class LatencyRecorder:
    """Named latency histograms (one per operation class: read, write, ...).

    The recorder is what gets attached to a runtime system's invocation path
    (see :class:`repro.rts.stats.LatencyProbe`) and what the workload runner
    uses for client-observed request latencies.
    """

    def __init__(self) -> None:
        self._histograms: Dict[str, LatencyHistogram] = {}

    def record(self, kind: str, seconds: float) -> None:
        histogram = self._histograms.get(kind)
        if histogram is None:
            histogram = LatencyHistogram()
            self._histograms[kind] = histogram
        histogram.record(seconds)

    def histogram(self, kind: str) -> LatencyHistogram:
        """The histogram for ``kind`` (an empty one if never recorded)."""
        return self._histograms.get(kind, LatencyHistogram())

    def kinds(self) -> List[str]:
        return sorted(self._histograms)

    def merged(self, kinds: Optional[Iterable[str]] = None) -> LatencyHistogram:
        """One histogram folding together the given kinds (default: all)."""
        merged = LatencyHistogram()
        for kind in (self.kinds() if kinds is None else kinds):
            existing = self._histograms.get(kind)
            if existing is not None:
                merged.merge(existing)
        return merged

    def summaries(self) -> Dict[str, Dict[str, float]]:
        """Per-kind summaries plus an ``overall`` entry merging everything."""
        out = {kind: hist.summary() for kind, hist in sorted(self._histograms.items())}
        out["overall"] = self.merged().summary()
        return out


def rounded_summary(summary: Dict[str, float], digits: int = 9) -> Dict[str, float]:
    """A fingerprint-stable copy of a histogram summary.

    Counts become ints; every other field is rounded to ``digits`` decimal
    places, matching the rounding :meth:`WorkloadReport.fingerprint` applies
    to its own latency columns so summaries embed into canonical-JSON
    reports without float-repr jitter.
    """
    out: Dict[str, float] = {}
    for key, value in summary.items():
        out[key] = int(value) if key == "count" else round(value, digits)
    return out


def format_latency_row(summary: Dict[str, float]) -> Tuple[str, str, str, str]:
    """Render (p50, p95, p99, mean) of a summary in milliseconds for tables."""
    return (f"{summary['p50'] * 1000:.3f}",
            f"{summary['p95'] * 1000:.3f}",
            f"{summary['p99'] * 1000:.3f}",
            f"{summary['mean'] * 1000:.3f}")
