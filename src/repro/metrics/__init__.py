"""Measurement utilities: speedup curves, run summaries, and report formatting."""

from .collectors import RunRecord, RunCollection
from .report import ascii_plot, format_table
from .speedup import SpeedupCurve, speedup_from_times

__all__ = [
    "RunRecord",
    "RunCollection",
    "SpeedupCurve",
    "speedup_from_times",
    "format_table",
    "ascii_plot",
]
