"""Plain-text report formatting: tables and the paper-style speedup plots."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                 title: Optional[str] = None) -> str:
    """Render a simple aligned text table."""
    columns = len(headers)
    widths = [len(str(h)) for h in headers]
    for row in rows:
        for i in range(columns):
            widths[i] = max(widths[i], len(str(row[i])))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for row in rows:
        lines.append("  ".join(str(row[i]).ljust(widths[i]) for i in range(columns)))
    return "\n".join(lines)


def ascii_plot(series: Dict[str, Dict[float, float]], width: int = 60, height: int = 18,
               x_label: str = "processors", y_label: str = "speedup",
               title: Optional[str] = None, y_max: Optional[float] = None) -> str:
    """Render one or more (x -> y) series as an ASCII scatter plot.

    Used to regenerate the paper's Fig. 2 / Fig. 3 style speedup charts in a
    terminal.  Each series gets a distinct marker character.
    """
    markers = "*o+x#@"
    all_x = [x for points in series.values() for x in points]
    all_y = [y for points in series.values() for y in points]
    if not all_x:
        return "(no data)"
    x_min, x_max = min(all_x), max(all_x)
    y_min = 0.0
    y_top = y_max if y_max is not None else max(all_y) * 1.05
    if x_max == x_min:
        x_max = x_min + 1
    if y_top <= y_min:
        y_top = y_min + 1

    grid = [[" " for _ in range(width)] for _ in range(height)]
    for index, (name, points) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in points.items():
            col = int(round((x - x_min) / (x_max - x_min) * (width - 1)))
            row = int(round((y - y_min) / (y_top - y_min) * (height - 1)))
            row = min(height - 1, max(0, row))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        y_value = y_top - (y_top - y_min) * i / (height - 1)
        lines.append(f"{y_value:6.1f} |" + "".join(row))
    lines.append(" " * 7 + "+" + "-" * width)
    lines.append(" " * 8 + f"{x_min:<10.0f}{x_label:^{max(0, width - 20)}}{x_max:>10.0f}")
    legend = "   ".join(f"{markers[i % len(markers)]} = {name}"
                        for i, name in enumerate(series))
    lines.append(f"        [{y_label}]  {legend}")
    return "\n".join(lines)
