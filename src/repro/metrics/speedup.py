"""Speedup and efficiency computation for scaling experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ReproError


@dataclass
class SpeedupCurve:
    """Speedup of a program as a function of the number of processors.

    The baseline is the elapsed time on ``base_procs`` processors (usually 1;
    the paper's ACP figure uses 2 because the master occupies a processor).
    Speedups are normalised so that the curve passes through
    ``(base_procs, base_procs)``, matching how the paper plots its figures.
    """

    times: Dict[int, float]
    base_procs: int = 1

    def __post_init__(self) -> None:
        if self.base_procs not in self.times:
            raise ReproError(
                f"no measurement for the baseline processor count {self.base_procs}"
            )
        if any(t <= 0 for t in self.times.values()):
            raise ReproError("elapsed times must be positive")

    @property
    def processor_counts(self) -> List[int]:
        return sorted(self.times)

    def speedup(self, procs: int) -> float:
        """Speedup on ``procs`` processors relative to the baseline run."""
        base_time = self.times[self.base_procs]
        return self.base_procs * base_time / self.times[procs]

    def efficiency(self, procs: int) -> float:
        """Parallel efficiency: speedup divided by processor count."""
        return self.speedup(procs) / procs

    def speedups(self) -> Dict[int, float]:
        return {p: self.speedup(p) for p in self.processor_counts}

    def efficiencies(self) -> Dict[int, float]:
        return {p: self.efficiency(p) for p in self.processor_counts}

    def as_rows(self) -> List[List[str]]:
        """Rows (CPUs, time, speedup, efficiency) for tabular reports."""
        rows = []
        for procs in self.processor_counts:
            rows.append([
                str(procs),
                f"{self.times[procs]:.4f}",
                f"{self.speedup(procs):.2f}",
                f"{self.efficiency(procs) * 100:.0f}%",
            ])
        return rows


def speedup_from_times(times: Dict[int, float], base_procs: Optional[int] = None) -> SpeedupCurve:
    """Build a :class:`SpeedupCurve`, defaulting the baseline to the smallest count."""
    if not times:
        raise ReproError("no measurements provided")
    base = min(times) if base_procs is None else base_procs
    return SpeedupCurve(times=dict(times), base_procs=base)
