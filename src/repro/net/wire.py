"""Wire framing: length-prefixed JSON encoding of the existing Message type.

One frame is a 4-byte big-endian payload length followed by a UTF-8 JSON
object with the fields of :class:`~repro.amoeba.message.Message`.  On the UDP
data plane one datagram carries exactly one frame (the prefix doubles as a
truncation check); on TCP streams frames are concatenated and
:class:`StreamDecoder` re-splits them.

JSON cannot tell tuples from lists, so payloads and headers must be built
from JSON-native values (dicts, lists, strings, numbers, booleans, None).
The real protocol controls every payload it sends, and
:func:`jsonify` normalises recursively for state snapshots that may contain
tuples.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Iterator, List

from ..amoeba.message import Message
from ..errors import NetworkError

#: Largest frame the backend will encode or accept.  Loopback UDP handles
#: ~64 KiB datagrams; protocol messages (including takeover state snapshots
#: for the small workload objects) stay far below this.
MAX_FRAME = 60_000

_PREFIX = struct.Struct(">I")


def jsonify(value: Any) -> Any:
    """Recursively normalise ``value`` into JSON-native types.

    Tuples become lists, dict keys become strings; anything not JSON-native
    raises :class:`NetworkError` so protocol bugs fail loudly at the sender
    rather than as a decode error at the receiver.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [jsonify(item) for item in value]
    if isinstance(value, dict):
        return {str(key): jsonify(item) for key, item in value.items()}
    raise NetworkError(f"value {value!r} is not wire-encodable")


def encode_message(msg: Message) -> bytes:
    """Encode one message as a length-prefixed JSON frame."""
    body = json.dumps(
        {
            "src": msg.src,
            "dst": msg.dst,
            "kind": msg.kind,
            "payload": jsonify(msg.payload),
            "size": msg.size,
            "headers": jsonify(msg.headers),
            "msg_id": msg.msg_id,
        },
        separators=(",", ":"),
    ).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise NetworkError(
            f"message {msg.kind!r} encodes to {len(body)} bytes "
            f"(wire limit {MAX_FRAME})")
    return _PREFIX.pack(len(body)) + body


def decode_message(frame: bytes) -> Message:
    """Decode one complete frame back into a Message.

    Raises :class:`NetworkError` on truncated or trailing bytes, so a
    corrupted datagram is dropped by the caller instead of half-parsed.
    """
    if len(frame) < _PREFIX.size:
        raise NetworkError(f"short frame: {len(frame)} bytes")
    (length,) = _PREFIX.unpack_from(frame)
    body = frame[_PREFIX.size:]
    if length != len(body) or length > MAX_FRAME:
        raise NetworkError(
            f"frame length mismatch: prefix {length}, body {len(body)}")
    fields = json.loads(body.decode("utf-8"))
    return Message(
        src=fields["src"],
        dst=fields["dst"],
        kind=fields["kind"],
        payload=fields["payload"],
        size=fields["size"],
        headers=fields["headers"],
        msg_id=fields["msg_id"],
    )


class StreamDecoder:
    """Incremental frame splitter for TCP byte streams."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Message]:
        """Add bytes; return every message completed by them (in order)."""
        self._buffer.extend(data)
        return list(self._drain())

    def _drain(self) -> Iterator[Message]:
        while True:
            if len(self._buffer) < _PREFIX.size:
                return
            (length,) = _PREFIX.unpack_from(self._buffer)
            if length > MAX_FRAME:
                raise NetworkError(f"oversized frame announced: {length}")
            end = _PREFIX.size + length
            if len(self._buffer) < end:
                return
            frame = bytes(self._buffer[:end])
            del self._buffer[:end]
            yield decode_message(frame)

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)
