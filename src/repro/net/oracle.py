"""The simulator as the real backend's deterministic oracle.

Both backends drive their clients from the *same* named rng streams
(``workload.client.<node>.<client>`` under the run's seed), so the sequence
of requests every client issues — keys, read/write mix, operation mapping —
is byte-identical across backends.  That identity is what makes convergence
checkable:

* :func:`record_sim_oracle` runs the identical workload on the simulator and
  keeps the per-object write counts and the scenario's validated facts;
* :func:`expected_issued_writes` replays the request streams through the
  scenario's own ``perform`` against in-memory objects, recording each
  client's ordered write list (the ``cseq`` ground truth) and, for
  commutative scenarios, the exact expected final states;
* :func:`check_convergence` asserts the real run's collected states form an
  *equivalent serializable state*: every surviving replica identical, every
  issued write applied exactly once, each client's writes applied in issue
  order, and the scenario's own invariants (counter totals, queue
  conservation) holding against both the stream replay and the simulator's
  facts.

Timing-dependent quantities (a queue's backlog, which poll got which item)
legitimately differ between backends; the checks here are exactly the
order-insensitive ones both must agree on.
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
from collections import Counter
from typing import Any, Dict, List, Optional, Tuple, Type

from ..rts.base import ObjectHandle
from ..rts.object_model import ObjectSpec, execute_operation
from ..sim.rng import RngRegistry
from ..workloads.scenarios import ScenarioRegistry
from ..workloads.spec import request_stream, traced_request_stream
from .harness import RealCluster, RealClusterConfig
from .wire import jsonify

#: Scenario kinds whose writes commute, so the stream replay predicts the
#: exact final object states (not just the write counts).
COMMUTATIVE_SCENARIOS = ("counter-farm", "hotspot-shift", "hot-spot",
                         "primary-churn")


def churn_victims(num_nodes: int) -> Tuple[int, ...]:
    """The victim set the sim's ``primary-churn`` scenario would crash.

    A real kill run must SIGKILL the *same* nodes the simulated scenario
    crashes (the highest-numbered ones, up to two, never below two
    survivors), or the two backends' client sets — and therefore their
    request streams — diverge and the oracle comparison is meaningless.
    """
    count = min(2, max(0, num_nodes - 2))
    return tuple(num_nodes - 1 - i for i in range(count))


# ---------------------------------------------------------------------- #
# Recording the simulator's side
# ---------------------------------------------------------------------- #


def record_sim_oracle(config: RealClusterConfig,
                      runtime: str = "broadcast") -> Dict[str, Any]:
    """Run the identical workload on the simulator; keep what must match.

    For kill runs the caller uses the ``primary-churn`` scenario, whose
    simulated victims are the highest-numbered nodes — the same nodes a
    :class:`RealClusterConfig` kill schedule must name — so both backends
    crash the same machines under the same client set.
    """
    from ..workloads.runner import WorkloadRunner

    report = WorkloadRunner(
        scenario=config.scenario,
        workload=config.spec,
        runtime=runtime,
        num_nodes=config.num_nodes,
        clients_per_node=config.clients_per_node,
        seed=config.seed,
        num_shards=config.num_shards,
    ).run()
    return {
        "facts": dict(report.scenario_facts),
        "per_object_writes": {name: row["writes"]
                              for name, row in report.object_rows().items()},
        "reads": report.reads,
        "writes": report.writes,
        "total_ops": report.total_ops,
        "elapsed": report.elapsed,
        "throughput": report.throughput,
        "fingerprint": report.fingerprint(),
    }


# ---------------------------------------------------------------------- #
# Replaying the request streams (backend-independent ground truth)
# ---------------------------------------------------------------------- #


class _ProbeRts:
    """In-memory RuntimeSystem stand-in: applies operations immediately.

    Shared instances give scenario ``perform`` implementations working
    return values; every write operation is also recorded against the
    issuing client in issue order — the ground truth the exactly-once and
    FIFO checks compare applied logs against.
    """

    def __init__(self) -> None:
        self.instances: Dict[int, ObjectSpec] = {}
        self.names: Dict[int, str] = {}
        self.client_writes: Dict[Tuple[int, int], List[Tuple[str, str]]] = {}
        self.put_values: List[Any] = []
        self._ids = itertools.count(1)

    def create_object(self, proc: Any, spec_class: Type[ObjectSpec],
                      args: Tuple[Any, ...] = (),
                      kwargs: Optional[Dict[str, Any]] = None,
                      name: Optional[str] = None,
                      policy: Any = None) -> ObjectHandle:
        obj_id = next(self._ids)
        if name is None:
            name = f"{spec_class.__name__}#{obj_id}"
        self.instances[obj_id] = spec_class.create(tuple(args),
                                                   dict(kwargs or {}))
        self.names[obj_id] = name
        return ObjectHandle(obj_id=obj_id, name=name, spec_class=spec_class)

    def invoke(self, proc: Any, handle: ObjectHandle, op_name: str,
               args: Tuple[Any, ...] = (),
               kwargs: Optional[Dict[str, Any]] = None) -> Any:
        op = handle.spec_class.operation_def(op_name)
        if op.is_write:
            client = (proc.node_id, proc.client_id)
            self.client_writes.setdefault(client, []).append(
                (handle.name, op_name))
            if op_name == "put":
                self.put_values.append(args[0])
        return execute_operation(self.instances[handle.obj_id], op,
                                 tuple(args), kwargs)


class _ProbeProc:
    def __init__(self, node_id: int, client_id: int) -> None:
        self.node_id = node_id
        self.client_id = client_id


def expected_issued_writes(config: RealClusterConfig) -> Dict[str, Any]:
    """Replay every client's stream; return the backend-independent truth."""
    scenario = ScenarioRegistry.create(config.scenario, config.spec)
    probe = _ProbeRts()
    scenario.setup(probe, None)
    spec = config.spec
    reads = writes = 0
    registry = RngRegistry(config.seed)
    for node_id in config.client_nodes:
        for client_id in range(config.clients_per_node):
            rng = registry.stream(f"workload.client.{node_id}.{client_id}")
            proc = _ProbeProc(node_id, client_id)
            if spec.arrival_trace:
                requests = (request for request, _arrival
                            in traced_request_stream(spec, rng))
                for request in requests:
                    scenario.perform(probe, proc, request)
                    writes += request.is_write
                    reads += not request.is_write
                continue
            phases = spec.resolved_phases()
            open_loop = spec.client_model == "open"
            for request in request_stream(spec, rng):
                phase = phases[request.phase]
                # Mirror the client loops' extra rng draws exactly, or the
                # shared stream (and every later request) would diverge.
                if open_loop:
                    rng.expovariate(phase.arrival_rate)
                elif phase.think_time > 0.0:
                    rng.expovariate(1.0 / phase.think_time)
                scenario.perform(probe, proc, request)
                writes += request.is_write
                reads += not request.is_write
    per_object = Counter(name
                         for issued in probe.client_writes.values()
                         for name, _op in issued)
    return {
        "reads": reads,
        "writes": writes,
        "per_client_writes": probe.client_writes,
        "per_object_writes": dict(per_object),
        "put_values": Counter(probe.put_values),
        "final_states": {probe.names[obj_id]: jsonify(inst.marshal_state())
                         for obj_id, inst in probe.instances.items()},
    }


# ---------------------------------------------------------------------- #
# The convergence check
# ---------------------------------------------------------------------- #


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise AssertionError(f"convergence violation: {message}")


def check_convergence(result: Dict[str, Any], expected: Dict[str, Any],
                      sim_oracle: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Assert a real run converged to a state equivalent to the oracle's.

    ``result`` is :meth:`RealCluster.run_workload`'s return value,
    ``expected`` comes from :func:`expected_issued_writes`, and
    ``sim_oracle`` (optional) from :func:`record_sim_oracle`.  Raises
    :class:`AssertionError` on the first violation; returns a facts digest.
    """
    nodes = result["nodes"]
    _require(bool(nodes), "no surviving node reported state")
    node_ids = sorted(nodes)
    reference = nodes[node_ids[0]]["objects"]

    # 1. Replica agreement: every surviving replica of every object ended
    # with identical state, version, primary seat and applied log.
    for node_id in node_ids[1:]:
        objects = nodes[node_id]["objects"]
        _require(set(objects) == set(reference),
                 f"node {node_id} tracks a different object set")
        for obj_id, row in reference.items():
            other = objects[obj_id]
            for key in ("state", "applied_log", "version", "primary"):
                _require(
                    json.dumps(other[key], sort_keys=True)
                    == json.dumps(row[key], sort_keys=True),
                    f"replicas disagree on {row['name']!r} {key}: node "
                    f"{node_ids[0]} has {row[key]!r}, node {node_id} has "
                    f"{other[key]!r}")

    # 2. Request accounting: the real clients issued exactly the streams'
    # requests (every client ran to completion).
    _require(result["reads"] == expected["reads"],
             f"read count {result['reads']} != issued {expected['reads']}")
    _require(result["writes"] == expected["writes"],
             f"write count {result['writes']} != issued {expected['writes']}")

    # 3. Exactly-once + per-client FIFO, from the (agreed) applied logs:
    # each client's cseqs must appear exactly once across all objects, in
    # issue order per object, and name the operation the stream issued.
    applied: Dict[Tuple[int, int], Dict[int, Tuple[str, str]]] = {}
    for row in reference.values():
        per_client_last: Dict[Tuple[int, int], int] = {}
        for node, client_id, cseq, op in row["applied_log"]:
            client = (node, client_id)
            _require(per_client_last.get(client, 0) < cseq,
                     f"object {row['name']!r} applied client {client} writes "
                     f"out of issue order (cseq {cseq} after "
                     f"{per_client_last.get(client)})")
            per_client_last[client] = cseq
            seen = applied.setdefault(client, {})
            _require(cseq not in seen,
                     f"client {client} write cseq {cseq} applied twice "
                     f"({seen.get(cseq)} and ({row['name']!r}, {op!r}))")
            seen[cseq] = (row["name"], op)
    expected_clients = {client: issued
                        for client, issued
                        in expected["per_client_writes"].items() if issued}
    _require(set(applied) == set(expected_clients),
             f"applied-write client set {sorted(applied)} != issued "
             f"{sorted(expected_clients)}")
    for client, issued in expected_clients.items():
        seen = applied[client]
        _require(set(seen) == set(range(1, len(issued) + 1)),
                 f"client {client} applied cseqs {sorted(seen)} are not "
                 f"exactly 1..{len(issued)}")
        for cseq, (name, op) in seen.items():
            _require(issued[cseq - 1] == (name, op),
                     f"client {client} cseq {cseq} applied as ({name!r}, "
                     f"{op!r}) but issued {issued[cseq - 1]!r}")

    # 4. Scenario invariants on the converged state.
    facts: Dict[str, Any] = {"objects": len(reference),
                             "clients": len(expected_clients)}
    scenario = result["scenario"]
    per_object_writes = expected["per_object_writes"]
    if scenario in COMMUTATIVE_SCENARIOS:
        for row in reference.values():
            want = expected["final_states"].get(row["name"])
            _require(
                json.dumps(row["state"], sort_keys=True)
                == json.dumps(want, sort_keys=True),
                f"object {row['name']!r} converged to {row['state']!r}, "
                f"expected {want!r}")
        facts["counter_total"] = sum(row["state"].get("value", 0)
                                     for row in reference.values())
    elif scenario == "fifo-queue":
        row = next(iter(reference.values()))
        state = row["state"]
        # Every write *operation* on the queue is a put or a poll (polls
        # ride read requests but mutate), so the op-level total decomposes.
        _require(state["enqueued"] + state["dequeued"] + state["empty_polls"]
                 == per_object_writes.get(row["name"], 0),
                 f"queue write accounting is inconsistent: "
                 f"{state['enqueued']} + {state['dequeued']} + "
                 f"{state['empty_polls']} != "
                 f"{per_object_writes.get(row['name'], 0)} write ops")
        puts = sum(expected["put_values"].values())
        _require(state["enqueued"] == puts,
                 f"queue enqueued {state['enqueued']} != issued puts {puts}")
        _require(state["enqueued"] - state["dequeued"]
                 == len(state["items"]),
                 f"queue conservation broken: {state['enqueued']} enqueued, "
                 f"{state['dequeued']} dequeued, {len(state['items'])} left")
        backlog = Counter(state["items"])
        _require(not backlog - expected["put_values"],
                 "queue holds items no client ever put")
        facts["backlog"] = len(state["items"])
        facts["enqueued"] = state["enqueued"]

    # 5. Against the simulator's run of the identical workload.
    if sim_oracle is not None:
        _require(sim_oracle["writes"] == expected["writes"],
                 f"simulator issued {sim_oracle['writes']} writes, stream "
                 f"replay issued {expected['writes']} — oracle mismatch")
        # The sim summary omits objects that saw no traffic; compare the
        # non-zero counts.
        sim_writes = {name: count for name, count
                      in sim_oracle["per_object_writes"].items() if count}
        real_writes = {name: count for name, count
                       in per_object_writes.items() if count}
        _require(sim_writes == real_writes,
                 f"per-object write counts diverge from the simulator: "
                 f"{sim_writes} != {real_writes}")
        sim_total = sim_oracle["facts"].get("counter_total")
        if sim_total is not None and "counter_total" in facts:
            _require(facts["counter_total"] == sim_total,
                     f"counter total {facts['counter_total']} != "
                     f"simulator's {sim_total}")
        sim_enqueued = sim_oracle["facts"].get("enqueued")
        if sim_enqueued is not None and "enqueued" in facts:
            _require(facts["enqueued"] == sim_enqueued,
                     f"queue enqueued {facts['enqueued']} != "
                     f"simulator's {sim_enqueued}")
    if result.get("killed"):
        facts["killed"] = list(result["killed"])
        takeovers = sum(reply.get("stats", {}).get("takeovers", 0)
                        for reply in nodes.values())
        facts["takeovers"] = takeovers
    return facts


# ---------------------------------------------------------------------- #
# CLI: one oracle-checked real run
# ---------------------------------------------------------------------- #


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="run one workload on the real backend and check it "
                    "against the simulator oracle")
    parser.add_argument("--scenario", default="counter-farm")
    parser.add_argument("--nodes", type=int, default=3)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--clients-per-node", type=int, default=1)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--kill", action="store_true",
                        help="stage a primary-churn run that SIGKILLs the "
                             "victim node mid-workload")
    parser.add_argument("--skip-sim", action="store_true",
                        help="check against the stream replay only")
    args = parser.parse_args(argv)

    kwargs: Dict[str, Any] = {}
    scenario = args.scenario
    if args.kill:
        scenario = "primary-churn"
        victims = churn_victims(args.nodes)
        kwargs.update(victims=victims,
                      kill_after=tuple(0.2 + 0.15 * i
                                       for i in range(len(victims))))
        spec = ScenarioRegistry.get(scenario).default_spec()
        kwargs.update(workload=spec.with_overrides(ops_per_client=120))
    config = RealClusterConfig(
        scenario=scenario, num_nodes=args.nodes, num_shards=args.shards,
        clients_per_node=args.clients_per_node, seed=args.seed, **kwargs)
    expected = expected_issued_writes(config)
    sim = None if args.skip_sim else record_sim_oracle(config)
    with RealCluster(config) as cluster:
        result = cluster.run_workload()
    facts = check_convergence(result, expected, sim)
    digest = {
        "scenario": scenario,
        "seed": args.seed,
        "nodes": args.nodes,
        "shards": args.shards,
        "ops": result["reads"] + result["writes"],
        "elapsed": result["elapsed"],
        "converged": True,
        "facts": facts,
    }
    json.dump(digest, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
