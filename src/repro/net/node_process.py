"""One node of the real-process backend (``python -m repro.net.node_process``).

The child binds a UDP data-plane socket on an ephemeral port, connects out
to the harness's TCP control listener, announces itself, and then serves
harness commands one at a time:

``start``
    Install the peer table, shard seats, object table and protocol timers,
    then start the protocol engine (heartbeats, failure monitor, beacons).
``run_clients``
    Replay the scenario's setup against the local replicas (handle binding),
    then launch one OS thread per client.  Each client replays exactly the
    request stream its simulated twin draws — same named rng stream, same
    draw order — so the write multiset is identical across backends.
    Returns immediately; the harness polls ``status`` for completion.
``status``
    Client progress plus the engine's quiescence counters.
``collect``
    Final object states, applied logs and statistics for the oracle.
``shutdown``
    Stop the engine and exit.

Client loops intentionally reproduce the *draw order* of the simulator's
client bodies: the think-time and open-loop arrival draws come from the same
rng stream as the requests, so skipping them would derail every subsequent
request.  Timing itself is advisory — closed-loop pacing sleeps (bounded)
real time, open-loop arrivals are issued back to back — because the oracle
compares converged state, not timing.
"""

from __future__ import annotations

import argparse
import asyncio
import threading
import time
import traceback
from typing import Any, Dict, List

from ..sim.rng import RngRegistry
from ..workloads.scenarios import Scenario, ScenarioRegistry
from ..workloads.spec import WorkloadSpec, request_stream, traced_request_stream
from .control import AsyncControlChannel
from .rts_adapter import ClientProc, RealRtsFacade, spec_from_payload
from .runtime import RealRuntime, RealTimings
from .udp import UdpTransport

#: Ceiling on one closed-loop think-time sleep, so a long exponential draw
#: cannot stall a CI run (the draw still happens — stream alignment first).
MAX_THINK_SLEEP = 0.05


class _ClientPool:
    """The node's client threads and their shared progress counters."""

    def __init__(self) -> None:
        self.threads: List[threading.Thread] = []
        self.errors: List[str] = []
        self.reads = 0
        self.writes = 0
        self.lock = threading.Lock()
        self.started_at: float = 0.0
        self.ended_at: float = 0.0

    def note(self, is_write: bool) -> None:
        with self.lock:
            if is_write:
                self.writes += 1
            else:
                self.reads += 1

    def note_error(self, text: str) -> None:
        with self.lock:
            self.errors.append(text)

    def note_end(self) -> None:
        with self.lock:
            self.ended_at = max(self.ended_at, time.monotonic())

    def running(self) -> int:
        return sum(1 for thread in self.threads if thread.is_alive())

    def summary(self) -> Dict[str, Any]:
        with self.lock:
            return {
                "clients_running": self.running(),
                "reads": self.reads,
                "writes": self.writes,
                "errors": list(self.errors),
                "started_at": self.started_at,
                "ended_at": self.ended_at,
            }


def _client_loop(facade: RealRtsFacade, scenario: Scenario,
                 spec: WorkloadSpec, proc: ClientProc,
                 pool: _ClientPool, seed: int) -> None:
    rng = RngRegistry(seed).stream(
        f"workload.client.{proc.node_id}.{proc.client_id}")
    try:
        if spec.arrival_trace:
            for request, _arrival in traced_request_stream(spec, rng):
                scenario.perform(facade, proc, request)
                pool.note(request.is_write)
            return
        phases = spec.resolved_phases()
        open_loop = spec.client_model == "open"
        for request in request_stream(spec, rng):
            phase = phases[request.phase]
            if open_loop:
                # Draw (and discard) the arrival gap the simulated client
                # draws here, keeping the shared rng stream aligned.
                rng.expovariate(phase.arrival_rate)
            elif phase.think_time > 0.0:
                delay = rng.expovariate(1.0 / phase.think_time)
                time.sleep(min(delay, MAX_THINK_SLEEP))
            scenario.perform(facade, proc, request)
            pool.note(request.is_write)
    except Exception:
        pool.note_error(
            f"client {proc.node_id}.{proc.client_id}:\n"
            f"{traceback.format_exc()}")
    finally:
        pool.note_end()


async def serve(node_id: int, host: str, control_port: int) -> None:
    transport = UdpTransport(node_id)
    udp_port = await transport.open(host)
    reader, writer = await asyncio.open_connection(host, control_port)
    channel = AsyncControlChannel(reader, writer)
    await channel.send({"hello": True, "node_id": node_id,
                        "udp_port": udp_port})
    loop = asyncio.get_running_loop()
    runtime: RealRuntime = None  # set by "start"
    pool = _ClientPool()
    try:
        while True:
            command = await channel.recv()
            if command is None:
                break
            try:
                reply = {"ok": True}
                name = command["cmd"]
                if name == "start":
                    transport.set_peers({
                        int(peer): (addr[0], int(addr[1]))
                        for peer, addr in command["peers"].items()})
                    runtime = RealRuntime(
                        node_id, transport,
                        RealTimings(**command.get("timings", {})))
                    runtime.set_seats(command["seats"])
                    runtime.install_objects(command["objects"])
                    await runtime.start()
                elif name == "run_clients":
                    spec = spec_from_payload(command["spec"])
                    scenario = ScenarioRegistry.create(command["scenario"],
                                                       spec)
                    facade = RealRtsFacade(
                        runtime, loop,
                        op_timeout=float(command.get("op_timeout", 60.0)))
                    scenario.setup(facade, None)
                    pool.started_at = time.monotonic()
                    for client_id in command["clients"]:
                        proc = ClientProc(node_id, int(client_id))
                        thread = threading.Thread(
                            target=_client_loop,
                            args=(facade, scenario, spec, proc, pool,
                                  int(command["seed"])),
                            name=f"client{client_id}", daemon=True)
                        pool.threads.append(thread)
                        thread.start()
                elif name == "status":
                    reply["clients"] = pool.summary()
                    reply["runtime"] = (runtime.status()
                                        if runtime is not None else None)
                elif name == "collect":
                    reply["clients"] = pool.summary()
                    reply.update(runtime.collect())
                elif name == "shutdown":
                    await channel.send(reply)
                    break
                else:
                    reply = {"ok": False, "error": f"unknown command {name!r}"}
                await channel.send(reply)
            except Exception as exc:
                await channel.send({"ok": False, "error": repr(exc),
                                    "traceback": traceback.format_exc()})
    finally:
        if runtime is not None:
            await runtime.stop()
        transport.close()
        channel.close()


def main(argv: List[str] = None) -> None:
    parser = argparse.ArgumentParser(
        description="one node of the real-process execution backend")
    parser.add_argument("--node-id", type=int, required=True)
    parser.add_argument("--control-port", type=int, required=True)
    parser.add_argument("--host", default="127.0.0.1")
    args = parser.parse_args(argv)
    asyncio.run(serve(args.node_id, args.host, args.control_port))


if __name__ == "__main__":
    main()
