"""The real-process execution backend.

Everything in :mod:`repro.sim` / :mod:`repro.amoeba` runs the shared-object
protocols inside one deterministic discrete-event simulator.  This package
runs the *same* protocol shapes — sharded fixed-sequencer total-order
broadcast, per-object management policies (replicated-broadcast and
primary-copy with takeover), per-client FIFO with exactly-once delivery —
across real OS processes talking asyncio UDP on the loopback interface, with
the simulator kept as the deterministic *oracle*: a sim run of the identical
workload pins down the request streams and the equivalent final state the
real run must converge to.

Layout
------
``wire``          length-prefixed JSON framing of the existing
                  :class:`~repro.amoeba.message.Message` type
``udp``           :class:`UdpTransport` — the asyncio implementation of the
                  :class:`~repro.amoeba.transport.Transport` seam
``runtime``       the per-process protocol engine (ordering, primaries,
                  heartbeats, takeover)
``rts_adapter``   a RuntimeSystem facade so the existing workload
                  :class:`~repro.workloads.scenarios.Scenario` classes run
                  unchanged against the real backend
``node_process``  the ``python -m repro.net.node_process`` child entry point
``control``       JSON-lines control plane between harness and nodes
``harness``       :class:`RealCluster` — spawns node processes, drives
                  workloads, kills nodes, collects state
``runner``        :func:`run_real_workload` producing the same
                  :class:`~repro.workloads.runner.WorkloadReport` the sim
                  backend produces
``oracle``        record a sim run, replay it for real, check convergence
"""

from .harness import RealCluster, RealClusterConfig  # noqa: F401
from .oracle import (check_convergence, expected_issued_writes,  # noqa: F401
                     record_sim_oracle)
from .runner import run_real_workload  # noqa: F401
