"""The multi-process cluster harness of the real-socket backend.

:class:`RealCluster` owns the whole life cycle of one real run: it computes
the deterministic object table by replaying the scenario's setup against a
:class:`~repro.net.rts_adapter.RecordingRts`, spawns one
``repro.net.node_process`` child per node, distributes the peer/seat/object
tables over the control plane, fans the workload out to the client nodes,
optionally SIGKILLs victim nodes mid-run (the real-socket analogue of the
simulator's staged crashes), polls until every surviving node has quiesced —
clients finished, no pending writes, hold-back queues empty, every member
caught up with its shard's seat — and finally collects each node's object
states and applied logs for the oracle's convergence check.

Placement mirrors the simulator: object ids count from 1, id-hash placement
assigns shards, sequencer seats go round-robin over the non-victim machines,
and primary-copy seats go round-robin over the victims when a kill schedule
is configured (so every staged crash takes a live primary down) or over all
machines otherwise.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ConfigurationError, NetworkError
from ..rts.sharding import HashPlacement
from ..workloads.scenarios import ScenarioRegistry
from ..workloads.spec import WorkloadSpec
from .control import NodeConnection
from .rts_adapter import RecordingRts, spec_to_payload
from .runtime import RealTimings


@dataclass(frozen=True)
class RealClusterConfig:
    """Everything one real-backend run needs to be reproducible."""

    scenario: str = "counter-farm"
    workload: Optional[WorkloadSpec] = None
    num_nodes: int = 3
    num_shards: int = 2
    clients_per_node: int = 1
    seed: int = 42
    timings: RealTimings = field(default_factory=RealTimings)
    #: Node ids killed mid-run (SIGKILL), and when — seconds after the
    #: clients start, one entry per victim.  Victims host neither clients
    #: nor sequencer seats, mirroring the simulator's ``primary-churn``.
    victims: Tuple[int, ...] = ()
    kill_after: Tuple[float, ...] = ()
    host: str = "127.0.0.1"
    spawn_timeout: float = 30.0
    settle_timeout: float = 120.0
    op_timeout: float = 60.0

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigurationError("num_nodes must be >= 1")
        if self.num_shards < 1:
            raise ConfigurationError("num_shards must be >= 1")
        if len(self.kill_after) != len(self.victims):
            raise ConfigurationError(
                "kill_after needs exactly one entry per victim")
        for victim in self.victims:
            if not 0 <= victim < self.num_nodes:
                raise ConfigurationError(f"victim {victim} is not a node id")
        if len(set(self.victims)) != len(self.victims):
            raise ConfigurationError("duplicate victim node ids")
        if len(self.victims) >= self.num_nodes:
            raise ConfigurationError("at least one node must survive")

    @property
    def spec(self) -> WorkloadSpec:
        return (self.workload
                or ScenarioRegistry.get(self.scenario).default_spec())

    @property
    def survivor_nodes(self) -> List[int]:
        return [node for node in range(self.num_nodes)
                if node not in self.victims]

    @property
    def client_nodes(self) -> List[int]:
        return self.survivor_nodes

    def seats(self) -> Dict[int, int]:
        """Shard -> sequencer-seat node, round-robin over the survivors."""
        hosts = self.survivor_nodes
        return {shard: hosts[shard % len(hosts)]
                for shard in range(self.num_shards)}

    def build_object_table(self) -> List[Dict[str, Any]]:
        """Replay setup against the recording stub; place and seat objects."""
        scenario = ScenarioRegistry.create(self.scenario, self.spec)
        recorder = RecordingRts()
        scenario.setup(recorder, None)
        placement = HashPlacement(self.num_shards, by="id")
        seats = self.seats()
        primary_hosts = (list(self.victims) if self.victims
                         else list(range(self.num_nodes)))
        next_primary = 0
        rows = []
        for row in recorder.rows:
            row = dict(row)
            shard = placement.shard_of(row["obj_id"], row["name"])
            row["shard"] = shard
            if row["policy"] == "primary-update":
                row["primary"] = primary_hosts[next_primary
                                               % len(primary_hosts)]
                next_primary += 1
            else:
                row["primary"] = seats[shard]
            rows.append(row)
        return rows


def _python_path_env() -> Dict[str, str]:
    """Child environment whose ``PYTHONPATH`` can import this very package."""
    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (src_dir if not existing
                         else src_dir + os.pathsep + existing)
    return env


class RealCluster:
    """Spawn, drive, optionally wound, settle and harvest one real cluster."""

    def __init__(self, config: RealClusterConfig) -> None:
        self.config = config
        self.object_table = config.build_object_table()
        self.seats = config.seats()
        self._children: Dict[int, subprocess.Popen] = {}
        self._conns: Dict[int, NodeConnection] = {}
        self._stderr_dir: Optional[str] = None
        self._killed: List[int] = []
        self._kill_timers: List[threading.Timer] = []
        self._started = False

    # -- lifecycle -------------------------------------------------------- #

    def __enter__(self) -> "RealCluster":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    def start(self) -> None:
        """Spawn every node process and distribute the cluster tables."""
        config = self.config
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind((config.host, 0))
        listener.listen(config.num_nodes)
        control_port = listener.getsockname()[1]
        self._stderr_dir = tempfile.mkdtemp(prefix="repro-net-")
        env = _python_path_env()
        try:
            for node_id in range(config.num_nodes):
                stderr = open(os.path.join(self._stderr_dir,
                                           f"node{node_id}.stderr"), "wb")
                with stderr:
                    self._children[node_id] = subprocess.Popen(
                        [sys.executable, "-m", "repro.net.node_process",
                         "--node-id", str(node_id),
                         "--control-port", str(control_port),
                         "--host", config.host],
                        stdout=subprocess.DEVNULL, stderr=stderr, env=env)
            deadline = time.monotonic() + config.spawn_timeout
            listener.settimeout(config.spawn_timeout)
            while len(self._conns) < config.num_nodes:
                if time.monotonic() > deadline:
                    raise NetworkError(self._spawn_failure("hello timeout"))
                try:
                    conn_sock, _addr = listener.accept()
                except socket.timeout:
                    raise NetworkError(
                        self._spawn_failure("hello timeout")) from None
                conn = NodeConnection(conn_sock)
                conn.read_hello(config.spawn_timeout)
                self._conns[conn.node_id] = conn
        finally:
            listener.close()
        peers = {node_id: [config.host, conn.udp_port]
                 for node_id, conn in self._conns.items()}
        for conn in self._conns.values():
            conn.request({
                "cmd": "start",
                "peers": peers,
                "seats": {str(shard): seat
                          for shard, seat in self.seats.items()},
                "objects": self.object_table,
                "timings": config.timings.as_payload(),
            }, timeout=config.spawn_timeout)
        self._started = True

    def _spawn_failure(self, why: str) -> str:
        lines = [f"real cluster failed to start ({why})"]
        for node_id, child in self._children.items():
            lines.append(f"  node {node_id}: returncode={child.poll()}")
            lines.append(self._stderr_tail(node_id))
        return "\n".join(lines)

    def _stderr_tail(self, node_id: int, limit: int = 2000) -> str:
        if self._stderr_dir is None:
            return ""
        path = os.path.join(self._stderr_dir, f"node{node_id}.stderr")
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            return ""
        return data[-limit:].decode("utf-8", "replace")

    # -- the run ---------------------------------------------------------- #

    def run_workload(self) -> Dict[str, Any]:
        """Drive the configured workload to a settled, collected state."""
        if not self._started:
            self.start()
        config = self.config
        spec_payload = spec_to_payload(config.spec)
        for node_id in config.client_nodes:
            self._conns[node_id].request({
                "cmd": "run_clients",
                "scenario": config.scenario,
                "spec": spec_payload,
                "seed": config.seed,
                "clients": list(range(config.clients_per_node)),
                "op_timeout": config.op_timeout,
            }, timeout=config.spawn_timeout)
        for victim, delay in zip(config.victims, config.kill_after):
            timer = threading.Timer(delay, self.kill_node, args=(victim,))
            timer.daemon = True
            self._kill_timers.append(timer)
            timer.start()
        self._settle()
        return self._collect()

    def kill_node(self, node_id: int) -> None:
        """SIGKILL one node process mid-run (no farewell on any plane)."""
        child = self._children.get(node_id)
        if child is None or child.poll() is not None:
            return
        child.kill()
        self._killed.append(node_id)
        conn = self._conns.pop(node_id, None)
        if conn is not None:
            conn.close()

    def _live_nodes(self) -> List[int]:
        return sorted(self._conns)

    def _settle(self) -> None:
        """Poll until clients are done and every survivor has quiesced."""
        config = self.config
        deadline = time.monotonic() + config.settle_timeout
        pending_kills = set(config.victims)
        last: Dict[int, Dict[str, Any]] = {}
        while True:
            if time.monotonic() > deadline:
                raise NetworkError(
                    "real cluster failed to settle within "
                    f"{config.settle_timeout}s; last statuses: {last}")
            time.sleep(0.05)
            pending_kills -= set(self._killed)
            statuses = {}
            for node_id in self._live_nodes():
                conn = self._conns.get(node_id)
                if conn is None:
                    continue  # killed between the snapshot and the poll
                try:
                    statuses[node_id] = conn.request(
                        {"cmd": "status"}, timeout=config.spawn_timeout)
                except NetworkError:
                    if node_id in self._killed:
                        continue
                    raise NetworkError(
                        f"node {node_id} died unexpectedly:\n"
                        + self._stderr_tail(node_id))
            last = statuses
            errors = [error
                      for status in statuses.values()
                      for error in status["clients"]["errors"]]
            if errors:
                raise NetworkError("client failures:\n" + "\n".join(errors))
            if pending_kills:
                continue  # a scheduled crash has not happened yet
            if any(status["clients"]["clients_running"]
                   for node_id, status in statuses.items()
                   if node_id in config.client_nodes):
                continue
            if self._quiesced(statuses):
                return

    def _quiesced(self, statuses: Dict[int, Dict[str, Any]]) -> bool:
        killed = set(self._killed)
        runtime = {node_id: status["runtime"]
                   for node_id, status in statuses.items()}
        for state in runtime.values():
            if (state["pending_ops"] or state["primary_pending"]
                    or state["pending_updates"]):
                return False
        for shard, seat in self.seats.items():
            seat_next = runtime[seat]["seats"][str(shard)]
            for node_id, state in runtime.items():
                if node_id in killed:
                    continue
                member = state["shards"][str(shard)]
                if member["holdback"] or member["next_expected"] != seat_next:
                    return False
        return True

    def _collect(self) -> Dict[str, Any]:
        config = self.config
        nodes = {}
        for node_id in self._live_nodes():
            nodes[node_id] = self._conns[node_id].request(
                {"cmd": "collect"}, timeout=config.spawn_timeout)
        starts = [reply["clients"]["started_at"]
                  for node_id, reply in nodes.items()
                  if node_id in config.client_nodes]
        ends = [reply["clients"]["ended_at"]
                for node_id, reply in nodes.items()
                if node_id in config.client_nodes]
        elapsed = (max(ends) - min(starts)) if starts and ends else 0.0
        return {
            "scenario": config.scenario,
            "workload": config.spec.name,
            "num_nodes": config.num_nodes,
            "num_shards": config.num_shards,
            "seed": config.seed,
            "seats": dict(self.seats),
            "client_nodes": list(config.client_nodes),
            "killed": sorted(self._killed),
            "elapsed": max(elapsed, 1e-9),
            "reads": sum(reply["clients"]["reads"]
                         for reply in nodes.values()),
            "writes": sum(reply["clients"]["writes"]
                          for reply in nodes.values()),
            "nodes": nodes,
        }

    # -- teardown --------------------------------------------------------- #

    def shutdown(self) -> None:
        for timer in self._kill_timers:
            timer.cancel()
        for node_id in list(self._conns):
            conn = self._conns.pop(node_id)
            try:
                conn.request({"cmd": "shutdown"}, timeout=5.0)
            except Exception:
                pass
            conn.close()
        for child in self._children.values():
            if child.poll() is None:
                try:
                    child.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    child.kill()
                    child.wait(timeout=5.0)
        self._children.clear()
        if self._stderr_dir is not None:
            import shutil

            shutil.rmtree(self._stderr_dir, ignore_errors=True)
            self._stderr_dir = None
        self._started = False
