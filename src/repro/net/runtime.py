"""The per-process protocol engine of the real-socket backend.

Each node process runs one :class:`RealRuntime` inside its asyncio event
loop.  The engine re-expresses the simulator's protocol stack over the
:class:`~repro.net.udp.UdpTransport`:

* **sharded fixed-sequencer total order** — each broadcast group (shard) has
  one *seat* node.  Writers send a request to the seat; the seat assigns the
  next sequence number, fans the data message to every node, and every node
  applies deliveries strictly in sequence-number order from a hold-back
  queue.  Lost requests are retried by the writer (the seat deduplicates on
  the request uid); lost data messages are recovered through gap requests
  answered from the seat's history, triggered either by a later delivery or
  by the seat's periodic sync beacon.
* **primary-copy management** — writes go to the object's primary, which
  serialises them, applies them at the next version, fans version-ordered
  update messages and acknowledges the writer only once every live peer has
  acknowledged the update.  Writers retry with a stable write id (*wid*);
  the primary's applied-wid table makes retries exactly-once.
* **failure detection and takeover** — every node heartbeats; a silent peer
  is declared dead, its acknowledgement debts are released, and for every
  object whose primary died the lowest-id live node proposes itself through
  the object's shard's total order with a state-carrying takeover record.
  Applying the takeover is a hard state reset on every replica — the
  convergence point — and the adopted wid table keeps client retries that
  straddle the failover exactly-once.

The engine reuses the simulator's object model verbatim
(:class:`~repro.rts.object_model.ObjectSpec`, ``execute_operation``), so an
operation applied in the same order on both backends produces the same
state.
"""

from __future__ import annotations

import asyncio
import importlib
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Type

from ..amoeba.message import Message
from ..errors import NetworkError, RtsError, UnknownObjectError
from ..rts.object_model import RETRY, ObjectSpec, execute_operation
from .udp import UdpTransport
from .wire import jsonify

#: Wire encoding of the :data:`~repro.rts.object_model.RETRY` sentinel.
RETRY_MARKER = {"__retry__": True}

#: Real-backend management policies (the harness maps the richer simulator
#: policy names onto these two protocol families).
REAL_POLICIES = ("broadcast", "primary-update")


def resolve_spec(path: str) -> Type[ObjectSpec]:
    """Import an ``ObjectSpec`` subclass from a ``module:Class`` path."""
    module_name, _, class_name = path.partition(":")
    if not class_name:
        raise RtsError(f"spec path {path!r} is not 'module:Class'")
    spec_class = getattr(importlib.import_module(module_name), class_name)
    if not (isinstance(spec_class, type) and issubclass(spec_class, ObjectSpec)):
        raise RtsError(f"{path!r} does not name an ObjectSpec subclass")
    return spec_class


def spec_path(spec_class: Type[ObjectSpec]) -> str:
    """The ``module:Class`` path under which a spec class is importable."""
    return f"{spec_class.__module__}:{spec_class.__qualname__}"


@dataclass(frozen=True)
class RealTimings:
    """Protocol timers, in real seconds.

    The defaults favour fast CI convergence on loopback; the failure
    detector is deliberately generous so a briefly descheduled process is
    not declared dead under load.
    """

    heartbeat_interval: float = 0.15
    dead_after: float = 0.75
    retry_interval: float = 0.1
    sync_interval: float = 0.1
    gap_delay: float = 0.05
    #: Hard ceiling on one write submission; hitting it means the protocol
    #: is wedged and the test should fail loudly instead of hanging.
    submit_deadline: float = 30.0

    def as_payload(self) -> Dict[str, float]:
        return {
            "heartbeat_interval": self.heartbeat_interval,
            "dead_after": self.dead_after,
            "retry_interval": self.retry_interval,
            "sync_interval": self.sync_interval,
            "gap_delay": self.gap_delay,
            "submit_deadline": self.submit_deadline,
        }


@dataclass
class RealObject:
    """One shared object's replica state inside a node process."""

    obj_id: int
    name: str
    spec_class: Type[ObjectSpec]
    instance: ObjectSpec
    policy: str
    shard: int
    primary: int
    #: Primary-path version counter (last applied update, on every replica).
    version: int = 0
    #: wid -> result of every applied primary-path write (exactly-once table;
    #: carried through takeover so retries across the failover deduplicate).
    applied_wids: Dict[str, Any] = field(default_factory=dict)
    #: Every applied write, in application order: [client_node, client_id,
    #: cseq, op].  Identical on all replicas once quiesced.
    applied_log: List[List[Any]] = field(default_factory=list)
    #: Member hold-back for out-of-version-order updates.
    pending_updates: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    #: Primary-side retransmission history: version -> update record.
    update_log: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    #: Primary-side acknowledgement debts: version -> nodes yet to ack.
    pending_acks: Dict[int, set] = field(default_factory=dict)
    ack_events: Dict[int, asyncio.Event] = field(default_factory=dict)
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)


@dataclass
class _SeatState:
    """Sequencer state for one shard this node is the seat of."""

    next_seqno: int = 1
    history: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    uid_to_seqno: Dict[str, int] = field(default_factory=dict)


@dataclass
class _MemberState:
    """Ordered-delivery state for one shard, on every node."""

    next_expected: int = 1
    holdback: Dict[int, Dict[str, Any]] = field(default_factory=dict)


@dataclass
class RealRuntimeStats:
    ordered_writes: int = 0
    primary_writes: int = 0
    local_reads: int = 0
    guard_retries: int = 0
    deduplicated_requests: int = 0
    deduplicated_writes: int = 0
    gap_requests: int = 0
    retransmissions: int = 0
    takeovers: int = 0
    peers_declared_dead: int = 0


class RealRuntime:
    """Protocol engine for one node of the real-process backend."""

    def __init__(self, node_id: int, transport: UdpTransport,
                 timings: Optional[RealTimings] = None) -> None:
        self.node_id = node_id
        self.transport = transport
        self.timings = timings or RealTimings()
        self.stats = RealRuntimeStats()
        self.objects: Dict[int, RealObject] = {}
        self.seats: Dict[int, int] = {}
        self._seat_state: Dict[int, _SeatState] = {}
        self._member_state: Dict[int, _MemberState] = {}
        self._waiters: Dict[str, asyncio.Future] = {}
        self._uid_counter = itertools.count(1)
        self._last_heard: Dict[int, float] = {}
        self._tasks: List[asyncio.Task] = []
        self._running = False
        self._handlers = {
            "net.req": self._handle_req,
            "net.data": self._handle_data,
            "net.gapreq": self._handle_gapreq,
            "net.sync": self._handle_sync,
            "net.hb": self._handle_hb,
            "net.pwrite": self._handle_pwrite,
            "net.pupd": self._handle_pupd,
            "net.pupdack": self._handle_pupdack,
            "net.pgap": self._handle_pgap,
            "net.pack": self._handle_pack,
        }

    # ------------------------------------------------------------------ #
    # Setup
    # ------------------------------------------------------------------ #

    def set_seats(self, seats: Dict[int, int]) -> None:
        """Install the shard -> seat-node table (identical cluster-wide)."""
        self.seats = {int(shard): int(node) for shard, node in seats.items()}
        for shard, seat in self.seats.items():
            self._member_state.setdefault(shard, _MemberState())
            if seat == self.node_id:
                self._seat_state.setdefault(shard, _SeatState())

    def install_objects(self, table: List[Dict[str, Any]]) -> None:
        """Create local replicas from the harness's object table."""
        for row in table:
            policy = row["policy"]
            if policy not in REAL_POLICIES:
                raise RtsError(f"real backend cannot manage policy {policy!r}")
            spec_class = resolve_spec(row["spec"])
            instance = spec_class.create(tuple(row.get("args", ())),
                                         dict(row.get("kwargs", {})))
            obj = RealObject(
                obj_id=int(row["obj_id"]),
                name=row["name"],
                spec_class=spec_class,
                instance=instance,
                policy=policy,
                shard=int(row["shard"]),
                primary=int(row["primary"]),
            )
            self.objects[obj.obj_id] = obj

    async def start(self) -> None:
        self.transport.on_message = self._dispatch
        now = time.monotonic()
        for node_id in self.transport.node_ids:
            if node_id != self.node_id:
                self._last_heard[node_id] = now
        self._running = True
        self._tasks = [
            asyncio.ensure_future(self._heartbeat_loop()),
            asyncio.ensure_future(self._monitor_loop()),
            asyncio.ensure_future(self._sync_loop()),
        ]

    async def stop(self) -> None:
        self._running = False
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks = []

    # ------------------------------------------------------------------ #
    # Public operation API (called from the event loop)
    # ------------------------------------------------------------------ #

    def object_by_name(self, name: str) -> RealObject:
        for obj in self.objects.values():
            if obj.name == name:
                return obj
        raise UnknownObjectError(f"no object named {name!r} on node {self.node_id}")

    async def submit(self, obj_id: int, op_name: str, args: Tuple[Any, ...] = (),
                     kwargs: Optional[Dict[str, Any]] = None,
                     client: Tuple[int, int] = (0, 0), cseq: int = 0) -> Any:
        """Invoke one operation; returns its result (reads run locally)."""
        obj = self.objects.get(obj_id)
        if obj is None:
            raise UnknownObjectError(f"no object {obj_id} on node {self.node_id}")
        op = obj.spec_class.operation_def(op_name)
        if not op.is_write:
            self.stats.local_reads += 1
            return execute_operation(obj.instance, op, tuple(args), kwargs)
        while True:
            if obj.policy == "broadcast":
                result = await self._submit_ordered_op(obj, op_name, args,
                                                       kwargs, client, cseq)
            else:
                result = await self._submit_primary(obj, op_name, args,
                                                    kwargs, client, cseq)
            if result == RETRY_MARKER:
                # Guard not satisfied when the write reached the front of the
                # total order; state was untouched, so re-issue after a beat.
                self.stats.guard_retries += 1
                await asyncio.sleep(self.timings.gap_delay)
                continue
            return result

    # ------------------------------------------------------------------ #
    # Ordered-broadcast write path
    # ------------------------------------------------------------------ #

    def _new_uid(self) -> str:
        return f"{self.node_id}:{next(self._uid_counter)}"

    async def _submit_ordered_op(self, obj: RealObject, op_name: str, args,
                                 kwargs, client, cseq) -> Any:
        self.stats.ordered_writes += 1
        body = {
            "type": "op",
            "obj_id": obj.obj_id,
            "op": op_name,
            "args": jsonify(list(args)),
            "kwargs": jsonify(dict(kwargs or {})),
            "client": [int(client[0]), int(client[1])],
            "cseq": int(cseq),
            "origin": self.node_id,
        }
        return await self._submit_ordered(obj.shard, body)

    async def _submit_ordered(self, shard: int, body: Dict[str, Any]) -> Any:
        uid = self._new_uid()
        body = dict(body, uid=uid)
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        self._waiters[uid] = fut
        seat = self.seats[shard]
        payload = {"shard": shard, "uid": uid, "body": body}
        deadline = time.monotonic() + self.timings.submit_deadline
        try:
            while not fut.done():
                if time.monotonic() > deadline:
                    raise NetworkError(
                        f"ordered write {uid} on shard {shard} did not "
                        f"complete within {self.timings.submit_deadline}s")
                if seat == self.node_id:
                    self._sequence(shard, uid, body, requester=self.node_id)
                else:
                    self.transport.send(Message(
                        src=self.node_id, dst=seat, kind="net.req",
                        payload=payload))
                await self._wait(fut, self.timings.retry_interval)
            return fut.result()
        finally:
            self._waiters.pop(uid, None)

    @staticmethod
    async def _wait(fut: asyncio.Future, timeout: float) -> None:
        try:
            await asyncio.wait_for(asyncio.shield(fut), timeout)
        except asyncio.TimeoutError:
            pass

    def _handle_req(self, msg: Message) -> None:
        payload = msg.payload
        shard = int(payload["shard"])
        if self.seats.get(shard) != self.node_id:
            return  # stale routing; the writer will retry
        self._sequence(shard, payload["uid"], payload["body"],
                       requester=msg.src)

    def _sequence(self, shard: int, uid: str, body: Dict[str, Any],
                  requester: int) -> None:
        """Seat side: assign the next seqno (or retransmit a duplicate)."""
        seat = self._seat_state[shard]
        known = seat.uid_to_seqno.get(uid)
        if known is not None:
            # Duplicate request: the writer missed the data message; resend
            # it point-to-point so recovery does not wait for a sync beacon.
            self.stats.deduplicated_requests += 1
            if requester != self.node_id:
                self.stats.retransmissions += 1
                self.transport.send(Message(
                    src=self.node_id, dst=requester, kind="net.data",
                    payload={"shard": shard, "seqno": known,
                             "body": seat.history[known]}))
            return
        seqno = seat.next_seqno
        seat.next_seqno += 1
        seat.history[seqno] = body
        seat.uid_to_seqno[uid] = seqno
        self.transport.send(Message(
            src=self.node_id, dst=None, kind="net.data",
            payload={"shard": shard, "seqno": seqno, "body": body}))
        self._accept_data(shard, seqno, body)

    def _handle_data(self, msg: Message) -> None:
        payload = msg.payload
        self._accept_data(int(payload["shard"]), int(payload["seqno"]),
                          payload["body"])

    def _accept_data(self, shard: int, seqno: int, body: Dict[str, Any]) -> None:
        member = self._member_state.get(shard)
        if member is None:
            return
        if seqno < member.next_expected:
            return  # duplicate of something already applied
        member.holdback[seqno] = body
        self._drain(shard, member)
        if member.holdback:
            asyncio.ensure_future(self._gap_check(shard, member.next_expected))

    def _drain(self, shard: int, member: _MemberState) -> None:
        while member.next_expected in member.holdback:
            body = member.holdback.pop(member.next_expected)
            member.next_expected += 1
            self._apply_ordered(body)

    async def _gap_check(self, shard: int, stalled_at: int) -> None:
        await asyncio.sleep(self.timings.gap_delay)
        member = self._member_state[shard]
        if not member.holdback or member.next_expected != stalled_at:
            return  # the gap filled itself (or moved) in the meantime
        self._request_gap(shard, member)

    def _request_gap(self, shard: int, member: _MemberState) -> None:
        seat = self.seats[shard]
        if seat == self.node_id:
            return
        upto = max(member.holdback) if member.holdback else member.next_expected
        self.stats.gap_requests += 1
        self.transport.send(Message(
            src=self.node_id, dst=seat, kind="net.gapreq",
            payload={"shard": shard, "from": member.next_expected,
                     "to": upto}))

    def _handle_gapreq(self, msg: Message) -> None:
        payload = msg.payload
        shard = int(payload["shard"])
        seat = self._seat_state.get(shard)
        if seat is None:
            return
        for seqno in range(int(payload["from"]), int(payload["to"]) + 1):
            body = seat.history.get(seqno)
            if body is None:
                continue
            self.stats.retransmissions += 1
            self.transport.send(Message(
                src=self.node_id, dst=msg.src, kind="net.data",
                payload={"shard": shard, "seqno": seqno, "body": body}))

    async def _sync_loop(self) -> None:
        """Seats periodically announce their next seqno so a lost *final*
        data message (with nothing after it to expose the gap) is found."""
        while self._running:
            await asyncio.sleep(self.timings.sync_interval)
            for shard, seat in self._seat_state.items():
                self.transport.send(Message(
                    src=self.node_id, dst=None, kind="net.sync",
                    payload={"shard": shard, "next_seqno": seat.next_seqno}))

    def _handle_sync(self, msg: Message) -> None:
        payload = msg.payload
        shard = int(payload["shard"])
        member = self._member_state.get(shard)
        if member is None:
            return
        if member.next_expected < int(payload["next_seqno"]):
            self._request_gap(shard, member)

    # -- ordered apply ---------------------------------------------------- #

    def _apply_ordered(self, body: Dict[str, Any]) -> None:
        kind = body["type"]
        if kind == "op":
            self._apply_ordered_op(body)
        elif kind == "takeover":
            self._apply_takeover(body)
        else:  # pragma: no cover - protocol bug guard
            raise NetworkError(f"unknown ordered body type {kind!r}")

    def _apply_ordered_op(self, body: Dict[str, Any]) -> None:
        obj = self.objects[int(body["obj_id"])]
        op = obj.spec_class.operation_def(body["op"])
        result = execute_operation(obj.instance, op, tuple(body["args"]),
                                   dict(body["kwargs"]))
        if result is RETRY:
            self._resolve(body, RETRY_MARKER)
            return
        client = body["client"]
        obj.applied_log.append([int(client[0]), int(client[1]),
                                int(body["cseq"]), body["op"]])
        self._resolve(body, result)

    def _resolve(self, body: Dict[str, Any], result: Any) -> None:
        """Wake the local writer if this node originated the write."""
        if body.get("origin") != self.node_id:
            return
        fut = self._waiters.get(body["uid"])
        if fut is not None and not fut.done():
            fut.set_result(result)

    # ------------------------------------------------------------------ #
    # Primary-copy write path
    # ------------------------------------------------------------------ #

    async def _submit_primary(self, obj: RealObject, op_name: str, args,
                              kwargs, client, cseq) -> Any:
        self.stats.primary_writes += 1
        wid = f"{int(client[0])}.{int(client[1])}.{int(cseq)}"
        payload = {
            "obj_id": obj.obj_id,
            "op": op_name,
            "args": jsonify(list(args)),
            "kwargs": jsonify(dict(kwargs or {})),
            "client": [int(client[0]), int(client[1])],
            "cseq": int(cseq),
            "wid": wid,
        }
        deadline = time.monotonic() + self.timings.submit_deadline
        loop = asyncio.get_running_loop()
        while True:
            if time.monotonic() > deadline:
                raise NetworkError(
                    f"primary write {wid} on {obj.name!r} did not complete "
                    f"within {self.timings.submit_deadline}s")
            if obj.primary == self.node_id:
                return await self._primary_apply(obj, payload)
            fut: asyncio.Future = loop.create_future()
            self._waiters[wid] = fut
            try:
                # The primary may change under us (takeover); re-read it on
                # every retry so re-issues chase the current seat.
                self.transport.send(Message(
                    src=self.node_id, dst=obj.primary, kind="net.pwrite",
                    payload=payload))
                await self._wait(fut, self.timings.retry_interval)
                if fut.done():
                    return fut.result()
            finally:
                self._waiters.pop(wid, None)

    def _handle_pwrite(self, msg: Message) -> None:
        payload = msg.payload
        obj = self.objects.get(int(payload["obj_id"]))
        if obj is None or obj.primary != self.node_id:
            return  # stale routing; the writer will retry elsewhere
        asyncio.ensure_future(self._primary_apply_and_reply(obj, payload,
                                                            msg.src))

    async def _primary_apply_and_reply(self, obj: RealObject,
                                       payload: Dict[str, Any],
                                       writer: int) -> None:
        result = await self._primary_apply(obj, payload)
        if obj.primary != self.node_id:
            return  # lost the seat while applying (cannot happen today)
        self.transport.send(Message(
            src=self.node_id, dst=writer, kind="net.pack",
            payload={"wid": payload["wid"], "result": jsonify(result)
                     if result != RETRY_MARKER else RETRY_MARKER}))

    async def _primary_apply(self, obj: RealObject,
                             payload: Dict[str, Any]) -> Any:
        wid = payload["wid"]
        async with obj.lock:
            if wid in obj.applied_wids:
                self.stats.deduplicated_writes += 1
                return obj.applied_wids[wid]
            op = obj.spec_class.operation_def(payload["op"])
            result = execute_operation(obj.instance, op,
                                       tuple(payload["args"]),
                                       dict(payload["kwargs"]))
            if result is RETRY:
                return RETRY_MARKER
            result = jsonify(result)
            obj.version += 1
            version = obj.version
            record = dict(payload, version=version, result=result)
            obj.update_log[version] = record
            obj.applied_wids[wid] = result
            client = payload["client"]
            obj.applied_log.append([int(client[0]), int(client[1]),
                                    int(payload["cseq"]), payload["op"]])
            peers = [node for node in self.transport.node_ids
                     if node != self.node_id and self.transport.peer_alive(node)]
            debt = set(peers)
            obj.pending_acks[version] = debt
            event = asyncio.Event()
            obj.ack_events[version] = event
            self.transport.send(Message(src=self.node_id, dst=None,
                                        kind="net.pupd", payload=record))
            try:
                while debt:
                    try:
                        await asyncio.wait_for(event.wait(),
                                               self.timings.retry_interval)
                    except asyncio.TimeoutError:
                        for node in list(debt):
                            if not self.transport.peer_alive(node):
                                debt.discard(node)
                                continue
                            self.stats.retransmissions += 1
                            self.transport.send(Message(
                                src=self.node_id, dst=node, kind="net.pupd",
                                payload=record))
            finally:
                obj.pending_acks.pop(version, None)
                obj.ack_events.pop(version, None)
            return result

    def _handle_pupd(self, msg: Message) -> None:
        payload = msg.payload
        obj = self.objects.get(int(payload["obj_id"]))
        if obj is None or msg.src != obj.primary:
            return  # stale update from a deposed (dead) primary
        version = int(payload["version"])
        if version <= obj.version:
            self._ack_update(obj, version)  # duplicate; re-ack
            return
        if version == obj.version + 1:
            self._apply_update(obj, payload)
            while obj.version + 1 in obj.pending_updates:
                self._apply_update(obj,
                                   obj.pending_updates.pop(obj.version + 1))
        else:
            obj.pending_updates[version] = payload
            self.stats.gap_requests += 1
            self.transport.send(Message(
                src=self.node_id, dst=obj.primary, kind="net.pgap",
                payload={"obj_id": obj.obj_id, "have": obj.version}))

    def _apply_update(self, obj: RealObject, payload: Dict[str, Any]) -> None:
        op = obj.spec_class.operation_def(payload["op"])
        # Deterministic operations on identical state yield the primary's
        # result; storing it locally keeps the wid table takeover-portable.
        execute_operation(obj.instance, op, tuple(payload["args"]),
                          dict(payload["kwargs"]))
        obj.version = int(payload["version"])
        obj.applied_wids[payload["wid"]] = payload["result"]
        client = payload["client"]
        obj.applied_log.append([int(client[0]), int(client[1]),
                                int(payload["cseq"]), payload["op"]])
        self._ack_update(obj, obj.version)

    def _ack_update(self, obj: RealObject, version: int) -> None:
        self.transport.send(Message(
            src=self.node_id, dst=obj.primary, kind="net.pupdack",
            payload={"obj_id": obj.obj_id, "version": version}))

    def _handle_pupdack(self, msg: Message) -> None:
        payload = msg.payload
        obj = self.objects.get(int(payload["obj_id"]))
        if obj is None:
            return
        version = int(payload["version"])
        debt = obj.pending_acks.get(version)
        if debt is None:
            return
        debt.discard(msg.src)
        if not debt:
            event = obj.ack_events.get(version)
            if event is not None:
                event.set()

    def _handle_pgap(self, msg: Message) -> None:
        payload = msg.payload
        obj = self.objects.get(int(payload["obj_id"]))
        if obj is None or obj.primary != self.node_id:
            return
        for version in range(int(payload["have"]) + 1, obj.version + 1):
            record = obj.update_log.get(version)
            if record is None:
                continue
            self.stats.retransmissions += 1
            self.transport.send(Message(src=self.node_id, dst=msg.src,
                                        kind="net.pupd", payload=record))

    def _handle_pack(self, msg: Message) -> None:
        payload = msg.payload
        fut = self._waiters.get(payload["wid"])
        if fut is not None and not fut.done():
            fut.set_result(payload["result"])

    # ------------------------------------------------------------------ #
    # Failure detection and takeover
    # ------------------------------------------------------------------ #

    async def _heartbeat_loop(self) -> None:
        while self._running:
            self.transport.send(Message(src=self.node_id, dst=None,
                                        kind="net.hb", payload=None))
            await asyncio.sleep(self.timings.heartbeat_interval)

    def _handle_hb(self, msg: Message) -> None:
        self._last_heard[msg.src] = time.monotonic()

    async def _monitor_loop(self) -> None:
        while self._running:
            await asyncio.sleep(self.timings.heartbeat_interval)
            now = time.monotonic()
            for node_id, heard in list(self._last_heard.items()):
                if not self.transport.peer_alive(node_id):
                    continue
                if now - heard > self.timings.dead_after:
                    self._declare_dead(node_id)

    def _declare_dead(self, node_id: int) -> None:
        self.stats.peers_declared_dead += 1
        self.transport.mark_dead(node_id)
        # Release every acknowledgement debt owed by the dead peer, so
        # primaries here stop waiting for acks that cannot come.
        for obj in self.objects.values():
            for version, debt in list(obj.pending_acks.items()):
                debt.discard(node_id)
                if not debt:
                    event = obj.ack_events.get(version)
                    if event is not None:
                        event.set()
        live = [node for node in self.transport.node_ids
                if self.transport.peer_alive(node)]
        if not live or min(live) != self.node_id:
            return
        # Lowest-id survivor proposes takeovers for the dead node's objects.
        for obj in self.objects.values():
            if obj.primary == node_id and obj.policy == "primary-update":
                asyncio.ensure_future(self._takeover(obj, node_id))

    async def _takeover(self, obj: RealObject, old_primary: int) -> None:
        async with obj.lock:
            body = {
                "type": "takeover",
                "obj_id": obj.obj_id,
                "origin": self.node_id,
                "old_primary": old_primary,
                "new_primary": self.node_id,
                "state": jsonify(obj.instance.marshal_state()),
                "version": obj.version,
                "wids": jsonify(obj.applied_wids),
                "log": jsonify(obj.applied_log),
            }
        await self._submit_ordered(obj.shard, body)

    def _apply_takeover(self, body: Dict[str, Any]) -> None:
        obj = self.objects[int(body["obj_id"])]
        if obj.primary != int(body["old_primary"]):
            return  # stale proposal; someone already took this object over
        obj.primary = int(body["new_primary"])
        obj.instance.unmarshal_state(dict(body["state"]))
        obj.version = int(body["version"])
        obj.applied_wids = dict(body["wids"])
        obj.applied_log = [list(entry) for entry in body["log"]]
        obj.pending_updates.clear()
        obj.update_log.clear()
        self.stats.takeovers += 1
        self._resolve(body, True)

    # ------------------------------------------------------------------ #
    # Introspection for the control plane
    # ------------------------------------------------------------------ #

    def status(self) -> Dict[str, Any]:
        """Quiescence-relevant counters, all JSON-native."""
        return {
            "node_id": self.node_id,
            "shards": {str(shard): {"next_expected": member.next_expected,
                                    "holdback": len(member.holdback)}
                       for shard, member in self._member_state.items()},
            "seats": {str(shard): seat.next_seqno
                      for shard, seat in self._seat_state.items()},
            "pending_ops": len(self._waiters),
            "primary_pending": sum(len(obj.pending_acks)
                                   for obj in self.objects.values()),
            "pending_updates": sum(len(obj.pending_updates)
                                   for obj in self.objects.values()),
            "dead": sorted(node for node in self.transport.node_ids
                           if not self.transport.peer_alive(node)),
        }

    def collect(self) -> Dict[str, Any]:
        """Final state dump for the oracle's convergence check."""
        objects = {}
        for obj in sorted(self.objects.values(), key=lambda o: o.obj_id):
            objects[str(obj.obj_id)] = {
                "name": obj.name,
                "policy": obj.policy,
                "shard": obj.shard,
                "primary": obj.primary,
                "version": obj.version,
                "state": jsonify(obj.instance.marshal_state()),
                "applied_log": jsonify(obj.applied_log),
            }
        return {
            "node_id": self.node_id,
            "objects": objects,
            "transport": self.transport.summary(),
            "stats": {
                "ordered_writes": self.stats.ordered_writes,
                "primary_writes": self.stats.primary_writes,
                "local_reads": self.stats.local_reads,
                "guard_retries": self.stats.guard_retries,
                "deduplicated_requests": self.stats.deduplicated_requests,
                "deduplicated_writes": self.stats.deduplicated_writes,
                "gap_requests": self.stats.gap_requests,
                "retransmissions": self.stats.retransmissions,
                "takeovers": self.stats.takeovers,
                "peers_declared_dead": self.stats.peers_declared_dead,
            },
        }

    # ------------------------------------------------------------------ #

    def _dispatch(self, msg: Message) -> None:
        handler = self._handlers.get(msg.kind)
        if handler is None:  # pragma: no cover - protocol bug guard
            raise NetworkError(f"node {self.node_id} cannot handle {msg.kind!r}")
        handler(msg)
