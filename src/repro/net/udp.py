"""Asyncio UDP transport — the real-socket implementation of the seam.

One :class:`UdpTransport` lives in each node process.  It binds a datagram
socket on the loopback interface, learns the full ``node_id -> (host, port)``
peer table from the harness, and then implements
:class:`~repro.amoeba.transport.Transport`: unicast goes to one peer,
broadcast (``dst is None``) fans out one datagram per live peer, mirroring
the simulator's hardware-broadcast semantics (the sender never hears its own
broadcast).

UDP gives us the same failure model the simulator injects deterministically:
datagrams may be dropped (kernel buffers, the test-only ``drop_filter``
hooks) but are never corrupted-and-accepted or spontaneously duplicated by
this layer.  All loss recovery lives in the protocol engine above
(:mod:`repro.net.runtime`), exactly as in the simulated stack.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..amoeba.message import Message
from ..amoeba.transport import Transport
from ..errors import NetworkError, RoutingError
from .wire import MAX_FRAME, decode_message, encode_message


@dataclass
class UdpStats:
    """Traffic counters for one transport instance."""

    messages_sent: int = 0
    unicast_messages: int = 0
    broadcast_messages: int = 0
    datagrams_sent: int = 0
    datagrams_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    send_drops: int = 0
    recv_drops: int = 0
    decode_errors: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)


class _Protocol(asyncio.DatagramProtocol):
    def __init__(self, transport: "UdpTransport") -> None:
        self._owner = transport

    def datagram_received(self, data: bytes, addr: Tuple[str, int]) -> None:
        self._owner._on_datagram(data)

    def error_received(self, exc: Exception) -> None:  # pragma: no cover
        # ICMP port-unreachable for a dead peer; the failure detector above
        # handles peer death, so transient socket errors are ignored.
        pass


class UdpTransport(Transport):
    """Transport over asyncio UDP unicast with configurable fan-out.

    ``drop_tx`` / ``drop_rx`` are loss-injection hooks for tests: given the
    message (and, for tx, the destination node id), return True to silently
    drop that datagram — the real-socket analogue of the simulated NIC's
    ``drop_filter``.
    """

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.stats = UdpStats()
        self.on_message: Optional[Callable[[Message], None]] = None
        self.drop_tx: Optional[Callable[[Message, int], bool]] = None
        self.drop_rx: Optional[Callable[[Message], bool]] = None
        self._peers: Dict[int, Tuple[str, int]] = {}
        self._dead: set = set()
        self._sock: Optional[asyncio.DatagramTransport] = None
        self._port: Optional[int] = None

    # -- lifecycle -------------------------------------------------------- #

    async def open(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind the datagram socket; returns the actual local port."""
        loop = asyncio.get_running_loop()
        self._sock, _ = await loop.create_datagram_endpoint(
            lambda: _Protocol(self), local_addr=(host, port)
        )
        self._port = self._sock.get_extra_info("sockname")[1]
        return self._port

    def close(self) -> None:
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    @property
    def port(self) -> int:
        if self._port is None:
            raise NetworkError("transport is not open")
        return self._port

    # -- peer table ------------------------------------------------------- #

    def set_peers(self, peers: Dict[int, Tuple[str, int]]) -> None:
        """Install the cluster's ``node_id -> (host, port)`` table."""
        self._peers = {int(node_id): (host, int(p)) for node_id, (host, p) in peers.items()}

    @property
    def node_ids(self) -> List[int]:
        return sorted(self._peers)

    def peer_alive(self, node_id: int) -> bool:
        """Is the peer believed alive?

        The transport has no failure detector of its own; the runtime's
        heartbeat layer calls :meth:`mark_dead` and this just reports it.
        """
        return node_id in self._peers and node_id not in self._dead

    def mark_dead(self, node_id: int) -> None:
        self._dead.add(node_id)

    # -- sending ---------------------------------------------------------- #

    def send(self, msg: Message, on_sent: Optional[Callable[[Message], None]] = None) -> None:
        if self._sock is None:
            raise NetworkError("transport is not open")
        self.stats.messages_sent += 1
        self.stats.by_kind[msg.kind] = self.stats.by_kind.get(msg.kind, 0) + 1
        frame = encode_message(msg)
        if msg.is_broadcast:
            self.stats.broadcast_messages += 1
            for node_id in self.node_ids:
                if node_id == self.node_id:
                    continue
                self._send_frame(msg, node_id, frame)
        else:
            self.stats.unicast_messages += 1
            if msg.dst not in self._peers:
                raise RoutingError(f"no node {msg.dst} in the peer table")
            self._send_frame(msg, msg.dst, frame)
        if on_sent is not None:
            on_sent(msg)

    def _send_frame(self, msg: Message, dst: int, frame: bytes) -> None:
        if self.drop_tx is not None and self.drop_tx(msg, dst):
            self.stats.send_drops += 1
            return
        self._sock.sendto(frame, self._peers[dst])
        self.stats.datagrams_sent += 1
        self.stats.bytes_sent += len(frame)

    # -- receiving -------------------------------------------------------- #

    def _on_datagram(self, data: bytes) -> None:
        self.stats.datagrams_received += 1
        self.stats.bytes_received += len(data)
        if len(data) > MAX_FRAME + 4:
            self.stats.decode_errors += 1
            return
        try:
            msg = decode_message(data)
        except (NetworkError, ValueError, KeyError):
            self.stats.decode_errors += 1
            return
        if self.drop_rx is not None and self.drop_rx(msg):
            self.stats.recv_drops += 1
            return
        if self.on_message is not None:
            self.on_message(msg)

    def summary(self) -> Dict[str, int]:
        """JSON-friendly counter snapshot for the control plane."""
        return {
            "messages_sent": self.stats.messages_sent,
            "unicast": self.stats.unicast_messages,
            "broadcast": self.stats.broadcast_messages,
            "datagrams_sent": self.stats.datagrams_sent,
            "datagrams_received": self.stats.datagrams_received,
            "bytes_sent": self.stats.bytes_sent,
            "bytes_received": self.stats.bytes_received,
            "send_drops": self.stats.send_drops,
            "recv_drops": self.stats.recv_drops,
            "decode_errors": self.stats.decode_errors,
        }
