"""Adapters that let the existing workload scenarios drive the real backend.

The :class:`~repro.workloads.scenarios.Scenario` classes are written against
the simulator's ``RuntimeSystem`` facade (``create_object`` / ``invoke``).
Three small adapters make them run unchanged across real processes:

* :class:`RecordingRts` (harness side) replays ``scenario.setup`` once to
  *record* the deterministic object table — names, spec classes, creation
  arguments, policies — that the harness distributes to every node before
  the run.  Object ids are assigned sequentially from 1, exactly as the
  simulator's runtimes do, so id-hash shard placement matches.
* :class:`RealRtsFacade` (node side) replays the same ``setup`` to *bind*
  handles by name against the locally installed replicas, then serves
  ``invoke`` from client OS threads by scheduling the operation onto the
  node's event loop.
* :class:`ClientProc` stands in for the simulator's per-client process
  token: it identifies the client and numbers its writes (the ``cseq`` the
  exactly-once machinery and the convergence checker key on).

Scenario kinds whose ``setup`` *writes* through the runtime (preloading a
catalog, say) are rejected up front with a clear error — the real backend
distributes initial state via creation arguments only.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from dataclasses import asdict
from typing import Any, Dict, List, Optional, Tuple, Type

from ..errors import ConfigurationError
from ..rts.base import ObjectHandle
from ..rts.object_model import ObjectSpec
from ..workloads.spec import PhaseSpec, WorkloadSpec
from .runtime import RealRuntime, spec_path

#: Simulator management policies -> the real backend's protocol families.
POLICY_MAP = {
    None: "broadcast",
    "broadcast": "broadcast",
    "adaptive": "broadcast",
    "primary-update": "primary-update",
    "primary-invalidate": "primary-update",
}


def map_policy(policy: Any) -> str:
    try:
        return POLICY_MAP[policy]
    except KeyError:
        raise ConfigurationError(
            f"no real-backend mapping for management policy {policy!r}"
        ) from None


def spec_to_payload(spec: WorkloadSpec) -> Dict[str, Any]:
    """Serialise a WorkloadSpec for the control plane (JSON-native)."""
    payload = asdict(spec)
    payload["phases"] = [asdict(phase) for phase in spec.phases]
    payload["arrival_trace"] = [list(seg) for seg in spec.arrival_trace]
    return payload


def spec_from_payload(payload: Dict[str, Any]) -> WorkloadSpec:
    fields = dict(payload)
    fields["phases"] = tuple(
        PhaseSpec(**phase) for phase in fields.get("phases", ()))
    fields["arrival_trace"] = tuple(
        (float(d), float(r)) for d, r in fields.get("arrival_trace", ()))
    return WorkloadSpec(**fields)


class RecordingRts:
    """Harness-side stub: records ``setup``'s creations into an object table."""

    def __init__(self) -> None:
        self.rows: List[Dict[str, Any]] = []
        self._ids = itertools.count(1)

    def create_object(self, proc: Any, spec_class: Type[ObjectSpec],
                      args: Tuple[Any, ...] = (),
                      kwargs: Optional[Dict[str, Any]] = None,
                      name: Optional[str] = None,
                      policy: Any = None) -> ObjectHandle:
        obj_id = next(self._ids)
        if name is None:
            name = f"{spec_class.__name__}#{obj_id}"
        self.rows.append({
            "obj_id": obj_id,
            "name": name,
            "spec": spec_path(spec_class),
            "args": list(args),
            "kwargs": dict(kwargs or {}),
            "policy": map_policy(policy),
        })
        return ObjectHandle(obj_id=obj_id, name=name, spec_class=spec_class)

    def invoke(self, proc: Any, handle: ObjectHandle, op_name: str,
               args: Tuple[Any, ...] = (),
               kwargs: Optional[Dict[str, Any]] = None) -> Any:
        raise ConfigurationError(
            f"scenario setup invokes {op_name!r} on {handle.name!r}; the "
            "real backend only supports scenarios whose initial state comes "
            "from object creation arguments")


class ClientProc:
    """Per-client token passed through ``scenario.perform`` as ``proc``."""

    def __init__(self, node_id: int, client_id: int) -> None:
        self.node_id = node_id
        self.client_id = client_id
        self._cseq = itertools.count(1)

    def next_cseq(self) -> int:
        return next(self._cseq)


class RealRtsFacade:
    """Node-side ``RuntimeSystem`` facade over a :class:`RealRuntime`.

    ``create_object`` binds handles by name against the installed replicas
    (setup replay); ``invoke`` is thread-safe and blocks the calling client
    thread until the operation completes on the protocol's event loop.
    """

    name = "real-sockets"

    def __init__(self, runtime: RealRuntime,
                 loop: asyncio.AbstractEventLoop,
                 op_timeout: float = 60.0) -> None:
        self.runtime = runtime
        self.loop = loop
        self.op_timeout = op_timeout
        self._bind_lock = threading.Lock()

    def create_object(self, proc: Any, spec_class: Type[ObjectSpec],
                      args: Tuple[Any, ...] = (),
                      kwargs: Optional[Dict[str, Any]] = None,
                      name: Optional[str] = None,
                      policy: Any = None) -> ObjectHandle:
        if name is None:
            raise ConfigurationError(
                "the real backend binds objects by name; scenarios must "
                "name every object they create")
        with self._bind_lock:
            obj = self.runtime.object_by_name(name)
        if obj.spec_class is not spec_class:
            raise ConfigurationError(
                f"object {name!r} was installed as "
                f"{obj.spec_class.__name__}, not {spec_class.__name__}")
        return ObjectHandle(obj_id=obj.obj_id, name=name,
                            spec_class=spec_class)

    def invoke(self, proc: ClientProc, handle: ObjectHandle, op_name: str,
               args: Tuple[Any, ...] = (),
               kwargs: Optional[Dict[str, Any]] = None) -> Any:
        op = handle.spec_class.operation_def(op_name)
        cseq = proc.next_cseq() if op.is_write else 0
        future = asyncio.run_coroutine_threadsafe(
            self.runtime.submit(handle.obj_id, op_name, tuple(args), kwargs,
                                client=(proc.node_id, proc.client_id),
                                cseq=cseq),
            self.loop)
        return future.result(self.op_timeout)
