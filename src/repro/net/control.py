"""The JSON-lines control plane between the harness and node processes.

Node processes connect *out* to the harness's TCP listener (avoiding every
port-race a listen-per-child design would invite), introduce themselves with
a ``hello`` carrying their node id and the UDP data-plane port they bound,
and then execute harness commands strictly one at a time.  Commands and
replies are single JSON objects, one per line — small, human-debuggable, and
reusing nothing of the data plane's framing on purpose (a control-plane bug
should never masquerade as a protocol bug).
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Any, Dict, Optional

from ..errors import NetworkError

#: Ceiling on one control line; a status or collect reply for the workloads
#: the backend runs is a few KiB, so anything near this is a framing bug.
MAX_LINE = 8 * 1024 * 1024


def _encode(obj: Dict[str, Any]) -> bytes:
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


class AsyncControlChannel:
    """Child side: an asyncio stream speaking one-JSON-object-per-line."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer

    async def send(self, obj: Dict[str, Any]) -> None:
        self._writer.write(_encode(obj))
        await self._writer.drain()

    async def recv(self) -> Optional[Dict[str, Any]]:
        """Next command, or ``None`` once the harness hangs up."""
        try:
            line = await self._reader.readline()
        except ConnectionError:
            return None
        if not line:
            return None
        if len(line) > MAX_LINE:
            raise NetworkError(f"oversized control line: {len(line)} bytes")
        return json.loads(line.decode("utf-8"))

    def close(self) -> None:
        self._writer.close()


class NodeConnection:
    """Harness side: a blocking per-node control connection."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._rfile = sock.makefile("rb")
        self.node_id: Optional[int] = None
        self.udp_port: Optional[int] = None

    def send(self, obj: Dict[str, Any]) -> None:
        self._sock.sendall(_encode(obj))

    def recv(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        self._sock.settimeout(timeout)
        line = self._rfile.readline(MAX_LINE + 1)
        if not line:
            raise NetworkError(
                f"node {self.node_id} closed its control connection")
        if len(line) > MAX_LINE:
            raise NetworkError(f"oversized control line: {len(line)} bytes")
        return json.loads(line.decode("utf-8"))

    def request(self, obj: Dict[str, Any],
                timeout: Optional[float] = None) -> Dict[str, Any]:
        """Send one command and wait for its (single) reply."""
        self.send(obj)
        reply = self.recv(timeout)
        if not reply.get("ok", False):
            raise NetworkError(
                f"node {self.node_id} failed {obj.get('cmd')!r}: "
                f"{reply.get('error')}\n{reply.get('traceback', '')}")
        return reply

    def read_hello(self, timeout: float) -> None:
        hello = self.recv(timeout)
        if not hello.get("hello"):
            raise NetworkError(f"unexpected first control line: {hello!r}")
        self.node_id = int(hello["node_id"])
        self.udp_port = int(hello["udp_port"])

    def close(self) -> None:
        try:
            self._rfile.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
