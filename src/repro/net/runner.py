"""Run a workload on the real-process backend and report it like the sim.

:func:`run_real_workload` is the real backend's counterpart of
:meth:`~repro.workloads.runner.WorkloadRunner.run`: it stages a
:class:`~repro.net.harness.RealCluster`, drives the workload to quiescence,
checks convergence against the deterministic stream replay (and, optionally,
a full simulator oracle run), and folds the collected results into the same
:class:`~repro.workloads.runner.WorkloadReport` shape every benchmark and
table already consumes.  The report's ``elapsed`` is *real wall-clock
seconds* (the simulator's is virtual seconds), and per-request latency
summaries are empty — the real clients measure throughput, not per-op
latency — so cross-backend comparisons should stick to throughput, op
counts and converged facts.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..workloads.runner import WorkloadReport
from ..workloads.spec import WorkloadSpec
from .harness import RealCluster, RealClusterConfig
from .oracle import check_convergence, expected_issued_writes, record_sim_oracle
from .runtime import RealTimings


def _network_summary(nodes: Dict[int, Dict[str, Any]]) -> Dict[str, Any]:
    """Cluster-wide traffic totals from the per-node transport counters."""
    totals: Dict[str, int] = {}
    for reply in nodes.values():
        for key, value in reply.get("transport", {}).items():
            totals[key] = totals.get(key, 0) + value
    # The sim's network summary calls its grand total "messages"; mirror it
    # so report consumers can read either backend.
    totals["messages"] = totals.get("messages_sent", 0)
    return totals


def _rts_summary(result: Dict[str, Any],
                 expected: Dict[str, Any]) -> Dict[str, Any]:
    """A per-object summary in the shape ``WorkloadReport`` consumers read."""
    nodes = result["nodes"]
    reference = nodes[sorted(nodes)[0]]["objects"]
    per_object = {
        row["name"]: {
            "writes": expected["per_object_writes"].get(row["name"], 0),
            "policy": row["policy"],
            "shard": row["shard"],
            "primary": row["primary"],
            "version": row["version"],
        }
        for row in reference.values()
    }
    stats: Dict[str, int] = {}
    for reply in nodes.values():
        for key, value in reply.get("stats", {}).items():
            stats[key] = stats.get(key, 0) + value
    return {"rts": "real-sockets", "per_object": per_object, "stats": stats}


def run_real_workload(scenario: str,
                      workload: Optional[WorkloadSpec] = None,
                      num_nodes: int = 3, clients_per_node: int = 1,
                      seed: int = 42, num_shards: int = 2,
                      victims: Any = (), kill_after: Any = (),
                      timings: Optional[RealTimings] = None,
                      check: bool = True,
                      sim_oracle: bool = False) -> WorkloadReport:
    """One oracle-checked workload run on the real-process backend.

    With ``check`` (the default) the converged state is asserted against the
    deterministic stream replay; ``sim_oracle`` additionally runs the full
    simulator on the identical workload and cross-checks its facts.  Either
    failing raises :class:`AssertionError` — a benchmark number from a
    diverged run would be meaningless.
    """
    config_kwargs: Dict[str, Any] = {}
    if timings is not None:
        config_kwargs["timings"] = timings
    config = RealClusterConfig(
        scenario=scenario, workload=workload, num_nodes=num_nodes,
        num_shards=num_shards, clients_per_node=clients_per_node, seed=seed,
        victims=tuple(victims), kill_after=tuple(kill_after),
        **config_kwargs)
    expected = expected_issued_writes(config)
    oracle = record_sim_oracle(config) if sim_oracle else None
    with RealCluster(config) as cluster:
        result = cluster.run_workload()
    facts: Dict[str, Any] = {}
    if check:
        facts = check_convergence(result, expected, oracle)
    total_ops = result["reads"] + result["writes"]
    elapsed = result["elapsed"]
    return WorkloadReport(
        scenario=scenario,
        runtime="real-sockets",
        workload=result["workload"],
        num_nodes=num_nodes,
        num_clients=len(result["client_nodes"]) * clients_per_node,
        total_ops=total_ops,
        reads=result["reads"],
        writes=result["writes"],
        elapsed=elapsed,
        throughput=total_ops / elapsed,
        request_latency={},
        rts_latency={},
        network=_network_summary(result["nodes"]),
        rts_summary=_rts_summary(result, expected),
        scenario_facts=facts,
        num_shards=num_shards,
    )
