"""Contended resources for event-driven simulation code.

The shared Ethernet medium (one transmission at a time) and other contended
facilities are modelled as :class:`FifoResource` instances.  Unlike the
primitives in :mod:`repro.sim.sync`, a resource can be used from plain event
callbacks (not only from processes): a user *requests* the resource with a
callback that is invoked when the resource is granted, uses it for some
amount of virtual time, and releases it.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, Optional, Tuple

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import Simulator


class FifoResource:
    """A resource with ``capacity`` concurrent slots and FIFO granting."""

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "resource") -> None:
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: Deque[Tuple[Callable[..., Any], tuple]] = deque()
        #: Total virtual time during which at least one slot was busy
        #: (available after the simulation for utilization reporting).
        self.busy_time = 0.0
        self._busy_since: Optional[float] = None
        #: Total number of grants issued.
        self.total_grants = 0
        #: Maximum queue length observed.
        self.max_queue_length = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def request(self, callback: Callable[..., Any], *args: Any) -> None:
        """Request a slot; ``callback(*args)`` runs when the slot is granted."""
        if self._in_use < self.capacity:
            self._grant(callback, args)
        else:
            self._queue.append((callback, args))
            self.max_queue_length = max(self.max_queue_length, len(self._queue))

    def _grant(self, callback: Callable[..., Any], args: tuple) -> None:
        if self._in_use == 0:
            self._busy_since = self.sim.now
        self._in_use += 1
        self.total_grants += 1
        # Grant via the event queue so the caller's stack unwinds first and
        # grant order remains deterministic.
        self.sim.schedule(0.0, callback, *args)

    def release(self) -> None:
        """Release one slot, granting it to the longest-waiting requester."""
        if self._in_use <= 0:
            raise SimulationError(f"release() of idle resource {self.name!r}")
        self._in_use -= 1
        if self._queue:
            callback, args = self._queue.popleft()
            self._grant(callback, args)
        if self._in_use == 0 and self._busy_since is not None:
            self.busy_time += self.sim.now - self._busy_since
            self._busy_since = None

    def use(
        self, duration: float, callback: Optional[Callable[..., Any]] = None, *args: Any
    ) -> None:
        """Request the resource, hold it for ``duration``, then release.

        ``callback(*args)`` (if given) is invoked at the moment the holding
        period *ends* — i.e. when whatever the resource models (a packet
        transmission, a burst of CPU work) completes.
        """
        def _granted() -> None:
            def _done() -> None:
                self.release()
                if callback is not None:
                    callback(*args)

            self.sim.schedule(duration, _done)

        self.request(_granted)

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of time the resource was busy over ``elapsed`` (default: now)."""
        busy = self.busy_time
        if self._busy_since is not None:
            busy += self.sim.now - self._busy_since
        total = self.sim.now if elapsed is None else elapsed
        if total <= 0:
            return 0.0
        return min(1.0, busy / total)
