"""Deterministic discrete-event simulation kernel.

The kernel provides a single global virtual clock, an event queue with stable
FIFO tie-breaking, and *handshaked-thread* processes (:class:`SimProcess`)
that let application code be written as ordinary imperative Python while the
simulator retains full control over interleaving, making every run
deterministic for a given seed and schedule.
"""

from .events import Event, EventQueue
from .kernel import Simulator
from .process import SimProcess
from .resources import FifoResource
from .rng import RngRegistry
from .sync import Barrier, SimCondition, SimLock, SimSemaphore
from .trace import TraceRecord, Tracer

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "SimProcess",
    "FifoResource",
    "RngRegistry",
    "SimLock",
    "SimCondition",
    "SimSemaphore",
    "Barrier",
    "Tracer",
    "TraceRecord",
]
