"""The discrete-event simulator core: virtual clock, event queue, run loop."""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from ..errors import DeadlockError, SimulationError
from .events import Event, EventQueue
from .process import SimProcess
from .rng import RngRegistry
from .trace import Tracer


class Simulator:
    """A single-clock discrete-event simulator.

    The simulator owns the virtual clock, the event queue, the random-stream
    registry and the tracer.  Higher layers (the Amoeba substrate, the RTSes,
    the Orca programming layer) all schedule work through one simulator
    instance per cluster.

    The simulator can be used as a context manager; on exit it kills any
    still-blocked processes so their OS threads are reclaimed promptly::

        with Simulator(seed=1) as sim:
            sim.spawn(my_process)
            sim.run()
    """

    def __init__(
        self,
        seed: int = 0,
        trace: bool = False,
        work_unit_time: float = 2.0e-5,
        max_trace_records: Optional[int] = None,
    ) -> None:
        self.now = 0.0
        self.rng = RngRegistry(seed)
        self.tracer = Tracer(enabled=trace, max_records=max_trace_records)
        #: Default conversion factor used by :meth:`SimProcess.compute`.
        self.work_unit_time = work_unit_time
        self._queue = EventQueue()
        self._processes: List[SimProcess] = []
        self._current_process: Optional[SimProcess] = None
        self._running = False
        self._events_processed = 0

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> Event:
        """Schedule ``callback(*args, **kwargs)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args, **kwargs)

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> Event:
        """Schedule ``callback`` at an absolute virtual time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule an event at {time} before current time {self.now}"
            )
        event = Event(time, self._queue.next_seq(), callback, args, kwargs)
        self._queue.push(event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        if event.pending:
            event.cancel()
            self._queue.note_cancelled()

    # ------------------------------------------------------------------ #
    # Processes
    # ------------------------------------------------------------------ #

    def spawn(
        self,
        target: Callable[..., Any],
        *args: Any,
        name: Optional[str] = None,
        daemon: bool = False,
        start_delay: float = 0.0,
        **kwargs: Any,
    ) -> SimProcess:
        """Create a :class:`SimProcess` running ``target`` and schedule its start."""
        proc_name = name or getattr(target, "__name__", "process")
        proc = SimProcess(
            self, target, args, kwargs, name=f"{proc_name}#{len(self._processes)}",
            daemon=daemon,
        )
        self._processes.append(proc)
        proc.state = "ready"
        self.schedule(start_delay, proc._kernel_start)
        return proc

    @property
    def current_process(self) -> Optional[SimProcess]:
        """The process currently holding control, if any."""
        return self._current_process

    @property
    def processes(self) -> List[SimProcess]:
        """All processes ever spawned on this simulator."""
        return list(self._processes)

    @property
    def events_processed(self) -> int:
        """Total number of events fired so far."""
        return self._events_processed

    # ------------------------------------------------------------------ #
    # Run loop
    # ------------------------------------------------------------------ #

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        check_deadlock: bool = True,
    ) -> float:
        """Run until the event queue drains (or ``until`` / ``max_events`` hit).

        Returns the final virtual time.

        Raises
        ------
        DeadlockError
            If the event queue drains while non-daemon processes are still
            blocked and ``check_deadlock`` is true.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        try:
            fired = 0
            while self._queue:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self.now = until
                    return self.now
                event = self._queue.pop()
                self.now = event.time
                event.fire()
                self._events_processed += 1
                fired += 1
                if max_events is not None and fired >= max_events:
                    return self.now
            if check_deadlock:
                self._check_deadlock()
            return self.now
        finally:
            self._running = False

    def run_until_complete(self, processes: List[SimProcess], **run_kwargs: Any) -> float:
        """Run until every process in ``processes`` has terminated."""
        final = self.run(**run_kwargs)
        still_alive = [p for p in processes if p.alive]
        if still_alive:
            names = ", ".join(p.name for p in still_alive)
            raise DeadlockError(
                f"simulation ended at t={final:.6f} with live processes: {names}"
            )
        return final

    def _check_deadlock(self) -> None:
        # A process pinned to a crashed machine died with it: it can stay
        # "blocked" forever without that being a deadlock (e.g. a client
        # suspended mid-protocol when its own node crashes).  Its OS thread
        # is reclaimed by shutdown(), like every other leftover.
        blocked = [
            p for p in self._processes
            if p.state == "blocked" and not p.daemon
            and getattr(getattr(p, "node", None), "alive", True)
        ]
        if blocked:
            names = ", ".join(p.name for p in blocked)
            raise DeadlockError(
                f"event queue empty at t={self.now:.6f} but processes are blocked: {names}"
            )

    # ------------------------------------------------------------------ #
    # Shutdown / context manager
    # ------------------------------------------------------------------ #

    def shutdown(self) -> None:
        """Kill all still-alive processes so their OS threads terminate."""
        for proc in self._processes:
            if proc.alive:
                proc._kill()
        self._queue.clear()

    def __enter__(self) -> "Simulator":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #

    def trace(self, category: str, message: str, **data: Any) -> None:
        """Record a trace entry at the current virtual time."""
        self.tracer.record(self.now, category, message, **data)
