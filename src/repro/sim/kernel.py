"""The discrete-event simulator core: virtual clock, event queue, run loop."""

from __future__ import annotations

from sys import getrefcount
from typing import Any, Callable, List, Optional

from ..errors import DeadlockError, SimulationError
from .events import Event, EventQueue
from .process import SimProcess
from .rng import RngRegistry
from .trace import Tracer

#: Upper bound on the fired-event free list; beyond this, events are left to
#: the garbage collector like before pooling existed.
_EVENT_POOL_LIMIT = 1024


class Simulator:
    """A single-clock discrete-event simulator.

    The simulator owns the virtual clock, the event queue, the random-stream
    registry and the tracer.  Higher layers (the Amoeba substrate, the RTSes,
    the Orca programming layer) all schedule work through one simulator
    instance per cluster.

    The simulator can be used as a context manager; on exit it kills any
    still-blocked processes so their OS threads are reclaimed promptly::

        with Simulator(seed=1) as sim:
            sim.spawn(my_process)
            sim.run()
    """

    def __init__(
        self,
        seed: int = 0,
        trace: bool = False,
        work_unit_time: float = 2.0e-5,
        max_trace_records: Optional[int] = None,
    ) -> None:
        self.now = 0.0
        self.rng = RngRegistry(seed)
        self.tracer = Tracer(enabled=trace, max_records=max_trace_records)
        #: Default conversion factor used by :meth:`SimProcess.compute`.
        self.work_unit_time = work_unit_time
        self._queue = EventQueue()
        self._processes: List[SimProcess] = []
        self._current_process: Optional[SimProcess] = None
        self._running = False
        self._events_processed = 0
        #: Free list of fired events with no outside references, recycled by
        #: :meth:`schedule` / :meth:`schedule_at` to avoid an allocation per
        #: event on the hot path.
        self._event_pool: List[Event] = []
        #: True while an unbounded :meth:`run` is active: lets
        #: :meth:`SimProcess.hold` advance the clock directly when nothing
        #: can fire before the process would resume (see ``process.py``).
        #: Must stay False under ``until``/``max_events`` bounds, which the
        #: fast path would silently overshoot.
        self._fast_hold_ok = False

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> Event:
        """Schedule ``callback(*args, **kwargs)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        queue = self._queue
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.time = self.now + delay
            event.seq = queue.next_seq()
            event.callback = callback
            event.args = args
            event.kwargs = kwargs or None
            event.cancelled = False
            event.fired = False
        else:
            event = Event(self.now + delay, queue.next_seq(), callback, args, kwargs)
        queue.push(event)
        return event

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> Event:
        """Schedule ``callback`` at an absolute virtual time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule an event at {time} before current time {self.now}"
            )
        queue = self._queue
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.time = time
            event.seq = queue.next_seq()
            event.callback = callback
            event.args = args
            event.kwargs = kwargs or None
            event.cancelled = False
            event.fired = False
        else:
            event = Event(time, queue.next_seq(), callback, args, kwargs)
        queue.push(event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        if event.pending:
            event.cancel()
            self._queue.note_cancelled()

    # ------------------------------------------------------------------ #
    # Processes
    # ------------------------------------------------------------------ #

    def spawn(
        self,
        target: Callable[..., Any],
        *args: Any,
        name: Optional[str] = None,
        daemon: bool = False,
        start_delay: float = 0.0,
        **kwargs: Any,
    ) -> SimProcess:
        """Create a :class:`SimProcess` running ``target`` and schedule its start."""
        proc_name = name or getattr(target, "__name__", "process")
        proc = SimProcess(
            self,
            target,
            args,
            kwargs,
            name=f"{proc_name}#{len(self._processes)}",
            daemon=daemon,
        )
        self._processes.append(proc)
        proc.state = "ready"
        self.schedule(start_delay, proc._kernel_start)
        return proc

    @property
    def current_process(self) -> Optional[SimProcess]:
        """The process currently holding control, if any."""
        return self._current_process

    @property
    def processes(self) -> List[SimProcess]:
        """All processes ever spawned on this simulator."""
        return list(self._processes)

    @property
    def events_processed(self) -> int:
        """Total number of events fired so far."""
        return self._events_processed

    # ------------------------------------------------------------------ #
    # Run loop
    # ------------------------------------------------------------------ #

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        check_deadlock: bool = True,
    ) -> float:
        """Run until the event queue drains (or ``until`` / ``max_events`` hit).

        Returns the final virtual time.

        Raises
        ------
        DeadlockError
            If the event queue drains while non-daemon processes are still
            blocked and ``check_deadlock`` is true.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        self._fast_hold_ok = until is None and max_events is None
        try:
            if self._fast_hold_ok:
                self._run_unbounded()
            else:
                if self._run_bounded(until, max_events):
                    return self.now
            if check_deadlock:
                self._check_deadlock()
            return self.now
        finally:
            self._running = False
            self._fast_hold_ok = False

    def _run_unbounded(self) -> None:
        """The monomorphic inner loop: no bound checks, inlined dispatch.

        ``pop_next`` only yields live events, so the loop fires them without
        re-checking cancellation.  ``fired`` is set *before* the callback so
        a callback cancelling its own event cannot corrupt the live count.
        Events nobody else references (refcount: the loop local plus the
        ``getrefcount`` argument) are recycled through the free list.
        """
        pop_next = self._queue.pop_next
        pool = self._event_pool
        fired = 0
        while True:
            event = pop_next()
            if event is None:
                break
            self.now = event.time
            event.fired = True
            kwargs = event.kwargs
            if kwargs:
                event.callback(*event.args, **kwargs)
            else:
                event.callback(*event.args)
            fired += 1
            if getrefcount(event) == 2 and len(pool) < _EVENT_POOL_LIMIT:
                event.callback = None
                event.args = ()
                event.kwargs = None
                pool.append(event)
        self._events_processed += fired

    def _run_bounded(self, until: Optional[float], max_events: Optional[int]) -> bool:
        """The bounded loop; returns True when a bound cut the run short."""
        queue = self._queue
        fired = 0
        while queue:
            next_time = queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = until
                return True
            event = queue.pop()
            self.now = event.time
            event.fire()
            self._events_processed += 1
            fired += 1
            if max_events is not None and fired >= max_events:
                return True
        return False

    def run_until_complete(self, processes: List[SimProcess], **run_kwargs: Any) -> float:
        """Run until every process in ``processes`` has terminated."""
        final = self.run(**run_kwargs)
        still_alive = [p for p in processes if p.alive]
        if still_alive:
            names = ", ".join(p.name for p in still_alive)
            raise DeadlockError(f"simulation ended at t={final:.6f} with live processes: {names}")
        return final

    def _check_deadlock(self) -> None:
        # A process pinned to a crashed machine died with it: it can stay
        # "blocked" forever without that being a deadlock (e.g. a client
        # suspended mid-protocol when its own node crashes).  Its OS thread
        # is reclaimed by shutdown(), like every other leftover.
        blocked = [
            p
            for p in self._processes
            if p.state == "blocked"
            and not p.daemon
            and getattr(getattr(p, "node", None), "alive", True)
        ]
        if blocked:
            names = ", ".join(p.name for p in blocked)
            raise DeadlockError(
                f"event queue empty at t={self.now:.6f} but processes are blocked: {names}"
            )

    # ------------------------------------------------------------------ #
    # Shutdown / context manager
    # ------------------------------------------------------------------ #

    def shutdown(self) -> None:
        """Kill all still-alive processes so their OS threads terminate."""
        for proc in self._processes:
            if proc.alive:
                proc._kill()
        self._queue.clear()

    def __enter__(self) -> "Simulator":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #

    def trace(self, category: str, message: str, **data: Any) -> None:
        """Record a trace entry at the current virtual time."""
        self.tracer.record(self.now, category, message, **data)
