"""Handshaked-thread simulation processes.

A :class:`SimProcess` runs ordinary Python code in a dedicated OS thread, but
the simulator guarantees that **at most one thread runs at any moment**: the
kernel hands control to the process and then blocks until the process hands
control back (by blocking on a simulation primitive, holding for virtual
time, or terminating).  This gives application code the convenience of plain
imperative Python (deep recursion, loops, exceptions) while keeping the
simulation fully deterministic: the interleaving of processes is decided
solely by the virtual-time event queue, never by the OS scheduler.

Processes account for their computation with :meth:`SimProcess.compute`,
which accumulates *pending* virtual time locally.  Pending time is flushed
into the global clock lazily — when the process blocks, communicates, or
finishes — so that fine-grained accounting (e.g. one call per tree node in a
search application) does not force a kernel round trip per call.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Callable, List, Optional

from ..errors import ProcessError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import Simulator


class ProcessKilled(BaseException):
    """Raised inside a process thread to unwind it when the simulation shuts down.

    Derives from ``BaseException`` so that well-behaved application code that
    catches ``Exception`` does not accidentally swallow it.
    """


class SimProcess:
    """A simulated process (an Orca process, a worker thread, a server loop).

    Instances are created through :meth:`repro.sim.kernel.Simulator.spawn`.
    """

    _STATES = ("new", "ready", "running", "blocked", "finished", "failed", "killed")

    def __init__(
        self,
        sim: "Simulator",
        target: Callable[..., Any],
        args: tuple = (),
        kwargs: Optional[dict] = None,
        name: str = "process",
        daemon: bool = False,
    ) -> None:
        self.sim = sim
        self.name = name
        self.daemon = daemon
        self._target = target
        self._args = args
        self._kwargs = kwargs or {}
        self.state = "new"
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self._pending_compute = 0.0
        self._local_time_at_last_sync = 0.0
        self._killed = False
        self._wake_value: Any = None
        self._completion_waiters: List[Callable[["SimProcess"], None]] = []
        # Control-transfer handshake: two raw locks used as binary
        # semaphores.  The kernel and the process strictly alternate
        # (release the peer's lock, block on one's own), so each transfer
        # costs two lock operations instead of the ~six a pair of
        # ``threading.Event`` set/wait/clear cycles performs.
        self._resume_sem = threading.Lock()
        self._resume_sem.acquire()
        self._yield_sem = threading.Lock()
        self._yield_sem.acquire()
        self._thread = threading.Thread(target=self._bootstrap, name=f"sim:{name}", daemon=True)
        self._thread_started = False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def alive(self) -> bool:
        """True while the process has not yet finished, failed, or been killed."""
        return self.state in ("new", "ready", "running", "blocked")

    @property
    def finished(self) -> bool:
        return self.state == "finished"

    @property
    def failed(self) -> bool:
        return self.state == "failed"

    @property
    def pending_compute(self) -> float:
        """Virtual compute time accumulated but not yet flushed to the clock."""
        return self._pending_compute

    @property
    def local_time(self) -> float:
        """The process's own notion of current time (global clock + pending)."""
        return self.sim.now + self._pending_compute

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimProcess {self.name!r} state={self.state}>"

    # ------------------------------------------------------------------ #
    # Kernel-side control (runs in the simulator's thread)
    # ------------------------------------------------------------------ #

    def _kernel_start(self) -> None:
        """Start the process thread and give it control for the first time."""
        if self.state != "ready":
            return
        if not self._thread_started:
            self._thread.start()
            self._thread_started = True
        self._transfer_control()

    def _kernel_resume(self, value: Any = None) -> None:
        """Resume a blocked process (invoked from the event queue)."""
        if self.state == "killed":
            return
        if self.state != "blocked":
            raise SimulationError(f"cannot resume process {self.name!r} in state {self.state}")
        node = getattr(self, "node", None)
        if node is not None and not node.alive:
            # The machine crashed while this process was blocked: its
            # thread died with it.  Unwind instead of running user code —
            # the same dead-node gate the Amoeba kernel applies to timers.
            self._killed = True
            self._wake_value = None
            self._transfer_control()
            return
        self._wake_value = value
        self._transfer_control()

    def _transfer_control(self) -> None:
        """Hand control to the process thread and wait until it yields back."""
        previous = self.sim._current_process
        self.sim._current_process = self
        self.state = "running"
        self._resume_sem.release()
        self._yield_sem.acquire()
        self.sim._current_process = previous
        if self.state == "failed" and not self.daemon:
            exc = self.exception
            raise ProcessError(
                f"simulated process {self.name!r} raised {type(exc).__name__}: {exc}"
            ) from exc

    def _kill(self) -> None:
        """Forcefully unwind this process's thread (used at simulator shutdown)."""
        if not self.alive:
            return
        self._killed = True
        if self.state == "new":
            self.state = "killed"
            return
        if self.state == "blocked":
            # Resume it so the thread can observe the kill flag and unwind.
            self._wake_value = None
            self._transfer_control()
        elif self.state in ("ready",):
            self.state = "killed"

    # ------------------------------------------------------------------ #
    # Process-side API (runs in the process's own thread)
    # ------------------------------------------------------------------ #

    def _bootstrap(self) -> None:
        self._resume_sem.acquire()
        try:
            if self._killed:
                raise ProcessKilled()
            self.result = self._target(*self._args, **self._kwargs)
            self.state = "finished"
        except ProcessKilled:
            self.state = "killed"
        except BaseException as exc:  # noqa: BLE001 - report any failure
            self.exception = exc
            self.state = "failed"
        finally:
            if self.state == "finished":
                self._on_finished()
            self._yield_sem.release()

    def _on_finished(self) -> None:
        """Flush pending compute and notify joiners.  Runs with control held."""
        if self._pending_compute > 0.0:
            # Completion should be visible at the process's local time, so
            # schedule the waiter notifications after the pending compute.
            delay = self._pending_compute
            self._pending_compute = 0.0
            self.sim.schedule(delay, self._notify_completion)
        else:
            self.sim.schedule(0.0, self._notify_completion)

    def _notify_completion(self) -> None:
        waiters, self._completion_waiters = self._completion_waiters, []
        for callback in waiters:
            callback(self)

    def _yield_to_kernel(self) -> Any:
        """Give control back to the kernel and wait to be resumed."""
        self._yield_sem.release()
        self._resume_sem.acquire()
        if self._killed:
            raise ProcessKilled()
        return self._wake_value

    def _require_current(self) -> None:
        if self.sim._current_process is not self:
            raise SimulationError(f"primitive called outside process {self.name!r}'s own context")

    # -- work accounting ------------------------------------------------ #

    def compute(self, units: float, unit_time: Optional[float] = None) -> None:
        """Account ``units`` of application work without yielding control.

        ``unit_time`` defaults to the simulator's configured work-unit time.
        The accumulated time is added to the global clock the next time this
        process blocks, communicates, or finishes.
        """
        if units < 0:
            raise SimulationError("compute() requires a non-negative amount of work")
        factor = self.sim.work_unit_time if unit_time is None else unit_time
        self._pending_compute += units * factor

    def advance(self, duration: float) -> None:
        """Account ``duration`` seconds of local computation without yielding."""
        if duration < 0:
            raise SimulationError("advance() requires a non-negative duration")
        self._pending_compute += duration

    def absorb_overhead(self, duration: float) -> None:
        """Charge externally-imposed CPU overhead (e.g. interrupt handling)."""
        if duration > 0:
            self._pending_compute += duration

    def flush(self) -> None:
        """Flush accumulated compute time into the global clock (may block)."""
        self._require_current()
        if self._pending_compute > 0.0:
            self.hold(0.0)

    # -- blocking primitives --------------------------------------------- #

    def hold(self, duration: float) -> None:
        """Block this process for ``duration`` seconds of virtual time.

        Any pending compute time is flushed first, so ``hold(0)`` is an
        explicit synchronization point.
        """
        self._require_current()
        if duration < 0:
            raise SimulationError("hold() requires a non-negative duration")
        total = duration + self._pending_compute
        self._pending_compute = 0.0
        sim = self.sim
        if sim._fast_hold_ok:
            # Nothing in the queue can fire strictly before this process
            # would resume, so the resume event would be the very next event:
            # advance the clock here and skip the schedule + two-threading.Event
            # round trip entirely.  Equal timestamps must NOT take this path —
            # an already-queued event at exactly ``target`` has a smaller seq
            # and fires first in the real ordering.  Only valid during an
            # unbounded run (no ``until``/``max_events`` to overshoot).
            target = sim.now + total
            next_time = sim._queue.peek_time()
            if next_time is None or next_time > target:
                sim.now = target
                return
        self.state = "blocked"
        sim.schedule(total, self._kernel_resume)
        self._yield_to_kernel()

    def suspend(self) -> Any:
        """Block until another component calls :meth:`wake`.

        Pending compute time is flushed (scheduled) before suspending so the
        process's prior work is reflected in the clock by the time it wakes.
        Returns the value passed to :meth:`wake`.
        """
        self._require_current()
        self._pending_compute = 0.0
        self.state = "blocked"
        return self._yield_to_kernel()

    def wake(self, value: Any = None, delay: float = 0.0) -> None:
        """Schedule this (blocked) process to resume after ``delay`` seconds.

        May be called from kernel context (event callbacks) or from another
        process that currently holds control.
        """
        if not self.alive:
            return
        self.sim.schedule(delay, self._kernel_resume, value)

    def join(self, other: "SimProcess") -> Any:
        """Block until ``other`` terminates; returns its result.

        Raises
        ------
        ProcessError
            If ``other`` failed with an exception.
        """
        self._require_current()
        if other.alive:
            other._completion_waiters.append(lambda _p: self.wake())
            self.suspend()
        if other.failed:
            raise ProcessError(
                f"joined process {other.name!r} failed: {other.exception}"
            ) from other.exception
        return other.result

    def on_completion(self, callback: Callable[["SimProcess"], None]) -> None:
        """Register ``callback`` to run (in kernel context) when this process ends."""
        if not self.alive:
            self.sim.schedule(0.0, callback, self)
        else:
            self._completion_waiters.append(callback)
