"""Structured event tracing for the simulation kernel and higher layers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """A single trace entry.

    Attributes
    ----------
    time:
        Virtual time at which the event was recorded.
    category:
        Dot-separated category string (e.g. ``"net.broadcast"``, ``"rts.write"``).
    message:
        Human-readable description.
    data:
        Arbitrary structured payload for programmatic inspection.
    """

    time: float
    category: str
    message: str
    data: Dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Collects :class:`TraceRecord` entries when enabled.

    Tracing is off by default because application benchmarks can generate
    millions of events; tests that need to inspect protocol behaviour enable
    it explicitly via ``ClusterConfig(trace=True)``.
    """

    def __init__(self, enabled: bool = False, max_records: Optional[int] = None) -> None:
        self.enabled = enabled
        self.max_records = max_records
        self._records: List[TraceRecord] = []
        self._dropped = 0

    def record(self, time: float, category: str, message: str, **data: Any) -> None:
        """Append a record if tracing is enabled (cheap no-op otherwise)."""
        if not self.enabled:
            return
        if self.max_records is not None and len(self._records) >= self.max_records:
            self._dropped += 1
            return
        self._records.append(TraceRecord(time, category, message, dict(data)))

    @property
    def records(self) -> List[TraceRecord]:
        """All recorded entries, in chronological order."""
        return self._records

    @property
    def dropped(self) -> int:
        """Number of records dropped because ``max_records`` was reached."""
        return self._dropped

    def filter(self, category_prefix: str) -> Iterator[TraceRecord]:
        """Iterate over records whose category starts with ``category_prefix``."""
        for record in self._records:
            if record.category.startswith(category_prefix):
                yield record

    def clear(self) -> None:
        """Discard all recorded entries."""
        self._records.clear()
        self._dropped = 0
