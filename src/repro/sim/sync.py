"""Synchronization primitives for simulated processes.

All primitives use FIFO wait queues so that wake-up order is deterministic.
They may only be used from within a :class:`~repro.sim.process.SimProcess`
(the process must currently hold control).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, Optional

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import Simulator
    from .process import SimProcess


def _current(sim: "Simulator") -> "SimProcess":
    proc = sim.current_process
    if proc is None:
        raise SimulationError("synchronization primitive used outside a SimProcess")
    return proc


class SimLock:
    """A mutual-exclusion lock with FIFO handoff."""

    def __init__(self, sim: "Simulator", name: str = "lock") -> None:
        self.sim = sim
        self.name = name
        self._owner: Optional["SimProcess"] = None
        self._waiters: Deque["SimProcess"] = deque()

    @property
    def locked(self) -> bool:
        return self._owner is not None

    @property
    def owner(self) -> Optional["SimProcess"]:
        return self._owner

    def acquire(self) -> None:
        """Acquire the lock, blocking the calling process if it is held."""
        proc = _current(self.sim)
        if self._owner is proc:
            raise SimulationError(f"process {proc.name!r} re-acquired lock {self.name!r}")
        if self._owner is None:
            self._owner = proc
            return
        self._waiters.append(proc)
        proc.suspend()
        if self._owner is not proc:
            raise SimulationError("lock handoff error")

    def release(self) -> None:
        """Release the lock, handing it to the longest-waiting process if any."""
        proc = _current(self.sim)
        if self._owner is not proc:
            raise SimulationError(
                f"process {proc.name!r} released lock {self.name!r} it does not own"
            )
        if self._waiters:
            nxt = self._waiters.popleft()
            self._owner = nxt
            nxt.wake()
        else:
            self._owner = None

    def __enter__(self) -> "SimLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()


class SimCondition:
    """A condition variable associated with a :class:`SimLock`."""

    def __init__(self, lock: SimLock, name: str = "cond") -> None:
        self.lock = lock
        self.sim = lock.sim
        self.name = name
        self._waiters: Deque["SimProcess"] = deque()

    def wait(self) -> None:
        """Atomically release the lock, block, and re-acquire on wake-up."""
        proc = _current(self.sim)
        if self.lock.owner is not proc:
            raise SimulationError("wait() called without holding the lock")
        self._waiters.append(proc)
        self.lock.release()
        proc.suspend()
        self.lock.acquire()

    def wait_for(self, predicate: Callable[[], bool]) -> None:
        """Wait until ``predicate()`` is true (re-checked after every wake-up)."""
        while not predicate():
            self.wait()

    def notify(self, n: int = 1) -> None:
        """Wake up to ``n`` waiting processes (FIFO order)."""
        for _ in range(min(n, len(self._waiters))):
            proc = self._waiters.popleft()
            proc.wake()

    def notify_all(self) -> None:
        """Wake every waiting process."""
        self.notify(len(self._waiters))


class SimSemaphore:
    """A counting semaphore with FIFO wake-up order."""

    def __init__(self, sim: "Simulator", value: int = 0, name: str = "sem") -> None:
        if value < 0:
            raise SimulationError("semaphore initial value must be non-negative")
        self.sim = sim
        self.name = name
        self._value = value
        self._waiters: Deque["SimProcess"] = deque()

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> None:
        """Decrement the semaphore, blocking while its value is zero."""
        proc = _current(self.sim)
        if self._value > 0:
            self._value -= 1
            return
        self._waiters.append(proc)
        proc.suspend()

    def release(self, n: int = 1) -> None:
        """Increment the semaphore ``n`` times, waking blocked processes."""
        for _ in range(n):
            if self._waiters:
                waiter = self._waiters.popleft()
                waiter.wake()
            else:
                self._value += 1


class Barrier:
    """A reusable barrier: the last of ``parties`` arrivals releases the rest."""

    def __init__(self, sim: "Simulator", parties: int, name: str = "barrier") -> None:
        if parties < 1:
            raise SimulationError("barrier requires at least one party")
        self.sim = sim
        self.parties = parties
        self.name = name
        self._waiting: Deque["SimProcess"] = deque()
        self._generation = 0

    @property
    def n_waiting(self) -> int:
        return len(self._waiting)

    def wait(self) -> int:
        """Block until ``parties`` processes have called :meth:`wait`.

        Returns the barrier generation number (0 for the first cycle, 1 for
        the second, ...), which is occasionally useful in tests.
        """
        proc = _current(self.sim)
        generation = self._generation
        if len(self._waiting) + 1 == self.parties:
            # Last arrival: release everyone and advance the generation.
            self._generation += 1
            waiters, self._waiting = self._waiting, deque()
            for waiter in waiters:
                waiter.wake()
            return generation
        self._waiting.append(proc)
        proc.suspend()
        return generation
