"""Event and event-queue primitives for the discrete-event kernel.

The queue is the simulator's innermost data structure: every message hop,
timer, resource grant and process resume passes through it, so its constant
factors bound the throughput of every benchmark.  Three structures share the
work, each tuned to one traffic class:

* a **now bucket** (FIFO deque) for events scheduled at the current virtual
  time — the delay-zero storm of resource grants, callbacks and wake-ups
  that dominates protocol-heavy runs; O(1) push and pop, no heap traffic;
* a **slotted timer wheel** for the homogeneous short delays (NIC hops,
  retransmit timers, heartbeats): events land in a fixed-width slot by
  quantised timestamp and each slot is sorted once, when its turn comes;
* a **binary heap of ``(time, seq, event)`` tuples** for far timestamps and
  every case the wheel cannot take without risking order — tuple entries
  keep all comparisons in C instead of calling ``Event.__lt__``.

Correctness does not depend on which structure holds an event: the queue
always pops the globally smallest ``(time, seq)`` pair, so delivery order —
and therefore the simulation's virtual-time behaviour — is bit-for-bit the
same as with a single stable heap.  A property test pins that equivalence
against a reference implementation.

Cancelled events are dropped lazily when they surface; when they outnumber
the live ones the queue compacts all structures in one pass so a cancel-heavy
workload (retransmit timers that almost always get cancelled) cannot grow the
heap without bound.
"""

from __future__ import annotations

from collections import deque
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Deque, List, Optional, Tuple

from ..errors import SimulationError

#: Width of one timer-wheel slot in virtual seconds.  Chosen *below* the
#: simulated network's packet latencies and protocol delays (tens to
#: hundreds of microseconds) so a typical push lands a few slots ahead of
#: the floor rather than inside the just-drained current slot (which would
#: degrade it to the heap).
SLOT_WIDTH = 2e-5
_INV_SLOT_WIDTH = 1.0 / SLOT_WIDTH
#: Number of slots: the wheel covers ``WHEEL_SLOTS * SLOT_WIDTH`` (~10 ms)
#: of future virtual time; anything beyond falls back to the heap.
WHEEL_SLOTS = 512
#: Compaction trigger: compact once at least this many cancelled entries are
#: buffered *and* they outnumber the live ones.
_COMPACT_MIN_CANCELLED = 64


class Event:
    """A scheduled callback in virtual time.

    Events are created through :meth:`repro.sim.kernel.Simulator.schedule`.
    They can be cancelled before they fire; a cancelled event is skipped by
    the run loop without invoking its callback.

    ``kwargs`` is ``None`` (not an empty dict) for the overwhelmingly common
    keyword-less case, so scheduling does not allocate a dict per event.
    Fired events with no outside references are recycled through a free list
    (see :meth:`repro.sim.kernel.Simulator.run`).
    """

    __slots__ = ("time", "seq", "callback", "args", "kwargs", "cancelled", "fired")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple = (),
        kwargs: Optional[dict] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.kwargs = kwargs or None
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True if the event has neither fired nor been cancelled."""
        return not self.cancelled and not self.fired

    def fire(self) -> None:
        """Invoke the callback (used by the simulator run loop)."""
        if self.cancelled:
            return
        self.fired = True
        if self.kwargs:
            self.callback(*self.args, **self.kwargs)
        else:
            self.callback(*self.args)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return (
            f"<Event t={self.time:.6f} seq={self.seq} {state} "
            f"cb={getattr(self.callback, '__name__', self.callback)!r}>"
        )


class EventQueue:
    """A stable priority queue of :class:`Event` objects.

    Events with equal timestamps fire in insertion order, which is what makes
    the simulation deterministic independent of hash ordering or OS thread
    scheduling.  Internally the queue is the three-structure design described
    in the module docstring; externally it behaves exactly like one stable
    heap.
    """

    def __init__(self) -> None:
        #: Far timestamps and order-risky pushes: ``(time, seq, event)``.
        self._heap: List[Tuple[float, int, Event]] = []
        #: Events at the current virtual time, in push (== seq) order.
        self._now_bucket: Deque[Event] = deque()
        #: The timer wheel: ring of per-slot entry lists.
        self._wheel: List[List[Tuple[float, int, Event]]] = [[] for _ in range(WHEEL_SLOTS)]
        self._wheel_count = 0
        #: Absolute slot index below which wheel slots are already drained.
        self._wheel_floor = 0
        #: The drained slot currently being consumed, sorted, plus a cursor.
        self._ready: List[Tuple[float, int, Event]] = []
        self._ready_pos = 0
        #: Virtual time of the most recently popped event: pushes at exactly
        #: this time go to the now bucket (they cannot precede anything).
        self._time = 0.0
        self._next_seq = 0
        self._live = 0
        #: Cancelled entries still buffered in some structure.
        self._cancelled_buffered = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def next_seq(self) -> int:
        """Return a fresh monotonically-increasing sequence number."""
        seq = self._next_seq
        self._next_seq = seq + 1
        return seq

    @property
    def buffered(self) -> int:
        """Total entries currently held in all structures (live + cancelled).

        Exposed so tests can pin that lazy compaction really bounds the
        structures: after compaction ``buffered == len(queue)``.
        """
        return (
            len(self._heap)
            + len(self._now_bucket)
            + self._wheel_count
            + (len(self._ready) - self._ready_pos)
        )

    # ------------------------------------------------------------------ #
    # Push
    # ------------------------------------------------------------------ #

    def push(self, event: Event) -> None:
        """Insert an event into the queue."""
        self._live += 1
        time = event.time
        if time <= self._time:
            if time == self._time:
                # At the current virtual time: nothing buffered can precede
                # it except same-time entries pushed earlier, which the
                # pop-side three-way comparison handles.  O(1), no heap
                # traffic — and the dominant case (delay-zero callbacks).
                self._now_bucket.append(event)
            else:
                # Strictly in the past: the simulator itself never does
                # this, but direct queue users may — the heap keeps the
                # (time, seq) order correct regardless.
                heappush(self._heap, (time, event.seq, event))
            return
        idx = int(time * _INV_SLOT_WIDTH)
        floor = self._wheel_floor
        if idx >= floor + WHEEL_SLOTS:
            # The floor lags virtual time whenever slots empty without being
            # drained; catch it up so the wheel window tracks the clock
            # instead of decaying into a permanent heap fallback.
            floor = self._advance_floor()
        if floor <= idx < floor + WHEEL_SLOTS:
            self._wheel[idx % WHEEL_SLOTS].append((time, event.seq, event))
            self._wheel_count += 1
        else:
            # Too far for the wheel horizon, or its slot was already drained
            # (possible when virtual time lags the drained slot): the heap
            # takes every case the wheel cannot hold without risking order.
            heappush(self._heap, (time, event.seq, event))

    def _advance_floor(self) -> int:
        """Advance the wheel floor to the slot holding the current time.

        Every pending event's timestamp is >= the last popped time, so slots
        strictly below the current slot can only contain cancelled
        stragglers; they are discarded as the floor passes them (each slot is
        visited at most once over the simulation, so this is amortised O(1)).
        """
        floor = self._wheel_floor
        current = int(self._time * _INV_SLOT_WIDTH)
        if current <= floor:
            return floor
        if self._wheel_count:
            wheel = self._wheel
            while floor < current:
                slot = wheel[floor % WHEEL_SLOTS]
                if slot:
                    self._wheel_count -= len(slot)
                    self._cancelled_buffered -= len(slot)
                    slot.clear()
                floor += 1
        else:
            floor = current
        self._wheel_floor = floor
        return floor

    # ------------------------------------------------------------------ #
    # Pop / peek
    # ------------------------------------------------------------------ #

    def _drain_next_slot(self) -> None:
        """Move the earliest non-empty wheel slot into the sorted ready list."""
        wheel = self._wheel
        floor = self._wheel_floor
        while True:
            slot = wheel[floor % WHEEL_SLOTS]
            if slot:
                break
            floor += 1
        self._wheel_floor = floor + 1
        self._wheel_count -= len(slot)
        slot.sort()
        self._ready = slot
        self._ready_pos = 0
        wheel[floor % WHEEL_SLOTS] = []

    def _settle(self) -> Optional[Tuple[float, int, int]]:
        """Drop cancelled heads, drain wheel slots as needed, and return the
        globally smallest ``(time, seq, source)`` key, or ``None`` if empty.

        ``source`` is 0 for the now bucket, 1 for the ready list, 2 for the
        heap; :meth:`pop_next` pops from the corresponding structure.
        """
        nb = self._now_bucket
        while nb and nb[0].cancelled:
            nb.popleft()
            self._cancelled_buffered -= 1
        while True:
            ready = self._ready
            pos = self._ready_pos
            n_ready = len(ready)
            while pos < n_ready and ready[pos][2].cancelled:
                pos += 1
                self._cancelled_buffered -= 1
            if pos >= n_ready and n_ready:
                ready = self._ready = []
                pos = 0
                n_ready = 0
            self._ready_pos = pos
            heap = self._heap
            while heap and heap[0][2].cancelled:
                heappop(heap)
                self._cancelled_buffered -= 1
            best_key: Optional[Tuple[float, int, int]] = None
            if nb:
                head = nb[0]
                best_key = (head.time, head.seq, 0)
            if pos < n_ready:
                time, seq, _ = ready[pos]
                if best_key is None or (time, seq) < (best_key[0], best_key[1]):
                    best_key = (time, seq, 1)
            if heap:
                time, seq, _ = heap[0]
                if best_key is None or (time, seq) < (best_key[0], best_key[1]):
                    best_key = (time, seq, 2)
            if not self._wheel_count:
                return best_key
            # The wheel can only beat the candidate if its earliest slot is
            # at or before the candidate's slot (slot indices are a monotone
            # quantisation of time, and an equal-slot entry can still win on
            # seq).  Draining eagerly here would push the floor ahead of
            # virtual time and degrade future pushes to the heap, so drain
            # only when the slot is genuinely in contention.
            slot = self._earliest_wheel_slot()
            if best_key is not None and int(best_key[0] * _INV_SLOT_WIDTH) < slot:
                return best_key
            self._drain_next_slot()

    def _earliest_wheel_slot(self) -> int:
        """Absolute index of the earliest non-empty wheel slot (count > 0)."""
        wheel = self._wheel
        floor = self._wheel_floor
        while not wheel[floor % WHEEL_SLOTS]:
            floor += 1
        self._wheel_floor = floor
        return floor

    def pop_next(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` when empty."""
        key = self._settle()
        if key is None:
            return None
        source = key[2]
        if source == 0:
            event = self._now_bucket.popleft()
        elif source == 1:
            event = self._ready[self._ready_pos][2]
            self._ready_pos += 1
        else:
            event = heappop(self._heap)[2]
        self._live -= 1
        self._time = event.time
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises
        ------
        SimulationError
            If the queue contains no live events.
        """
        event = self.pop_next()
        if event is None:
            raise SimulationError("pop() from an empty event queue")
        return event

    def peek_time(self) -> Optional[float]:
        """Return the virtual time of the earliest live event, or None if empty."""
        key = self._settle()
        if key is None:
            return None
        return key[0]

    # ------------------------------------------------------------------ #
    # Cancellation / compaction
    # ------------------------------------------------------------------ #

    def note_cancelled(self) -> None:
        """Inform the queue that one of its events was cancelled externally."""
        if self._live > 0:
            self._live -= 1
            self._cancelled_buffered += 1
            if (
                self._cancelled_buffered >= _COMPACT_MIN_CANCELLED
                and self._cancelled_buffered > self._live
            ):
                self._compact()

    def _compact(self) -> None:
        """Drop every buffered cancelled entry in one pass.

        Without this, cancel-heavy traffic (retransmit timers that are almost
        always cancelled by the delivery they guard) leaves the heap full of
        dead entries until they surface at pop time.  Triggered lazily from
        :meth:`note_cancelled` once the dead outnumber the living.
        """
        self._heap = [entry for entry in self._heap if not entry[2].cancelled]
        heapify(self._heap)
        if self._ready_pos or any(entry[2].cancelled for entry in self._ready):
            # Filtering keeps the ready list sorted, so the cursor resets.
            self._ready = [
                entry for entry in self._ready[self._ready_pos :] if not entry[2].cancelled
            ]
            self._ready_pos = 0
        for index, slot in enumerate(self._wheel):
            if slot:
                kept = [entry for entry in slot if not entry[2].cancelled]
                if len(kept) != len(slot):
                    self._wheel_count -= len(slot) - len(kept)
                    self._wheel[index] = kept
        if any(event.cancelled for event in self._now_bucket):
            self._now_bucket = deque(event for event in self._now_bucket if not event.cancelled)
        self._cancelled_buffered = 0

    def clear(self) -> None:
        """Discard all events."""
        self._heap.clear()
        self._now_bucket.clear()
        for slot in self._wheel:
            slot.clear()
        self._wheel_count = 0
        self._ready = []
        self._ready_pos = 0
        self._live = 0
        self._cancelled_buffered = 0
