"""Event and event-queue primitives for the discrete-event kernel."""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from ..errors import SimulationError


class Event:
    """A scheduled callback in virtual time.

    Events are created through :meth:`repro.sim.kernel.Simulator.schedule`.
    They can be cancelled before they fire; a cancelled event is skipped by
    the run loop without invoking its callback.
    """

    __slots__ = ("time", "seq", "callback", "args", "kwargs", "cancelled", "fired")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple = (),
        kwargs: Optional[dict] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.kwargs = kwargs or {}
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True if the event has neither fired nor been cancelled."""
        return not self.cancelled and not self.fired

    def fire(self) -> None:
        """Invoke the callback (used by the simulator run loop)."""
        if self.cancelled:
            return
        self.fired = True
        self.callback(*self.args, **self.kwargs)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"<Event t={self.time:.6f} seq={self.seq} {state} cb={getattr(self.callback, '__name__', self.callback)!r}>"


class EventQueue:
    """A stable priority queue of :class:`Event` objects.

    Events with equal timestamps fire in insertion order, which is what makes
    the simulation deterministic independent of hash ordering or OS thread
    scheduling.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def next_seq(self) -> int:
        """Return a fresh monotonically-increasing sequence number."""
        return next(self._counter)

    def push(self, event: Event) -> None:
        """Insert an event into the queue."""
        heapq.heappush(self._heap, event)
        self._live += 1

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises
        ------
        SimulationError
            If the queue contains no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise SimulationError("pop() from an empty event queue")

    def peek_time(self) -> Optional[float]:
        """Return the virtual time of the earliest live event, or None if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def note_cancelled(self) -> None:
        """Inform the queue that one of its events was cancelled externally."""
        if self._live > 0:
            self._live -= 1

    def clear(self) -> None:
        """Discard all events."""
        self._heap.clear()
        self._live = 0
