"""Deterministic per-component random number streams.

Every component that needs randomness (network loss injection, application
workload generators, placement decisions) asks the registry for a named
stream.  Streams are derived from the master seed and the stream name, so
adding a new consumer of randomness never perturbs the sequences seen by
existing consumers — a property that keeps regression tests stable.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream name."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Registry of named, independently seeded ``random.Random`` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self._master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return the stream registered under ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self._master_seed, name))
            self._streams[name] = rng
        return rng

    def reset(self) -> None:
        """Re-seed every existing stream back to its initial state."""
        for name in list(self._streams):
            self._streams[name] = random.Random(derive_seed(self._master_seed, name))
