"""The unified runtime system: per-object management policies, live migration.

:class:`HybridRts` hosts both of the paper's object-management mechanisms in
one runtime.  Every shared object runs under a
:class:`~repro.rts.policy.ManagementPolicy` chosen at creation time
(``create_object(..., policy=...)``) and changeable while the cluster runs:

* **broadcast** objects are replicated on every machine; reads are local and
  writes ride the totally-ordered broadcast of the object's shard (exactly
  the classic :class:`BroadcastRts` machinery, including sharding and write
  batching);
* **primary-copy** objects live on one machine with dynamically replicated
  secondaries; writes go through the primary and propagate by invalidation
  or two-phase update (exactly the classic :class:`PointToPointRts`
  machinery);
* **adaptive** objects carry an :class:`~repro.rts.policy.AdaptivePolicy`
  controller that watches the object's read/write ratio and migrates it
  between the fixed policies at run time.

Migration protocol
------------------

A migration must not lose, duplicate, or reorder writes, so the switch point
is decided by the same total order that already serialises the object's
broadcast writes.  Every object keeps a **migration epoch**; broadcast write
payloads are stamped with the epoch they were issued under, and every member
tracks, per object, the epoch it has *delivered* up to.

* **broadcast → primary**: the initiator flips the object's global policy
  and directory entry (new writes head for the chosen primary), then
  broadcasts a ``switch`` message through the object's shard.  Total order
  guarantees each member delivers the switch after exactly the same set of
  writes, so the (identical) replicas simply become the primary/secondary
  copies — no state transfer.  A write broadcast sequenced *after* the
  switch is dropped identically at every member and re-issued by its origin
  through the primary.  The primary refuses to apply writes until it has
  itself delivered the switch (so it has applied every pre-switch write);
  coherence traffic reaching a member that has not yet delivered the switch
  is deferred until it does.
* **primary → broadcast**: the initiator freezes the object at the primary
  (in-flight two-phase writes drain first; new writes bounce and retry),
  snapshots its state, flips the global policy, and broadcasts the switch
  *carrying the snapshot*.  Each member installs the snapshot when it
  delivers the switch — the totally-ordered state transfer — after which
  writes flow as ordered broadcasts.

Both directions inherit the broadcast layer's fault tolerance: a switch in
flight across a sequencer crash is retried, survives the election, and is
still delivered exactly once in the same total order everywhere.

Sequential consistency is preserved across a switch because (a) the switch
point is a single position in the object's write order, (b) no write is
applied on both sides of it (epoch-mismatched broadcasts are dropped and
re-issued; primary writes wait for the switch to land), and (c) every
member's replica passes through the switch state before serving post-switch
operations.

Cross-group rebalancing (drain-and-switch)
------------------------------------------

A policy switch moves an object between management mechanisms; a **shard
move** (:meth:`HybridRts.move_shard`) moves it between *total orders* — from
one broadcast group's sequencer to another's — so a skewed workload can be
spread off a melting sequencer at run time.  The same epoch machinery
carries it, with one extra barrier:

* the initiator bumps the object's epoch and rewrites the router's mapping
  (new writes are stamped with the new epoch and broadcast in the
  *destination* group), then broadcasts a ``shard-switch`` through the
  **source** group and a ``shard-arrive`` through the **destination** group;
* the source switch is the drain point: total order in the source group
  guarantees every member retires the old route after the same set of
  writes; stale-epoch writes sequenced behind it are dropped identically
  everywhere and re-issued by their origin into the destination order (the
  origin's doomed pending writes are released early, exactly like a policy
  switch);
* destination-group writes carrying the *new* epoch can reach a member
  before that member has delivered the source switch (the two groups share
  no ordering).  Such writes are **deferred**, per member, and applied — in
  their destination-order positions — the moment the local source switch
  lands.  That per-member barrier is what makes the object's global write
  order a source-order prefix followed by a destination-order suffix at
  every machine;
* the initiator awaits local delivery of both broadcasts, so a move is only
  reported complete once both groups' sequencing paths have carried it; a
  sequencer crash in either group retries through that group's election,
  preserving exactly-once delivery of the switch and of every write.

The same drain-and-switch primitive powers live scale-out: `add_shard`
joins a fresh broadcast group on the running cluster and the rebalancing
controller (:class:`~repro.rts.sharding.RebalanceParams`) moves hot objects
onto it.  Primary-copy objects get the analogous lever in
:meth:`HybridRts.relocate_primary`: the primary seat follows the heaviest
writer via a frozen snapshot carried in a totally-ordered switch scoped to
the copy-holding members.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Tuple, Type

from ..amoeba.broadcast.protocol import CONTROL_MESSAGE_SIZE, DeliveredMessage
from ..amoeba.message import estimate_size
from ..amoeba.rpc import RpcReply, RpcRequest
from ..errors import ConfigurationError, RpcPeerDeadError, RtsError
from .base import ObjectHandle, RuntimeSystem
from .consistency import HistoryRecorder
from .object_model import RETRY, ObjectSpec
from .p2p.directory import ObjectDirectory
from .p2p.invalidation import KIND_INVALIDATE, InvalidationProtocol
from .p2p.replication_policy import ReplicationPolicy
from .p2p.update import KIND_UNLOCK, KIND_UPDATE, TwoPhaseUpdateProtocol
from .policy import (
    FIXED_POLICIES,
    MECHANISM_BROADCAST,
    MECHANISM_PRIMARY,
    AdaptivePolicy,
    BroadcastReplicated,
    management_policy,
)
from .sharding import (
    BatchingParams,
    RebalancePlanner,
    ShardRouter,
    batching_params,
    rebalance_params,
)
from .stats import AccessStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..amoeba.broadcast.group import BroadcastGroup
    from ..amoeba.cluster import Cluster
    from ..amoeba.node import Node
    from ..sim.process import SimProcess

#: Sentinel returned by a mechanism path when the object's policy changed
#: under the invocation; the unified dispatch loop re-routes the operation.
MIGRATED = object()

#: Point-to-point protocol message kinds (unchanged from the classic p2p RTS).
KIND_ACK = "p2p.ack"
KIND_DROP = "p2p.drop"

#: Out-of-band rejoin traffic: a donor unicasts a recovered member the state
#: covering everything ordered before its rejoin anchor, and the member can
#: re-request the seed if the chosen donor died before sending it.
KIND_SEED = "rts.seed"
KIND_SEED_REQ = "rts.seed_req"

PORT_READ = "orca.obj.read"
PORT_WRITE = "orca.obj.write"
PORT_FETCH = "orca.obj.fetch"
#: Freeze-and-snapshot service used by primary -> broadcast migrations.
PORT_MIGRATE = "orca.obj.migrate"

#: On-wire retry markers carried in RPC replies (strings, like the classic
#: ``"__retry__"``, so they survive the payload plumbing untouched).
MARKER_RETRY = "__retry__"
MARKER_MIGRATED = "__migrated__"
MARKER_MIGRATING = "__migrating__"


@dataclass
class _PendingWrite:
    """An invocation waiting for its own broadcast to come back.

    Ordinary writes also record which object/epoch they were issued under so
    a policy switch can release them early (see ``_apply_switch``).
    """

    proc: "SimProcess"
    result: Any = None
    resolved: bool = False
    obj_id: Optional[int] = None
    origin: Optional[int] = None
    epoch: int = 0


@dataclass
class _Transaction:
    """Fan-out bookkeeping: one primary write waiting for acknowledgements."""

    remaining: int
    proc: Optional["SimProcess"] = None
    #: Nodes still owing an acknowledgement; a node crash releases its debt
    #: (a dead machine will never answer, and its copy is gone with it).
    destinations: Set[int] = None  # type: ignore[assignment]


@dataclass
class MigrationRecord:
    """One completed (or in-flight) policy switch, for reports and tests."""

    obj_id: int
    name: str
    target: str
    epoch: int
    primary_node: Optional[int]


@dataclass
class ShardMoveRecord:
    """One cross-group move of an object (drain-and-switch), for reports."""

    obj_id: int
    name: str
    src: int
    dst: int
    epoch: int


@dataclass
class RecoveryRecord:
    """One primary takeover after a primary-node crash, for reports/tests.

    ``from_snapshot`` is true when no surviving secondary held a valid copy
    and the takeover fell back to the last committed state record (the
    primary-invalidate worst case); ``completed_at - crashed_at`` is the
    object's write-unavailability window in virtual seconds.
    """

    obj_id: int
    name: str
    old_primary: int
    new_primary: int
    epoch: int
    from_snapshot: bool
    crashed_at: float
    completed_at: Optional[float] = None

    @property
    def window(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.crashed_at


@dataclass
class RejoinRecord:
    """One recovered node's catch-up back to full membership.

    ``completed_at - recovered_at`` is the window during which the member
    was alive but not yet a full member (reads served stale or not at all,
    gap requests skipped it); ``objects_reseeded`` counts the replica
    copies the rejoin seeds restored.
    """

    node_id: int
    recovered_at: float
    completed_at: Optional[float] = None
    objects_reseeded: int = 0
    seats_handed_back: int = 0

    @property
    def window(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.recovered_at


@dataclass
class DrainRecord:
    """One planned node departure: every seat evacuated, then the exit."""

    node_id: int
    started_at: float
    primary_seats_moved: int = 0
    sequencer_seats_moved: int = 0
    completed_at: Optional[float] = None


class _WriteBatcher:
    """Per-(node, shard) write combining onto the ordered broadcast.

    Writes enqueue here instead of broadcasting individually.  A batch is
    flushed when it reaches ``max_batch`` operations, when ``flush_delay``
    expires, or — with a zero delay — immediately while no batch is in
    flight.  Only one batch per (node, shard) is outstanding at a time:
    writes arriving while it is on the wire coalesce into the next batch,
    which both preserves per-node FIFO order and yields the group-commit
    effect that amortises the sequencer round trip under contention.

    With ``backpressure_depth`` set, the batcher also implements batch-aware
    flow control: while the shard sequencer's service queue is at least that
    deep, a ready batch is *held* (and keeps coalescing) instead of adding
    to the overload, so the sender backs off before its unanswered sends
    could escalate into retries and a spurious election.  The hold is
    re-evaluated after roughly the time the queue needs to drain back under
    the threshold, and a batch that has grown to ``4 * max_batch`` entries
    flushes unconditionally, bounding the held writes' latency.  (In the
    simulator the sender reads the queue depth directly; a real cluster
    would piggyback it on the sequencer's ordered broadcasts.)
    """

    def __init__(self, rts: "HybridRts", node: "Node",
                 group: "BroadcastGroup", shard: int,
                 params: BatchingParams) -> None:
        self.rts = rts
        self.node = node
        self.group = group
        self.shard = shard
        self.params = params
        self._entries: List[Tuple[Any, ...]] = []
        self._bytes = 0
        self._in_flight = False
        self._timer: Optional[int] = None
        self._backoff_timer: Optional[int] = None
        self.holds = 0

    def enqueue(self, entry: Tuple[Any, ...], size: int) -> None:
        self._entries.append(entry)
        self._bytes += size
        self._maybe_flush()

    def on_batch_delivered(self) -> None:
        self._in_flight = False
        self._maybe_flush()

    def _backpressured(self) -> bool:
        """Should a ready batch be held back for the loaded sequencer?"""
        depth = self.params.backpressure_depth
        if depth is None:
            return False
        if len(self._entries) >= 4 * self.params.max_batch:
            return False  # hard cap: flush regardless of load
        return self.group.sequencer.queue_depth >= depth

    def _hold(self) -> None:
        """Re-check once the sequencer had time to work the queue down."""
        if self._backoff_timer is not None:
            return
        self.holds += 1
        self.rts.stats.flow_control_holds += 1
        service = self.node.cost_model.cpu.sequencing_cost
        delay = max(self.params.flush_delay,
                    service * self.params.backpressure_depth)
        self._backoff_timer = self.node.kernel.set_timer(
            delay, self._on_backoff)

    def _on_backoff(self) -> None:
        self._backoff_timer = None
        self._maybe_flush()

    def _maybe_flush(self) -> None:
        if self._in_flight or not self._entries:
            return
        if (len(self._entries) >= self.params.max_batch
                or self.params.flush_delay <= 0.0):
            if self._backpressured():
                self._hold()
                return
            self._flush()
        elif self._timer is None:
            self._timer = self.node.kernel.set_timer(
                self.params.flush_delay, self._on_timer)

    def _on_timer(self) -> None:
        self._timer = None
        if self._in_flight or not self._entries:
            return
        if self._backpressured():
            self._hold()
            return
        self._flush()

    def _flush(self) -> None:
        if self._timer is not None:
            self.node.kernel.cancel_timer(self._timer)
            self._timer = None
        entries, self._entries = self._entries, []
        size, self._bytes = self._bytes, 0
        self._in_flight = True
        self.rts.stats.batches_sent += 1
        self.rts.router.shard_stats[self.shard].note_batch(len(entries))
        self.group.member(self.node.node_id).broadcast(
            ("batch", entries), size=max(16, size) + 8)


class HybridRts(RuntimeSystem):
    """Shared objects under per-object, runtime-switchable management."""

    name = "hybrid-rts"

    def __init__(self, cluster: "Cluster", default_policy: Any = "broadcast",
                 protocol: str = "update", dynamic_replication: bool = True,
                 replicate_everywhere: bool = False,
                 record_history: bool = False, num_shards: int = 1,
                 placement: Any = None, batching: Any = None,
                 rebalance: Any = None) -> None:
        """Create the unified runtime.

        Parameters
        ----------
        cluster:
            The simulated cluster.  Broadcast-managed objects (and
            migrations) need a broadcast-capable network; a purely
            primary-copy configuration runs on any network.
        default_policy:
            Policy for objects created without an explicit ``policy=``:
            a name (``"broadcast"``, ``"primary-invalidate"``,
            ``"primary-update"``, ``"primary"``, ``"adaptive"``), adaptive
            params, or a :class:`ManagementPolicy`.
        protocol:
            Which coherence protocol ``default_policy="primary"`` resolves
            to (``"update"`` or ``"invalidation"``).
        dynamic_replication:
            Enable the read/write-ratio driven secondary-copy policy for
            primary-managed objects.
        replicate_everywhere:
            Eagerly give every machine a secondary copy when a
            primary-managed object is created.
        record_history:
            Record write/read histories for the consistency checker.
        num_shards / placement / batching:
            Sharding and write batching of the broadcast mechanism (see
            :mod:`repro.rts.sharding`).
        rebalance:
            Configuration of the background shard-rebalancing controller
            (``True``, a dict of :class:`~repro.rts.sharding.RebalanceParams`
            fields, or params).  The controller samples per-shard write
            loads every ``interval`` virtual seconds, moves hot objects off
            the hottest broadcast group with :meth:`move_shard`, and — when
            ``grow_to`` is set — adds groups to the live cluster first.
        """
        super().__init__(cluster)
        if protocol not in ("update", "invalidation"):
            raise ConfigurationError(
                f"unknown coherence protocol {protocol!r} (use 'update' or "
                "'invalidation')")
        if default_policy == "primary":
            default_policy = f"primary-{'invalidate' if protocol == 'invalidation' else 'update'}"
        self.default_policy = management_policy(default_policy,
                                                default=BroadcastReplicated())
        self.dynamic_replication = dynamic_replication
        self.replicate_everywhere = replicate_everywhere
        self.history = HistoryRecorder(enabled=record_history)

        # -- broadcast mechanism ---------------------------------------- #
        self._num_shards = num_shards
        self._placement = placement
        self.batching = batching_params(batching)
        self.rebalance = rebalance_params(rebalance)
        self._rebalancer_active = False
        self.router: Optional[ShardRouter] = None
        #: Shard-0 group under the classic attribute name (set with the router).
        self.group: Optional["BroadcastGroup"] = None
        self._batchers: Dict[Tuple[int, int], _WriteBatcher] = {}
        self._invocation_ids = itertools.count(1)
        self._pending: Dict[int, _PendingWrite] = {}
        #: (node_id, obj_id) -> [SimProcess, ...] waiting for a local replica.
        self._replica_waiters: Dict[Tuple[int, int], List["SimProcess"]] = {}

        # -- primary-copy mechanism ------------------------------------- #
        self.directory = ObjectDirectory()
        self.replication = ReplicationPolicy(self.cost_model.replication)
        self.protocols = {
            "invalidation": InvalidationProtocol(self),
            "update": TwoPhaseUpdateProtocol(self),
        }
        #: Default protocol instance (what ``"primary"`` resolves to).
        self.protocol = self.protocols[protocol]
        self._txn_ids = itertools.count(1)
        self._transactions: Dict[int, _Transaction] = {}
        #: txn_id -> node that must receive the acknowledgements.
        self._ack_destinations: Dict[int, int] = {}
        self._services_installed = False

        # -- per-object policy state ------------------------------------ #
        #: obj_id -> name of the fixed policy currently managing the object.
        self._policy_by_obj: Dict[int, str] = {}
        #: obj_id -> adaptive controller (objects created adaptive only).
        self._adaptive_by_obj: Dict[int, AdaptivePolicy] = {}
        #: obj_id -> cluster-wide access window driving adaptive decisions.
        self._obj_access: Dict[int, AccessStats] = {}
        self._created_on: Dict[int, int] = {}

        # -- migration state -------------------------------------------- #
        #: obj_id -> number of switches (policy or shard) broadcast for it.
        self._epoch_by_obj: Dict[int, int] = {}
        #: (node_id, obj_id) -> epoch that node has delivered up to.
        self._node_epoch: Dict[Tuple[int, int], int] = {}
        #: (node_id, obj_id) -> destination-group writes that outran the
        #: member's delivery of the source-group shard switch; applied, in
        #: destination order, the moment the local switch lands (the
        #: cross-group barrier of a shard move).
        self._future_writes: Dict[Tuple[int, int],
                                  List[Tuple[Any, ...]]] = {}
        #: (node_id, obj_id) -> highest shard-arrive epoch delivered there;
        #: a move is settled only when *both* of its broadcasts landed
        #: everywhere.
        self._dest_epoch: Dict[Tuple[int, int], int] = {}
        #: obj_id -> shard-arrive epoch the latest move requires.
        self._dest_epoch_required: Dict[int, int] = {}
        #: (node_id, obj_id) -> processes waiting for that node to deliver
        #: the current switch (the primary gating its first post-switch write).
        self._switch_waiters: Dict[Tuple[int, int], List["SimProcess"]] = {}
        #: Coherence messages that raced ahead of a switch at some member.
        self._deferred: Dict[Tuple[int, int], List[Tuple[str, Dict[str, Any]]]] = {}
        #: (node_id, obj_id) -> armed lag-probe timer (see _arm_lag_probe).
        self._lag_probes: Dict[Tuple[int, int], int] = {}
        #: Objects frozen at their primary for a state transfer.
        self._frozen: Set[int] = set()
        #: (primary, obj_id) -> count of primary-write commits in flight
        #: there; a freeze drains this to zero before snapshotting (two
        #: overlapping two-phase rounds share one replica lock bit, so the
        #: lock alone cannot prove quiescence).
        self._inflight_writes: Dict[Tuple[int, int], int] = {}
        #: Objects with a switch still being delivered somewhere.
        self._migrating: Set[int] = set()
        #: Objects inside a migrate() call that has not yet broadcast its
        #: switch (the freeze/snapshot phase can suspend, during which the
        #: epoch is still old and ``_migrating`` alone cannot protect).
        self._migrate_in_progress: Set[int] = set()
        #: Objects whose adaptive migration thread is spawned but not done.
        self._migration_pending: Set[int] = set()
        self.migrations: List[MigrationRecord] = []
        self.shard_moves: List[ShardMoveRecord] = []
        #: (obj_id, old_primary, new_primary) per completed seat relocation.
        self.relocations: List[Tuple[int, int, int]] = []

        # -- primary-failure recovery ------------------------------------ #
        #: Cluster-unique write-invocation ids for the primary-copy path.
        self._write_ids = itertools.count(1)
        #: (node_id, obj_id) -> {origin: (seq, result)} of the latest write
        #: each client process got applied there.  The dedup table that
        #: makes a client's re-issue after a primary crash idempotent; it
        #: travels with every copy (fetches, update fan-outs, relocation
        #: and takeover switches).  Each client has at most one write
        #: outstanding, so retaining only its newest id bounds the table
        #: at O(clients) however long the run.
        self._applied: Dict[Tuple[int, int], Dict[str, Tuple[int, Any]]] = {}
        #: obj_id -> (state, version, dedup table) as of the last committed
        #: primary write — the commit record a takeover falls back to when
        #: the only valid copy died with its machine (primary-invalidate
        #: objects after any write).
        self._last_committed: Dict[int, Tuple[Any, int, Dict]] = {}
        #: obj_id -> node coordinating an in-flight takeover (so a second
        #: crash can restart recovery if the coordinator died too).
        self._recovering: Dict[int, int] = {}
        self.recoveries: List[RecoveryRecord] = []
        #: obj_id -> virtual time of its last cross-group move (the
        #: rebalance controller's per-object churn cooldown).
        self._last_moved_at: Dict[int, float] = {}

        # -- elasticity: rejoin, drain, scale-in -------------------------- #
        #: Nodes whose rejoin catch-up has not completed: they must not be
        #: targeted by seat moves or act as seed donors, and cluster-wide
        #: reconfiguration (migrations, shard moves) pauses while this is
        #: non-empty, so a seed is never computed against routes that shift
        #: under it.
        self._catching_up: Set[int] = set()
        #: Nodes being drained out of the cluster (drain_node in progress).
        self._draining: Set[int] = set()
        #: Per-node rejoin incarnation counter: a crash during catch-up
        #: abandons the old rejoin thread and invalidates its seeds.
        self._rejoin_epoch: Dict[int, int] = {}
        #: (node_id, shard) pairs whose out-of-band seed has not arrived.
        self._awaiting_seed: Set[Tuple[int, int]] = set()
        #: Deliveries a rejoining member received between its anchor and
        #: its seed, replayed in order once the seed installs.
        self._seed_buffer: Dict[Tuple[int, int], List[DeliveredMessage]] = {}
        self._recovery_wired = False
        self.rejoins: List[RejoinRecord] = []
        self.drains: List[DrainRecord] = []
        #: Broadcast groups retired by remove_shard, in retirement order.
        self.removed_shards: List[int] = []

        # -- cross-object transactions ------------------------------------ #
        #: Lazily created transaction layer (first transact() call builds
        #: it); while None, every hook below is skipped and the runtime
        #: behaves byte-identically to one without the layer.
        self._txn_layer: Optional[Any] = None

        initial = self.default_policy
        needs_broadcast = (isinstance(initial, AdaptivePolicy)
                           or initial.mechanism == MECHANISM_BROADCAST)
        if needs_broadcast:
            self._ensure_router()
        else:
            self._ensure_primary_services()
        if type(self) is HybridRts:
            self.name = {
                MECHANISM_BROADCAST: "broadcast-rts",
                MECHANISM_PRIMARY: "p2p-rts",
            }.get(initial.mechanism, "adaptive-rts"
                  if isinstance(initial, AdaptivePolicy) else "hybrid-rts")

    # ------------------------------------------------------------------ #
    # Lazy wiring of the two mechanisms
    # ------------------------------------------------------------------ #

    def _ensure_router(self) -> ShardRouter:
        """Build the broadcast groups on first need (they require hardware
        broadcast, which a primary-copy-only configuration does not)."""
        if self.router is None:
            if not self.cluster.network.supports_broadcast:
                raise RtsError(
                    "broadcast-managed objects (and policy migrations) need "
                    "a broadcast-capable network; this cluster is "
                    f"{self.cluster.network.name!r}")
            self.router = ShardRouter(self.cluster, num_shards=self._num_shards,
                                      placement=self._placement)
            self.group = self.router.group_for(0)
            for shard in range(self.router.num_shards):
                self._wire_shard(shard)
            self._wire_recovery()
        return self.router

    def _wire_shard(self, shard: int) -> None:
        """Install every member's delivery handler for one shard's group."""
        group = self.router.group_for(shard)
        for node in self.cluster.nodes:
            group.set_delivery_handler(
                node.node_id,
                lambda delivered, nid=node.node_id, s=shard:
                    self._on_deliver(nid, s, delivered),
            )

    def add_shard(self, sequencer_node_id: Optional[int] = None) -> int:
        """Add a broadcast group to the running cluster; returns its shard.

        The group's members join and its wire-kind namespace registers
        immediately (see :meth:`ShardRouter.add_shard` for seat selection),
        so the new total order can carry traffic — and receive rebalanced
        objects — without disturbing the existing groups.
        """
        router = self._ensure_router()
        shard = router.add_shard(sequencer_node_id=sequencer_node_id)
        self._wire_shard(shard)
        self.stats.shards_added += 1
        return shard

    def _ensure_primary_services(self) -> None:
        """Register the point-to-point handlers and RPC services once."""
        if self._services_installed:
            return
        self._services_installed = True
        for node in self.cluster.nodes:
            nid = node.node_id
            node.on_crash(lambda n=nid: self._on_node_crash(n))
            node.register_handler(KIND_INVALIDATE,
                                  lambda m, n=nid: self._on_invalidate(n, m.payload))
            node.register_handler(KIND_UPDATE,
                                  lambda m, n=nid: self._on_update(n, m.payload))
            node.register_handler(KIND_UNLOCK,
                                  lambda m, n=nid: self._on_unlock(n, m.payload))
            node.register_handler(KIND_ACK,
                                  lambda m, n=nid: self._on_ack(n, m.payload))
            node.register_handler(KIND_DROP,
                                  lambda m, n=nid: self._on_drop(n, m.payload))
            rpc = self.cluster.rpc_for(nid)
            rpc.register_service(PORT_READ,
                                 lambda req, n=nid: self._serve_read(n, req))
            rpc.register_service(PORT_WRITE,
                                 lambda req, n=nid: self._serve_write(n, req),
                                 may_block=True)
            rpc.register_service(PORT_FETCH,
                                 lambda req, n=nid: self._serve_fetch(n, req),
                                 may_block=True)
            rpc.register_service(PORT_MIGRATE,
                                 lambda req, n=nid: self._serve_migrate(n, req),
                                 may_block=True)
        self._wire_recovery()

    def _wire_recovery(self) -> None:
        """Register the rejoin listeners and seed handlers once per cluster."""
        if self._recovery_wired:
            return
        self._recovery_wired = True
        for node in self.cluster.nodes:
            nid = node.node_id
            node.on_recover(lambda n=nid: self._on_node_recover(n))
            node.on_crash(lambda n=nid: self._abort_rejoin(n))
            node.register_handler(
                KIND_SEED, lambda m, n=nid: self._on_seed(n, m.payload))
            node.register_handler(
                KIND_SEED_REQ,
                lambda m, n=nid: self._on_seed_request(n, m.payload))

    # ------------------------------------------------------------------ #
    # Policy bookkeeping
    # ------------------------------------------------------------------ #

    def policy_of(self, handle: ObjectHandle) -> str:
        """Name of the fixed policy currently managing ``handle``."""
        return self._policy_by_obj[handle.obj_id]

    def is_adaptive(self, handle: ObjectHandle) -> bool:
        return handle.obj_id in self._adaptive_by_obj

    def _mechanism_of(self, obj_id: int) -> str:
        return FIXED_POLICIES[self._policy_by_obj[obj_id]].mechanism

    def _protocol_for_obj(self, obj_id: int):
        return self.protocols[FIXED_POLICIES[self._policy_by_obj[obj_id]].protocol]

    @property
    def num_shards(self) -> int:
        return self.router.num_shards if self.router is not None else 1

    def shard_of(self, handle: ObjectHandle) -> int:
        """The shard (and thus broadcast group) currently ordering ``handle``.

        This is the router's live view: after a :meth:`move_shard` it names
        the destination group, not the creation-time placement.
        """
        return self._ensure_router().assign(handle.obj_id, handle.name)

    def _batcher(self, node: "Node", shard: int) -> _WriteBatcher:
        key = (node.node_id, shard)
        batcher = self._batchers.get(key)
        if batcher is None:
            batcher = _WriteBatcher(self, node, self.router.group_for(shard),
                                    shard, self.batching)
            self._batchers[key] = batcher
        return batcher

    # ------------------------------------------------------------------ #
    # Object creation
    # ------------------------------------------------------------------ #

    def create_object(self, proc: "SimProcess", spec_class: Type[ObjectSpec],
                      args: Tuple[Any, ...] = (), kwargs: Optional[Dict[str, Any]] = None,
                      name: Optional[str] = None, policy: Any = None) -> ObjectHandle:
        """Create a shared object managed by ``policy`` (default: the RTS's)."""
        node = self._node_of(proc)
        chosen = management_policy(policy, default=self.default_policy)
        if isinstance(chosen, AdaptivePolicy):
            controller: Optional[AdaptivePolicy] = chosen
            effective = FIXED_POLICIES[chosen.initial]
        else:
            controller, effective = None, chosen
        if effective.mechanism == MECHANISM_BROADCAST or controller is not None:
            self._ensure_router()
        if effective.mechanism == MECHANISM_PRIMARY or controller is not None:
            self._ensure_primary_services()

        handle = self._new_handle(spec_class, name)
        obj_id = handle.obj_id
        self._policy_by_obj[obj_id] = effective.name
        if controller is not None:
            self._adaptive_by_obj[obj_id] = controller
            self._obj_access[obj_id] = AccessStats()
        self._created_on[obj_id] = node.node_id

        if effective.mechanism == MECHANISM_BROADCAST:
            self._create_broadcast(proc, node, handle, spec_class, args, kwargs)
        else:
            self._create_primary(proc, node, handle, spec_class, args, kwargs)
        return handle

    def _create_broadcast(self, proc: "SimProcess", node: "Node",
                          handle: ObjectHandle, spec_class: Type[ObjectSpec],
                          args: Tuple[Any, ...],
                          kwargs: Optional[Dict[str, Any]]) -> None:
        """Replicate the new object on every machine via ordered broadcast."""
        shard = self.router.note_create(handle.obj_id, handle.name)
        invocation_id = next(self._invocation_ids)
        pending = _PendingWrite(proc=proc)
        self._pending[invocation_id] = pending
        payload = ("create", handle.obj_id, spec_class, args, kwargs or {},
                   invocation_id)
        size = max(32, estimate_size(args) + estimate_size(kwargs or {}))
        proc.advance(self.cost_model.cpu.operation_dispatch_cost)
        proc.absorb_overhead(node.drain_overhead())
        proc.flush()
        self.router.group_for(shard).member(node.node_id).broadcast(
            payload, size=size)
        proc.suspend()
        self._pending.pop(invocation_id, None)

    def _create_primary(self, proc: "SimProcess", node: "Node",
                        handle: ObjectHandle, spec_class: Type[ObjectSpec],
                        args: Tuple[Any, ...],
                        kwargs: Optional[Dict[str, Any]]) -> None:
        """Install the primary copy on the caller's machine."""
        instance = spec_class.create(args, kwargs)
        self.managers[node.node_id].install(handle.obj_id, handle.name, instance,
                                            is_primary=True)
        self.directory.register(handle.obj_id, node.node_id)
        self.stats.replicas_created += 1
        self._commit_record(handle.obj_id, node.node_id)
        proc.advance(self.cost_model.cpu.operation_dispatch_cost)
        if self.replicate_everywhere:
            for other in self.cluster.nodes:
                if other.node_id != node.node_id:
                    self.replicate_to(handle, other.node_id)

    def replicate_to(self, handle: ObjectHandle, node_id: int) -> None:
        """Eagerly install a secondary copy on ``node_id`` (no cost charged)."""
        primary = self.directory.primary_of(handle.obj_id)
        source = self.managers[primary].get(handle.obj_id)
        if self.managers[node_id].has_valid_copy(handle.obj_id):
            return
        copy = handle.spec_class()
        copy.unmarshal_state(source.instance.marshal_state())
        self.managers[node_id].discard(handle.obj_id)
        self.managers[node_id].install(handle.obj_id, handle.name, copy,
                                       version=source.version)
        self._applied[(node_id, handle.obj_id)] = dict(
            self._applied_table(primary, handle.obj_id))
        self.directory.add_copy(handle.obj_id, node_id)
        self.stats.replicas_created += 1

    # ------------------------------------------------------------------ #
    # Unified invocation dispatch
    # ------------------------------------------------------------------ #

    def _invoke(self, proc: "SimProcess", handle: ObjectHandle, op_name: str,
                args: Tuple[Any, ...] = (), kwargs: Optional[Dict[str, Any]] = None) -> Any:
        node = self._node_of(proc)
        nid = node.node_id
        obj_id = handle.obj_id
        op = handle.spec_class.operation_def(op_name)
        cpu = self.cost_model.cpu
        proc.advance(cpu.operation_dispatch_cost)
        if op.work_units:
            proc.compute(op.work_units)

        # Cluster-wide and per-machine access accounting (one note per
        # invocation, regardless of retries or mid-flight migrations).
        if op.is_write:
            self.stats.note_write(obj_id)
            self.replication.note_write(obj_id, nid)
        else:
            self.replication.note_read(obj_id, nid)

        shard_write_noted = False
        while True:
            mechanism = self._mechanism_of(obj_id)
            if mechanism == MECHANISM_BROADCAST:
                if op.is_write:
                    # One shard-write note per invocation, exactly like the
                    # per-object counters — even if a migration bounces the
                    # invocation out of and back into the broadcast path.
                    # The router attributes it to the object's *current*
                    # shard, so the counters follow the object across moves.
                    if not shard_write_noted:
                        # The note carries the invocation's payload size so
                        # the router's byte window sees the same skew the
                        # wire does (args dominate; kwargs are rare).
                        self.router.note_write(
                            obj_id, handle.name,
                            nbytes=estimate_size(args) + estimate_size(kwargs))
                        shard_write_noted = True
                        if self.rebalance is not None:
                            self._maybe_start_rebalancer()
                    result = self._broadcast_write(proc, node, handle, op,
                                                   args, kwargs)
                else:
                    result = self._broadcast_read(proc, node, handle, op,
                                                  args, kwargs)
            else:
                proc.absorb_overhead(node.drain_overhead())
                if op.is_write:
                    result = self._primary_write(proc, nid, handle, op, args,
                                                 kwargs)
                else:
                    result = self._primary_read(proc, nid, handle, op, args,
                                                kwargs)
                if result is not MIGRATED and self.dynamic_replication:
                    self._apply_replication_policy(proc, nid, handle)
            if result is not MIGRATED:
                break
            # The object moved to the other mechanism while this invocation
            # was in flight; re-route it under the new policy.

        self._adaptive_check(proc, handle, op.is_write)
        return result

    def _adaptive_check(self, proc: "SimProcess", handle: ObjectHandle,
                        is_write: bool) -> None:
        """Update the object's access window; migrate when the controller says.

        The migration itself runs in a spawned thread on the invoking node:
        the client whose access tripped the threshold continues immediately
        instead of paying the freeze/switch round trips in its own request
        latency.
        """
        controller = self._adaptive_by_obj.get(handle.obj_id)
        if controller is None:
            return
        window = self._obj_access[handle.obj_id]
        if is_write:
            window.note_write()
        else:
            window.note_read()
        if not controller.due(window):
            return
        obj_id = handle.obj_id
        if obj_id in self._migration_pending:
            return
        if obj_id in self._migrating and not self._migration_settled(obj_id):
            return
        node = self._node_of(proc)
        target = controller.desired(window, self._policy_by_obj[obj_id])
        if target is None:
            # No policy move wanted; the controller's second lever is the
            # object's *shard* — relocate it off an overloaded sequencer.
            if self._mechanism_of(obj_id) != MECHANISM_BROADCAST:
                return
            dest = controller.desired_shard(self.router, obj_id)
            if dest is None:
                return
            self._migration_pending.add(obj_id)

            def shard_move_body() -> None:
                mproc = self.sim.current_process
                try:
                    if self.move_shard(mproc, handle, dest):
                        # The window that justified the move is spent; the
                        # next decision must re-earn itself on fresh load.
                        self.router.reset_window()
                finally:
                    self._migration_pending.discard(obj_id)

            node.kernel.spawn_thread(shard_move_body,
                                     name=f"rebalance:{handle.name}")
            return
        self._migration_pending.add(obj_id)

        def migration_body() -> None:
            mproc = self.sim.current_process
            try:
                if self.migrate(mproc, handle, target):
                    window.decay(controller.params.decay)
            finally:
                self._migration_pending.discard(obj_id)

        node.kernel.spawn_thread(migration_body, name=f"migrate:{handle.name}")

    # ------------------------------------------------------------------ #
    # Cross-object atomic transactions
    # ------------------------------------------------------------------ #

    def transact(self, proc: "SimProcess", ops, on_guard: str = "retry") -> List[Any]:
        """Execute a group of operations atomically and serializably.

        ``ops`` is a sequence of ``(handle, op_name[, args[, kwargs]])``
        entries; the results are returned in the same order.  Groups whose
        participants all ride one shard's broadcast commit as a single
        ordered record; everything else runs an ordered two-phase commit
        (see :mod:`repro.txn`).  ``on_guard`` selects what happens when a
        guard rejects the group: ``"retry"`` (default) re-attempts once
        the rejecting object changes, ``"abort"`` raises
        :class:`~repro.errors.TransactionAborted` with nothing applied.

        .. caveat:: readers are not snapshot-isolated.  A cross-shard
           commit applies through per-shard ``txn-outcome`` records, and
           between those applies a plain read can observe one
           participant's post-commit state next to another's pre-commit
           state (read skew).  Writes are fully serialized — conflicting
           writes defer behind the prepare — so this never corrupts
           state; a reader needing a consistent view across objects must
           issue the reads *as a transaction* of its own.  A dedicated
           read-only fast path is an open item.
        """
        if self._txn_layer is None:
            from ..txn import TransactionLayer

            self._txn_layer = TransactionLayer(self)
        return self._txn_layer.transact(proc, ops, on_guard=on_guard)

    # ------------------------------------------------------------------ #
    # Broadcast mechanism (reads local, writes through the ordered group)
    # ------------------------------------------------------------------ #

    def _broadcast_read(self, proc: "SimProcess", node: "Node",
                        handle: ObjectHandle, op, args, kwargs) -> Any:
        manager = self.managers[node.node_id]
        if not manager.has_valid_copy(handle.obj_id):
            self._await_replica(proc, node.node_id, handle.obj_id)
        proc.absorb_overhead(node.drain_overhead())
        while True:
            result = manager.execute_read(handle.obj_id, op, args, kwargs)
            if result is not RETRY:
                break
            self.stats.guard_retries += 1
            self._wait_for_change(proc, node.node_id, handle.obj_id)
        self.stats.note_read(handle.obj_id, local=True)
        self.history.record_read(proc.name, node.node_id, handle.obj_id,
                                 op.name, args, result,
                                 manager.get(handle.obj_id).version)
        return result

    def _broadcast_write(self, proc: "SimProcess", node: "Node",
                         handle: ObjectHandle, op, args, kwargs) -> Any:
        """Broadcast the write (directly or batched) and await local apply."""
        manager = self.managers[node.node_id]
        obj_id = handle.obj_id
        while True:
            # Capture the epoch *before* confirming the mechanism: a stamp
            # can only ever be stale-old, and a stale-old write sequenced
            # after the switch is dropped and re-issued.  (Reading the epoch
            # afterwards could stamp a post-switch epoch onto a write that
            # bypasses the new primary protocol.)  The epoch and the route
            # are read back to back — no suspension between them — so a
            # write is always broadcast in the group that matches its stamp;
            # a shard move between loop iterations simply re-routes the
            # retry to the destination order.
            epoch = self._epoch_by_obj.get(obj_id, 0)
            shard = self.shard_of(handle)
            group = self.router.group_for(shard)
            if self._mechanism_of(obj_id) != MECHANISM_BROADCAST:
                return MIGRATED
            if not manager.has_valid_copy(obj_id):
                self._await_replica(proc, node.node_id, obj_id)
                continue
            invocation_id = next(self._invocation_ids)
            size = max(16, estimate_size(args) + estimate_size(kwargs or {}) + 16)
            proc.absorb_overhead(node.drain_overhead())
            proc.flush()
            self.stats.broadcast_writes += 1
            # The pending entry is registered only after the (possibly
            # blocking) flush above: a policy switch may resolve pending
            # writes of this object early, and that wake must never race a
            # wait the process is parked in for some other reason.
            pending = _PendingWrite(proc=proc, obj_id=obj_id,
                                    origin=node.node_id, epoch=epoch)
            self._pending[invocation_id] = pending
            if self.batching is not None:
                entry = (obj_id, op.name, args, kwargs or {}, invocation_id,
                         epoch)
                self._batcher(node, shard).enqueue(entry, size)
            else:
                payload = ("op", obj_id, op.name, args, kwargs or {},
                           invocation_id, epoch)
                group.member(node.node_id).broadcast(payload, size=size)
            result = proc.suspend()
            self._pending.pop(invocation_id, None)
            proc.absorb_overhead(node.drain_overhead())
            if result is MIGRATED:
                return MIGRATED
            if result is not RETRY:
                return result
            # Guard rejected the operation everywhere; wait and retry.
            self.stats.guard_retries += 1
            self._wait_for_change(proc, node.node_id, obj_id)

    # -- delivery (runs at every member, in per-shard total order) ------- #

    def _on_deliver(self, node_id: int, shard: int,
                    delivered: DeliveredMessage) -> None:
        payload = delivered.payload
        kind = payload[0]
        seed_key = (node_id, shard)
        if seed_key in self._awaiting_seed and not (
                kind == "rejoin" and payload[1] == node_id):
            # This member re-entered the order at its rejoin anchor but the
            # out-of-band seed (the state covering everything before the
            # anchor) has not arrived yet; buffer post-anchor deliveries
            # for ordered replay on top of the seeded state.  Only the
            # member's own anchor passes through (it wakes the rejoin
            # thread and carries no state).
            self._seed_buffer.setdefault(seed_key, []).append(delivered)
            return
        if kind == "rejoin":
            self._apply_rejoin(node_id, shard, delivered)
            return
        manager = self.managers[node_id]
        node = self.cluster.node(node_id)
        cpu = self.cost_model.cpu
        if kind == "create":
            _, obj_id, spec_class, args, kwargs, invocation_id = payload
            if not manager.has_valid_copy(obj_id):
                instance = spec_class.create(args, kwargs)
                manager.install(obj_id, self.handle(obj_id).name, instance)
                self.stats.replicas_created += 1
            node.charge_overhead(cpu.operation_dispatch_cost)
            self._wake_replica_waiters(node_id, obj_id)
            if delivered.origin == node_id:
                self._resolve(invocation_id, None)
            return
        if kind == "op":
            _, obj_id, op_name, args, kwargs, invocation_id, epoch = payload
            self._apply_one(node_id, manager, node, obj_id, op_name, args,
                            kwargs, invocation_id, epoch, delivered.origin,
                            delivered.seqno)
            return
        if kind == "batch":
            _, entries = payload
            for obj_id, op_name, args, kwargs, invocation_id, epoch in entries:
                self._apply_one(node_id, manager, node, obj_id, op_name, args,
                                kwargs, invocation_id, epoch, delivered.origin,
                                delivered.seqno)
            if delivered.origin == node_id:
                batcher = self._batchers.get((node_id, shard))
                if batcher is not None:
                    batcher.on_batch_delivered()
            return
        if kind == "switch":
            self._apply_switch(node_id, payload, delivered.origin)
            return
        if kind == "takeover":
            self._apply_takeover(node_id, payload, delivered.origin)
            return
        if kind == "shard-switch":
            self._apply_shard_switch(node_id, payload, delivered.origin)
            return
        if kind == "shard-arrive":
            self._apply_shard_arrive(node_id, payload, delivered.origin)
            return
        if isinstance(kind, str) and kind.startswith("txn-"):
            # Transaction records exist only after some transact() call
            # built the (cluster-global) layer, so it is always present
            # when one is delivered.
            self._txn_layer.on_deliver(node_id, payload, delivered.origin,
                                       delivered.seqno)
            return
        raise RtsError(f"unknown broadcast RTS payload kind {kind!r}")

    def _apply_one(self, node_id: int, manager, node, obj_id: int,
                   op_name: str, args, kwargs, invocation_id: int, epoch: int,
                   origin: int, seqno: int) -> None:
        """Apply one delivered write (standalone or decoded from a batch)."""
        if self._txn_layer is not None and self._txn_layer.defer_write(
                node_id, obj_id,
                (op_name, args, kwargs, invocation_id, epoch, origin, seqno)):
            # A transaction holds this member's object (prepared or epoch
            # barrier): the write replays FIFO when the lock releases —
            # before any epoch check, because the lock's release position
            # in the order is what decides the write's fate everywhere.
            return
        delivered_up_to = self._node_epoch.get((node_id, obj_id), 0)
        if epoch > delivered_up_to:
            # A post-switch write outran this member's delivery of the
            # switch itself — possible only across *groups* (a shard move's
            # destination order is not synchronised with its source order)
            # or when a new-epoch write is sequenced just ahead of its own
            # switch message.  Defer it: it applies, in its own group's
            # order, the moment the local switch lands.  Every member makes
            # the same decision at the same position of the same group
            # order, so the object's global write order stays identical
            # everywhere.
            self._future_writes.setdefault((node_id, obj_id), []).append(
                (op_name, args, kwargs, invocation_id, epoch, origin, seqno))
            # Same out-of-band evidence as a deferred coherence message: if
            # the switch this write outran was lost here and its group went
            # quiet, only an explicit probe will recover it.
            self._arm_lag_probe(node_id, obj_id)
            return
        if epoch < delivered_up_to:
            # The write was sequenced after a switch it predates.  Every
            # member drops it at the same point in the total order; the
            # origin re-issues it under the object's new policy or route.
            if origin == node_id:
                self._resolve(invocation_id, MIGRATED)
            return
        handle = self.handle(obj_id)
        op = handle.spec_class.operation_def(op_name)
        cpu = self.cost_model.cpu
        if not manager.has_valid_copy(obj_id):
            # Per-shard total order guarantees the create precedes every
            # operation, so a missing replica is a protocol error worth
            # failing on.
            raise RtsError(
                f"node {node_id} received operation {op_name!r} for object "
                f"{obj_id} before its create message"
            )
        result = manager.apply_write(obj_id, op, args, kwargs,
                                     local_origin=origin == node_id)
        # Applying the update costs CPU on every machine that holds a
        # replica: this is the overhead that limits ACP's speedup.
        node.charge_overhead(cpu.operation_dispatch_cost +
                             op.work_units * cpu.work_unit_time)
        if result is not RETRY:
            self.history.record_write(node_id, obj_id, op_name, args, seqno,
                                      manager.get(obj_id).version)
        if origin == node_id:
            self._resolve(invocation_id, result)

    def _flush_future_writes(self, node_id: int, obj_id: int) -> None:
        """Apply deferred destination-order writes after a switch landed."""
        entries = self._future_writes.pop((node_id, obj_id), [])
        if not entries:
            return
        manager = self.managers[node_id]
        node = self.cluster.node(node_id)
        requeue: List[Tuple[Any, ...]] = []
        current = self._node_epoch.get((node_id, obj_id), 0)
        for entry in entries:
            op_name, args, kwargs, invocation_id, epoch, origin, seqno = entry
            if epoch > current:
                requeue.append(entry)
                continue
            self._apply_one(node_id, manager, node, obj_id, op_name, args,
                            kwargs, invocation_id, epoch, origin, seqno)
        if requeue:
            self._future_writes[(node_id, obj_id)] = requeue

    def _resolve(self, invocation_id: int, result: Any) -> None:
        pending = self._pending.get(invocation_id)
        if pending is None or pending.resolved:
            return
        pending.resolved = True
        pending.result = result
        pending.proc.wake(result)

    # -- blocking helpers ------------------------------------------------ #

    def _await_replica(self, proc: "SimProcess", node_id: int, obj_id: int) -> None:
        """Block until this node holds a replica of ``obj_id``."""
        key = (node_id, obj_id)
        self._replica_waiters.setdefault(key, []).append(proc)
        proc.suspend()

    def _wake_replica_waiters(self, node_id: int, obj_id: int) -> None:
        for proc in self._replica_waiters.pop((node_id, obj_id), []):
            proc.wake()

    def _wait_for_change(self, proc: "SimProcess", node_id: int, obj_id: int) -> None:
        """Block until the local replica of ``obj_id`` is modified."""
        replica = self.managers[node_id].get(obj_id)
        replica.on_next_change(lambda: proc.wake())
        proc.suspend()

    # ------------------------------------------------------------------ #
    # Primary-copy mechanism (reads local-or-RPC, writes via the primary)
    # ------------------------------------------------------------------ #

    def _primary_read(self, proc: "SimProcess", nid: int, handle: ObjectHandle,
                      op, args, kwargs) -> Any:
        manager = self.managers[nid]
        if manager.has_valid_copy(handle.obj_id):
            replica = manager.get(handle.obj_id)
            # Reads wait while the copy is locked by an in-flight update.
            while replica.locked:
                replica.on_next_change(lambda p=proc: p.wake())
                proc.suspend()
            while True:
                result = manager.execute_read(handle.obj_id, op, args, kwargs)
                if result is not RETRY:
                    break
                self.stats.guard_retries += 1
                replica.on_next_change(lambda p=proc: p.wake())
                proc.suspend()
            self.stats.note_read(handle.obj_id, local=True)
            return result
        # No local copy: remote read at the primary.
        while True:
            if self._mechanism_of(handle.obj_id) != MECHANISM_PRIMARY:
                return MIGRATED
            primary = self.directory.primary_of(handle.obj_id)
            if not self.cluster.node(primary).alive:
                # The primary died; the read re-routes after the takeover.
                self._await_recovery(proc, handle.obj_id)
                continue
            try:
                result = self.cluster.rpc_for(nid).call(
                    proc, primary, PORT_READ,
                    payload={"obj_id": handle.obj_id, "op_name": op.name,
                             "args": args, "kwargs": kwargs or {}},
                    size=16 + estimate_size(args),
                )
            except RpcPeerDeadError:
                self._await_recovery(proc, handle.obj_id)
                continue
            if isinstance(result, str) and result == MARKER_MIGRATED:
                return MIGRATED
            if isinstance(result, str) and result == MARKER_MIGRATING:
                # The seat exists but cannot serve yet (e.g. a takeover
                # switch still in flight): back off and retry.
                proc.hold(self.cost_model.cpu.protocol_cost * 4)
                continue
            if not (isinstance(result, str) and result == MARKER_RETRY):
                self.stats.note_read(handle.obj_id, local=False)
                return result
            self.stats.guard_retries += 1
            proc.hold(self.cost_model.cpu.protocol_cost * 4)

    def _serve_read(self, nid: int, request: RpcRequest) -> Any:
        payload = request.payload
        handle = self.handle(payload["obj_id"])
        op = handle.spec_class.operation_def(payload["op_name"])
        manager = self.managers[nid]
        if self._mechanism_of(payload["obj_id"]) != MECHANISM_PRIMARY:
            # The object migrated away while the read was in flight; the
            # client re-routes it under the new policy.
            return MARKER_MIGRATED
        if not manager.has_valid_copy(payload["obj_id"]):
            # Still a primary-copy object, but this seat cannot serve yet —
            # typically a takeover-elected primary that has not delivered
            # its own switch.  The client backs off and retries (this
            # handler runs in event context and must not block).
            return MARKER_MIGRATING
        result = manager.execute_read(payload["obj_id"], op, payload["args"],
                                      payload["kwargs"])
        if result is RETRY:
            return MARKER_RETRY
        return result

    def _primary_write(self, proc: "SimProcess", nid: int, handle: ObjectHandle,
                       op, args, kwargs, wid=None) -> Any:
        obj_id = handle.obj_id
        # One write id per invocation, stable across retries: it is what
        # lets the new primary after a crash (or the old one after a lost
        # reply) recognise a re-issued write and apply it exactly once.
        # The origin is the client *process* (names are deterministic), so
        # dedup state needs only the newest id per origin.  The transaction
        # layer passes its own stable per-sub-operation id instead.
        if wid is None:
            wid = (proc.name, next(self._write_ids))
        while True:
            if self._mechanism_of(obj_id) != MECHANISM_PRIMARY:
                return self._migrated_result(obj_id, wid)
            primary = self.directory.primary_of(obj_id)
            if not self.cluster.node(primary).alive:
                # The primary died; wait out the takeover, then re-route.
                self._await_recovery(proc, obj_id)
                continue
            if primary == nid:
                # The primary must have applied every pre-switch write (i.e.
                # delivered the switch) before it can serialise new ones.
                self._await_switch(proc, nid, obj_id)
                if self._mechanism_of(obj_id) != MECHANISM_PRIMARY:
                    return self._migrated_result(obj_id, wid)
                if obj_id in self._frozen:
                    proc.hold(self.cost_model.cpu.protocol_cost * 4)
                    continue
                if self.directory.primary_of(obj_id) != nid:
                    # The primary moved while this write was parked across
                    # the switch; route it to the new one.
                    continue
                self.stats.local_writes += 1
                result = self._commit_primary_write(proc, obj_id, op, args,
                                                    kwargs, wid)
            else:
                self.stats.rpc_writes += 1
                try:
                    result = self.cluster.rpc_for(nid).call(
                        proc, primary, PORT_WRITE,
                        payload={"obj_id": obj_id, "op_name": op.name,
                                 "args": args, "kwargs": kwargs or {},
                                 "wid": wid},
                        size=16 + estimate_size(args) + estimate_size(kwargs or {}),
                    )
                except RpcPeerDeadError:
                    # The primary crashed with this write in flight.  A
                    # surviving secondary takes over; the retry re-routes
                    # there, and the write id suppresses a second apply if
                    # the write already reached the surviving state.
                    self._await_recovery(proc, obj_id)
                    continue
                if isinstance(result, str) and result == MARKER_MIGRATED:
                    return self._migrated_result(obj_id, wid)
                if isinstance(result, str) and result == MARKER_MIGRATING:
                    proc.hold(self.cost_model.cpu.protocol_cost * 4)
                    continue
                if isinstance(result, str) and result == MARKER_RETRY:
                    result = RETRY
            if result is not RETRY:
                return result
            # Guarded write rejected: wait a little and retry at the primary.
            self.stats.guard_retries += 1
            proc.hold(self.cost_model.cpu.protocol_cost * 4)

    def _migrated_result(self, obj_id: int, wid) -> Any:
        """Route a primary write bounced by a concurrent mechanism switch.

        The commit record is the authority on whether an earlier issue of
        this write already committed under the primary regime (its reply
        may have died with the primary).  Re-routing a committed write to
        the broadcast path would apply it a second time — broadcast writes
        carry no ids — so return the recorded result instead.
        """
        committed = self._last_committed.get(obj_id)
        if committed is not None:
            duplicate, recorded = self._lookup_applied(committed[2], wid)
            if duplicate:
                self.stats.deduplicated_writes += 1
                return recorded
        return MIGRATED

    def _commit_primary_write(self, proc: "SimProcess", obj_id: int, op,
                              args, kwargs, wid) -> Any:
        """Dedup-checked protocol write at the primary, plus commit record.

        Runs on the primary node (client or RPC server thread).  A write id
        already present in the primary's applied table is a client re-issue
        of a write that committed (e.g. the reply was lost to a crash): the
        recorded result is returned without touching the object again.
        """
        primary = self.directory.primary_of(obj_id)
        if self._txn_layer is not None:
            # A transaction pinning this seat holds ordinary writes here
            # (its own sub-operations pass); serialisation order at the
            # primary is unchanged, the writes just park first.
            self._txn_layer.seat_gate(proc, obj_id, wid)
        table = self._applied_table(primary, obj_id)
        duplicate, recorded = self._lookup_applied(table, wid)
        if duplicate:
            self.stats.deduplicated_writes += 1
            return recorded
        key = (primary, obj_id)
        self._inflight_writes[key] = self._inflight_writes.get(key, 0) + 1
        try:
            result = self._protocol_for_obj(obj_id).primary_write(
                proc, obj_id, op, args, kwargs, wid=wid)
        finally:
            remaining = self._inflight_writes.get(key, 0) - 1
            if remaining > 0:
                self._inflight_writes[key] = remaining
            else:
                self._inflight_writes.pop(key, None)
        if result is not RETRY:
            if wid is not None:
                table[wid[0]] = (wid[1], result)
            # The record is refreshed at EVERY commit point, like the
            # write-ahead commit record it models: deferring it while live
            # secondaries exist would lose committed writes when the
            # primary and the last secondary die together (the takeover
            # would restore a stale snapshot).  The O(state) copy per
            # commit is the price of that durability.
            self._commit_record(obj_id, primary)
        return result

    def _serve_write(self, nid: int, request: RpcRequest) -> Any:
        payload = request.payload
        obj_id = payload["obj_id"]
        handle = self.handle(obj_id)
        op = handle.spec_class.operation_def(payload["op_name"])
        proc = self.sim.current_process
        if proc is None:
            raise RtsError("write handler must run in a blocking-capable context")
        if self._mechanism_of(obj_id) != MECHANISM_PRIMARY:
            return MARKER_MIGRATED
        self._await_switch(proc, nid, obj_id)
        if self._mechanism_of(obj_id) != MECHANISM_PRIMARY:
            return MARKER_MIGRATED
        if obj_id in self._frozen:
            return MARKER_MIGRATING
        if self.directory.primary_of(obj_id) != nid:
            # Stale primary: the object migrated here and away again.
            return MARKER_MIGRATING
        result = self._commit_primary_write(proc, obj_id, op, payload["args"],
                                            payload["kwargs"],
                                            payload.get("wid"))
        if result is RETRY:
            return MARKER_RETRY
        return result

    # -- dynamic replication --------------------------------------------- #

    def _apply_replication_policy(self, proc: "SimProcess", nid: int,
                                  handle: ObjectHandle) -> None:
        manager = self.managers[nid]
        has_copy = manager.has_valid_copy(handle.obj_id)
        is_primary = self.directory.primary_of(handle.obj_id) == nid
        if self.replication.should_fetch_copy(handle.obj_id, nid, has_copy):
            self._fetch_copy(proc, nid, handle)
        elif self.replication.should_drop_copy(handle.obj_id, nid, has_copy,
                                               is_primary):
            manager.discard(handle.obj_id)
            self.directory.remove_copy(handle.obj_id, nid)
            self.stats.replicas_dropped += 1
            primary = self.directory.primary_of(handle.obj_id)
            self.send_protocol_message(nid, primary, KIND_DROP,
                                       {"obj_id": handle.obj_id, "node": nid})

    def _fetch_copy(self, proc: "SimProcess", nid: int, handle: ObjectHandle) -> None:
        """Fetch the object state from the primary and install a local copy."""
        primary = self.directory.primary_of(handle.obj_id)
        if primary == nid or not self.cluster.node(primary).alive:
            return
        try:
            reply = self.cluster.rpc_for(nid).call(
                proc, primary, PORT_FETCH,
                payload={"obj_id": handle.obj_id, "requester": nid},
                size=24,
            )
        except RpcPeerDeadError:
            # The primary died under the fetch; skip it — the next access
            # retries against whatever primary the takeover installs.
            return
        if isinstance(reply, str) and reply == MARKER_MIGRATED:
            return
        state, version, applied = reply
        if self._mechanism_of(handle.obj_id) != MECHANISM_PRIMARY:
            return
        instance = handle.spec_class()
        instance.unmarshal_state(state)
        manager = self.managers[nid]
        manager.discard(handle.obj_id)
        manager.install(handle.obj_id, handle.name, instance, version=version)
        self._applied[(nid, handle.obj_id)] = dict(applied)
        self.stats.replicas_created += 1

    def _serve_fetch(self, nid: int, request: RpcRequest):
        payload = request.payload
        obj_id = payload["obj_id"]
        proc = self.sim.current_process
        if self._mechanism_of(obj_id) != MECHANISM_PRIMARY:
            return MARKER_MIGRATED
        if proc is not None:
            self._await_switch(proc, nid, obj_id)
        if self._mechanism_of(obj_id) != MECHANISM_PRIMARY:
            return MARKER_MIGRATED
        manager = self.managers[nid]
        replica = manager.get(obj_id)
        # Do not hand out state in the middle of a write's critical section.
        while replica.locked and proc is not None:
            replica.on_next_change(lambda p=proc: p.wake())
            proc.suspend()
        self.directory.add_copy(obj_id, payload["requester"])
        state = replica.instance.marshal_state()
        # The applied-write table travels with the copy (bounded at one
        # entry per client), so a secondary promoted after a primary crash
        # can recognise re-issued writes; its bytes ride the reply.
        applied = dict(self._applied_table(nid, obj_id))
        return RpcReply(payload=(state, replica.version, applied),
                        size=(replica.instance.state_size() + 16
                              + estimate_size(applied)))

    # -- exactly-once bookkeeping (write ids + commit record) ------------- #

    def _applied_table(self, node_id: int, obj_id: int) -> Dict:
        """The applied-write-id table of one machine's copy of one object."""
        return self._applied.setdefault((node_id, obj_id), {})

    def record_applied(self, node_id: int, obj_id: int, wid, result) -> None:
        """Note that ``node_id``'s copy has applied write ``wid``.

        Called by the update protocol's secondary side, so a secondary
        promoted by a takeover can recognise the client re-issue of a write
        that was in flight when the primary died.  Only the newest id per
        origin client is kept (FIFO clients have one write outstanding).
        """
        if wid is None or result is RETRY:
            return
        origin, seq = wid
        self._applied_table(node_id, obj_id)[origin] = (seq, result)

    @staticmethod
    def _lookup_applied(table: Dict, wid) -> Tuple[bool, Any]:
        """Was ``wid`` the last write this copy applied for its origin?"""
        if wid is None:
            return False, None
        entry = table.get(wid[0])
        if entry is not None and entry[0] == wid[1]:
            return True, entry[1]
        return False, None

    def _commit_record(self, obj_id: int, primary: Optional[int] = None) -> None:
        """Refresh the object's last-committed record from its primary copy.

        The record — state snapshot, version, and the applied-write table —
        is what a takeover falls back to when no surviving machine holds a
        valid copy (a primary-invalidate object dies with every write's
        sole copy).  It models the commit record the primary writes at the
        protocol's commit point; like the directory it is bookkeeping and
        charges no communication.
        """
        if primary is None:
            primary = self.directory.primary_of(obj_id)
        manager = self.managers[primary]
        if not manager.has_valid_copy(obj_id):
            return
        replica = manager.get(obj_id)
        self._last_committed[obj_id] = (
            replica.instance.marshal_state(), replica.version,
            self._applied_table(primary, obj_id))

    # -- protocol plumbing used by the coherence strategies --------------- #

    def new_transaction(self, expected_acks: int,
                        destinations: Optional[List[int]] = None) -> int:
        txn_id = next(self._txn_ids)
        self._transactions[txn_id] = _Transaction(
            remaining=expected_acks,
            destinations=set(destinations or ()))
        return txn_id

    def await_acks(self, proc: "SimProcess", txn_id: int) -> None:
        txn = self._transactions[txn_id]
        if txn.remaining > 0:
            txn.proc = proc
            proc.suspend()
        del self._transactions[txn_id]

    def send_ack(self, from_node: int, txn_id: int) -> None:
        primary_node = self._ack_destinations.get(txn_id)
        if primary_node is None:
            return
        self.send_protocol_message(from_node, primary_node, KIND_ACK,
                                   {"txn_id": txn_id, "node": from_node})

    def send_protocol_message(self, src: int, dst: int, kind: str,
                              payload: Dict[str, Any]) -> None:
        if kind in (KIND_UPDATE,):
            size = 32 + estimate_size(payload.get("args", ())) + estimate_size(
                payload.get("kwargs", {}))
        else:
            size = 32
        if kind in (KIND_INVALIDATE, KIND_UPDATE, KIND_UNLOCK):
            # Stamp coherence traffic with the regime it was issued under,
            # so a message that was in flight when a takeover (or switch)
            # superseded its regime is dropped identically at every member.
            payload.setdefault(
                "epoch", self._epoch_by_obj.get(payload["obj_id"], 0))
        node = self.cluster.node(src)
        msg = node.make_message(dst, kind, payload=payload, size=size)
        node.send(msg)
        if kind in (KIND_INVALIDATE, KIND_UPDATE):
            self._ack_destinations[payload["txn_id"]] = src

    # -- incoming protocol messages --------------------------------------- #

    def _defer_if_lagging(self, nid: int, kind: str,
                          payload: Dict[str, Any]) -> bool:
        """Queue a coherence message that raced ahead of a policy switch.

        A member that has not yet delivered the switch establishing the
        current primary regime must not apply (or discard state for)
        coherence traffic from that regime: the totally-ordered writes the
        switch is sequenced after may still be undelivered locally.
        """
        obj_id = payload["obj_id"]
        key = (nid, obj_id)
        if self._node_epoch.get(key, 0) >= self._epoch_by_obj.get(obj_id, 0):
            return False
        self._deferred.setdefault(key, []).append((kind, payload))
        # The deferred message is out-of-band evidence this member missed
        # sequenced traffic; if the group has gone quiet (every later write
        # moved off the broadcast path), nothing in-band will ever reveal
        # the gap — so probe for it.
        self._arm_lag_probe(nid, obj_id)
        return True

    #: Bounded re-probe budget for a member lagging behind a switch it may
    #: have lost to packet loss (see _arm_lag_probe).
    LAG_PROBE_LIMIT = 12

    def _arm_lag_probe(self, node_id: int, obj_id: int,
                       attempt: int = 0) -> None:
        """Schedule a recovery probe for a member lagging the object's epoch.

        A member can lag legitimately (the switch is still being sequenced
        or in flight), but it can also have *lost* the switch to packet
        loss at a moment when all later traffic left the broadcast path —
        e.g. the migration that very switch performed moved the object's
        writes onto the primary-copy RPC path, so no further broadcast
        will ever reveal the gap and the deferred coherence message would
        wedge its sender forever.  The probe fires after the group's retry
        timeout, asks the member's groups for the first unseen seqno
        (answered from any member's retained history — the sequencer may
        be dead), and re-arms itself a bounded number of times while the
        member still lags.
        """
        key = (node_id, obj_id)
        if key in self._lag_probes:
            return
        node = self.cluster.node(node_id)
        if not node.alive or self.router is None:
            return
        delay = self.router.group_for(0).retry_timeout
        self._lag_probes[key] = node.kernel.set_timer(
            delay, self._fire_lag_probe, node_id, obj_id, attempt)

    def _fire_lag_probe(self, node_id: int, obj_id: int,
                        attempt: int) -> None:
        key = (node_id, obj_id)
        self._lag_probes.pop(key, None)
        if (self._node_epoch.get(key, 0)
                >= self._epoch_by_obj.get(obj_id, 0)):
            return  # caught up; the deferred messages already flushed
        if attempt >= self.LAG_PROBE_LIMIT:
            return  # give up: behave as before the probe existed
        # The switch may ride any of the groups (shard moves relocate an
        # object's order at run time), so probe them all; a probe for a
        # seqno that does not exist is simply never answered.
        for group in self.router.groups:
            group.member(node_id).probe_gap()
        self._arm_lag_probe(node_id, obj_id, attempt + 1)

    def _stale_regime(self, nid: int, payload: Dict[str, Any]) -> bool:
        """Was this coherence message issued under a superseded regime?

        A member that already delivered a later switch (a policy change, a
        seat relocation, or a crash takeover) must not apply coherence
        traffic from before it: the switch snapshot is the agreed state, and
        an in-flight update from the dead regime would diverge it.  Every
        member makes the same epoch comparison, so the drop is identical
        everywhere; senders still waiting on an acknowledgement are acked.
        """
        return (payload.get("epoch", 0)
                < self._node_epoch.get((nid, payload["obj_id"]), 0))

    def _drop_stale(self, nid: int, payload: Dict[str, Any]) -> None:
        if "txn_id" in payload:
            # Acknowledge so a (possibly still live) old primary waiting on
            # the fan-out is not left hanging.
            self.send_ack(nid, payload["txn_id"])

    def _flush_deferred(self, node_id: int, obj_id: int) -> None:
        handlers = {
            "invalidate": self._on_invalidate,
            "update": self._on_update,
            "unlock": self._on_unlock,
        }
        for kind, payload in self._deferred.pop((node_id, obj_id), []):
            if self._stale_regime(node_id, payload):
                # The switch that released this message also superseded the
                # regime that sent it (e.g. a takeover landed on top of the
                # crash that raced this update): drop, do not apply.
                self._drop_stale(node_id, payload)
            elif self._mechanism_of(obj_id) == MECHANISM_PRIMARY:
                handlers[kind](node_id, payload)
            elif "txn_id" in payload:
                # The regime that sent this message is gone; acknowledge so
                # its primary (if still waiting) is not left hanging.
                self.send_ack(node_id, payload["txn_id"])

    def _on_invalidate(self, nid: int, payload: Dict[str, Any]) -> None:
        if self._stale_regime(nid, payload):
            self._drop_stale(nid, payload)
            return
        if self._defer_if_lagging(nid, "invalidate", payload):
            return
        self.protocols["invalidation"].handle_invalidate(nid, payload)

    def _on_update(self, nid: int, payload: Dict[str, Any]) -> None:
        if self._stale_regime(nid, payload):
            self._drop_stale(nid, payload)
            return
        if self._defer_if_lagging(nid, "update", payload):
            return
        self.protocols["update"].handle_update(nid, payload)

    def _on_unlock(self, nid: int, payload: Dict[str, Any]) -> None:
        if self._stale_regime(nid, payload):
            return
        if self._defer_if_lagging(nid, "unlock", payload):
            return
        self.protocols["update"].handle_unlock(nid, payload)

    def _on_ack(self, nid: int, payload: Dict[str, Any]) -> None:
        txn = self._transactions.get(payload["txn_id"])
        if txn is None:
            return
        if txn.destinations:
            # An ack only counts while its sender still owes one: a node
            # that crashed with its ack in flight already had its debt
            # released by the crash listener, and double-counting it would
            # complete the fan-out before the live secondaries applied.
            if payload.get("node") not in txn.destinations:
                return
            txn.destinations.discard(payload.get("node"))
        txn.remaining -= 1
        if txn.remaining <= 0 and txn.proc is not None:
            txn.proc.wake()

    def _on_node_crash(self, crashed: int) -> None:
        """React to a machine crash: release debts, prune copies, recover.

        Three duties, in order: (a) release every acknowledgement the dead
        machine will never send, so primaries mid-fan-out complete on the
        survivors; (b) prune its copies from the directory and discard its
        primary-managed replicas (their state died with the machine, and a
        later :meth:`Node.recover` must never serve them); (c) start a
        primary takeover for every object whose primary seat just died.
        """
        for txn in list(self._transactions.values()):
            if crashed in txn.destinations:
                txn.destinations.discard(crashed)
                txn.remaining -= 1
                if txn.remaining <= 0 and txn.proc is not None:
                    txn.proc.wake()
        # Its copies die with it: prune the directory so later fan-outs and
        # migrations never count on the dead member.
        for obj_id in self.directory.objects():
            entry = self.directory.entry(obj_id)
            if crashed != entry.primary_node:
                entry.copyset.discard(crashed)
        dead_manager = self.managers[crashed]
        for obj_id, policy in list(self._policy_by_obj.items()):
            if (FIXED_POLICIES[policy].mechanism == MECHANISM_PRIMARY
                    and obj_id in dead_manager.replicas):
                dead_manager.discard(obj_id)
        # Disarm the dead member's lag probes: their timers are suppressed
        # by the kernel (dead node), and a stale entry would block
        # re-arming if the node later recovers and lags again.
        for key, timer in list(self._lag_probes.items()):
            if key[0] == crashed:
                self.cluster.node(crashed).kernel.cancel_timer(timer)
                self._lag_probes.pop(key, None)
        self._schedule_recoveries()
        if self._txn_layer is not None:
            # After the runtime's own recovery: orphaned transactions (the
            # dead machine coordinated them) are driven to completion by
            # the lowest live node under presumed abort.
            self._txn_layer.on_node_crash(crashed)

    def _on_drop(self, nid: int, payload: Dict[str, Any]) -> None:
        # A secondary informs the primary that it discarded its copy; the
        # directory may already reflect this (the secondary updates it
        # directly), so this is a tolerant no-op if so.
        self.directory.entry(payload["obj_id"]).copyset.discard(payload["node"])

    def protocol_for_secondary(self, name: str):
        """Return the protocol object implementing secondary-side handling."""
        try:
            return self.protocols[name]
        except KeyError:
            raise RtsError(f"unknown coherence protocol {name!r}") from None

    # ------------------------------------------------------------------ #
    # Live migration between policies
    # ------------------------------------------------------------------ #

    def migrate(self, proc: "SimProcess", handle: ObjectHandle,
                policy: Any, primary: Optional[int] = None) -> bool:
        """Move ``handle`` under ``policy`` while the cluster runs.

        ``primary`` pins the primary copy onto a specific (live,
        copy-holding) node when migrating to primary-copy management; by
        default the node with the most observed writes is chosen.  Note that
        primary-copy management has no primary-failure recovery (as in the
        paper), so callers racing node crashes should place the primary on a
        node expected to survive.

        Returns ``True`` when a migration was performed, ``False`` when the
        object already runs under the requested policy or another migration
        of it is still being delivered.  Sequential consistency holds across
        the switch (see the module docstring for the argument).
        """
        target = management_policy(policy, default=self.default_policy)
        if isinstance(target, AdaptivePolicy):
            raise ConfigurationError(
                "migrate() takes a fixed policy; attach adaptive control at "
                "create_object(policy='adaptive') time")
        obj_id = handle.obj_id
        current = self._policy_by_obj[obj_id]
        if target.name == current:
            return False
        # Two guards: one for a migrate() call still in its (possibly
        # blocking) pre-switch phase, one for a broadcast switch still being
        # delivered at some member.
        if obj_id in self._migrate_in_progress:
            return False
        if obj_id in self._migrating and not self._migration_settled(obj_id):
            return False
        if self._catching_up:
            # A recovered member's rejoin seed is being computed against
            # the current policies and epochs; switching under it could
            # strand the member on the wrong side of the switch.  Abort
            # cleanly — callers retry once the catch-up completes.
            return False
        if self._txn_layer is not None and self._txn_layer.pins(obj_id):
            # A live transaction names the object as a participant; its
            # prepares and seat locks assume a stable mechanism.  Abort
            # cleanly — callers retry once the transaction completes.
            return False
        self._migrating.discard(obj_id)
        current_mechanism = self._mechanism_of(obj_id)
        self._migrate_in_progress.add(obj_id)
        try:
            if target.mechanism == current_mechanism == MECHANISM_PRIMARY:
                # Same mechanism, different coherence protocol: pure
                # bookkeeping, no broadcast needed (so this works on
                # point-to-point-only networks too).  Secondary-side
                # handling routes by message kind, so writes in flight
                # under the old protocol complete untouched.
                self._policy_by_obj[obj_id] = target.name
                self.stats.migrations += 1
                self.migrations.append(MigrationRecord(
                    obj_id=obj_id, name=handle.name, target=target.name,
                    epoch=self._epoch_by_obj.get(obj_id, 0),
                    primary_node=self.directory.primary_of(obj_id)))
                return True
            # Mechanism changes ride the object's shard broadcast and may
            # land it under primary-copy management: both wirings needed.
            self._ensure_router()
            self._ensure_primary_services()
            self._migrating.add(obj_id)
            if target.mechanism == MECHANISM_PRIMARY:
                self._migrate_to_primary(proc, handle, target.name,
                                         primary_override=primary)
            elif not self._migrate_to_broadcast(proc, handle):
                self._migrating.discard(obj_id)
                return False
            return True
        except RpcPeerDeadError:
            # The primary died while this migration was freezing it: abort
            # cleanly and let the crash takeover recover the object under
            # its current policy.
            self._migrating.discard(obj_id)
            return False
        finally:
            self._migrate_in_progress.discard(obj_id)

    def _migration_settled(self, obj_id: int) -> bool:
        """Has every live member delivered the object's latest switch?

        A shard move broadcasts in two groups; it settles only when the
        source drain *and* the destination arrival landed at every live
        member, so back-to-back moves never leave two epochs in flight.
        """
        epoch = self._epoch_by_obj.get(obj_id, 0)
        dest_epoch = self._dest_epoch_required.get(obj_id, 0)
        settled = all(
            self._node_epoch.get((node.node_id, obj_id), 0) >= epoch
            and self._dest_epoch.get((node.node_id, obj_id), 0) >= dest_epoch
            for node in self.cluster.nodes if node.alive)
        if settled:
            self._migrating.discard(obj_id)
        return settled

    def _choose_primary(self, obj_id: int, copyset: List[int]) -> int:
        """The copy-holding live node with the most observed writes."""
        decider = self.replication.decider

        def writes_on(nid: int) -> int:
            return decider.stats_for(obj_id, nid).total_writes

        best = max(copyset, key=lambda nid: (writes_on(nid), -nid))
        if writes_on(best) == 0:
            creator = self._created_on.get(obj_id)
            if creator in copyset:
                return creator
        return best

    def _migrate_to_primary(self, proc: "SimProcess", handle: ObjectHandle,
                            target: str,
                            primary_override: Optional[int] = None) -> None:
        """broadcast -> primary: flip routing, then switch in total order."""
        obj_id = handle.obj_id
        node = self._node_of(proc)
        copyset = sorted(
            n.node_id for n in self.cluster.nodes
            if n.alive and self.managers[n.node_id].has_valid_copy(obj_id))
        if not copyset:
            raise RtsError(f"no live replica of object {obj_id} to migrate")
        if primary_override is not None:
            if primary_override not in copyset:
                raise RtsError(
                    f"node {primary_override} holds no live replica of "
                    f"object {obj_id}; cannot become its primary")
            primary = primary_override
        else:
            primary = self._choose_primary(obj_id, copyset)
        epoch = self._epoch_by_obj.get(obj_id, 0) + 1
        # Flip the global routing first: new writes head for the primary,
        # where they wait until it has delivered the switch below.
        self._epoch_by_obj[obj_id] = epoch
        self._policy_by_obj[obj_id] = target
        self._register_primary(obj_id, primary, copyset)
        self.stats.migrations += 1
        self.stats.migrations_to_primary += 1
        self.migrations.append(MigrationRecord(
            obj_id=obj_id, name=handle.name, target=target, epoch=epoch,
            primary_node=primary))
        self._commit_record(obj_id, primary)
        self._broadcast_switch(proc, node, handle,
                               ("switch", obj_id, target, primary, None, 0,
                                epoch, None, None))

    def _migrate_to_broadcast(self, proc: "SimProcess",
                              handle: ObjectHandle) -> bool:
        """primary -> broadcast: freeze, snapshot, switch carrying the state."""
        obj_id = handle.obj_id
        node = self._node_of(proc)
        primary = self.directory.primary_of(obj_id)
        epoch_before = self._epoch_by_obj.get(obj_id, 0)
        if node.node_id == primary:
            state, version = self._freeze_and_snapshot(proc, primary, obj_id)
        else:
            state, version = self.cluster.rpc_for(node.node_id).call(
                proc, primary, PORT_MIGRATE, payload={"obj_id": obj_id},
                size=24)
        if self._epoch_by_obj.get(obj_id, 0) != epoch_before:
            # The primary died right after serving the freeze and a crash
            # takeover already switched the object to a successor, which
            # may have accepted writes this snapshot predates: broadcasting
            # it would erase them (its younger epoch wins at every member).
            # Abort; the object stays under the recovered regime.
            self._frozen.discard(obj_id)
            return False
        epoch = epoch_before + 1
        self._epoch_by_obj[obj_id] = epoch
        self._policy_by_obj[obj_id] = "broadcast"
        # New writes now route through the broadcast; ones sequenced before
        # the switch below are dropped by the epoch check and re-issued.
        self._frozen.discard(obj_id)
        self.stats.migrations += 1
        self.stats.migrations_to_broadcast += 1
        self.migrations.append(MigrationRecord(
            obj_id=obj_id, name=handle.name, target="broadcast", epoch=epoch,
            primary_node=None))
        self._broadcast_switch(proc, node, handle,
                               ("switch", obj_id, "broadcast", -1, state,
                                version, epoch, None, None),
                               size=32 + estimate_size(state))
        return True

    def _freeze_and_snapshot(self, proc: "SimProcess", primary: int,
                             obj_id: int) -> Tuple[Any, int]:
        """Freeze the primary, drain in-flight writes, snapshot state.

        The freeze comes first so writes arriving during the drain bounce
        (``MARKER_MIGRATING``) instead of starting new coherence rounds.
        The drain must wait on the in-flight commit *count*, not just the
        replica lock: concurrent two-phase rounds share one lock bit, so
        the first round's unlock can expose an unlocked replica while a
        second round is still awaiting acks — snapshotting there would
        miss a write the client is told committed.
        """
        self._await_switch(proc, primary, obj_id)
        self._frozen.add(obj_id)
        replica = self.managers[primary].get(obj_id)
        while replica.locked or self._inflight_writes.get((primary, obj_id)):
            if replica.locked:
                replica.on_next_change(lambda p=proc: p.wake())
                proc.suspend()
            else:
                proc.hold(self.cost_model.cpu.protocol_cost)
        return replica.instance.marshal_state(), replica.version

    def _serve_migrate(self, nid: int, request: RpcRequest) -> RpcReply:
        proc = self.sim.current_process
        if proc is None:
            raise RtsError("migration freeze must run in a blocking context")
        obj_id = request.payload["obj_id"]
        state, version = self._freeze_and_snapshot(proc, nid, obj_id)
        size = self.managers[nid].get(obj_id).instance.state_size() + 16
        return RpcReply(payload=(state, version), size=size)

    def _register_primary(self, obj_id: int, primary: int,
                          copyset: List[int]) -> None:
        try:
            entry = self.directory.entry(obj_id)
        except RtsError:
            entry = self.directory.register(obj_id, primary)
        entry.primary_node = primary
        entry.copyset = set(copyset) | {primary}

    def _broadcast_switch(self, proc: "SimProcess", node: "Node",
                          handle: ObjectHandle, payload: Tuple[Any, ...],
                          size: int = 64, shard: Optional[int] = None) -> None:
        """Send the switch through the object's shard and await local delivery.

        ``shard`` overrides the route for cross-group moves, whose drain
        switch must ride the *source* group after the router already points
        at the destination.
        """
        if shard is None:
            shard = self.shard_of(handle)
        self.router.shard_stats[shard].note_migration()
        invocation_id = next(self._invocation_ids)
        self._pending[invocation_id] = _PendingWrite(proc=proc)
        proc.advance(self.cost_model.cpu.operation_dispatch_cost)
        proc.absorb_overhead(node.drain_overhead())
        proc.flush()
        self.router.group_for(shard).member(node.node_id).broadcast(
            payload + (invocation_id,), size=size)
        proc.suspend()
        self._pending.pop(invocation_id, None)
        proc.absorb_overhead(node.drain_overhead())

    def _apply_switch(self, node_id: int, payload: Tuple[Any, ...],
                      origin: int) -> None:
        """One member's totally-ordered switch point for one object.

        ``scope`` narrows a snapshot-carrying switch to the listed members
        (primary relocation refreshes only the copy-holding machines); a
        ``None`` scope is the classic primary -> broadcast transfer that
        installs a replica everywhere.
        """
        (_, obj_id, target, primary_node, state, version, epoch, scope,
         table, invocation_id) = payload
        key = (node_id, obj_id)
        if self._superseded_switch(node_id, obj_id, epoch, origin,
                                   invocation_id):
            return
        self._node_epoch[key] = epoch
        self.cluster.node(node_id).charge_overhead(
            self.cost_model.cpu.operation_dispatch_cost)
        if state is not None and (scope is None or node_id in scope):
            self._install_member_copy(node_id, obj_id, primary_node, state,
                                      version, table)
        elif state is None:
            # broadcast -> primary: the (identical) replicas become the
            # primary and secondary copies; no state moves, and the fresh
            # primary regime starts with an empty applied-write table.
            replica = self.managers[node_id].replicas.get(obj_id)
            if replica is not None:
                replica.is_primary = node_id == primary_node
            self._applied[key] = {}
        if target == "broadcast":
            # Broadcast management does not use write ids at all.
            self._applied.pop(key, None)
        self._finish_switch_delivery(node_id, obj_id, epoch, origin,
                                     invocation_id)

    def _superseded_switch(self, node_id: int, obj_id: int, epoch: int,
                           origin: int, invocation_id: int) -> bool:
        """Ignore a switch whose epoch a later switch already overtook here.

        A crash takeover can outrun a relocation (or a shard drain) at some
        member; the overtaken switch must not regress the member's state or
        epoch, but its initiator is still woken and settlement re-checked.
        """
        if epoch > self._node_epoch.get((node_id, obj_id), 0):
            return False
        if origin == node_id:
            self._resolve(invocation_id, None)
        self._migration_settled(obj_id)
        return True

    def _install_member_copy(self, node_id: int, obj_id: int,
                             primary_node: int, state: Any, version: int,
                             table: Optional[Dict]) -> None:
        """Install a switch-carried snapshot (and dedup table) on a member.

        Nodes holding a (secondary or primary) copy are updated in place so
        processes already waiting on the replica keep their hooks.
        """
        manager = self.managers[node_id]
        replica = manager.replicas.get(obj_id)
        if replica is not None:
            replica.instance.unmarshal_state(state)
            replica.version = version
            replica.valid = True
            replica.is_primary = node_id == primary_node
            replica.locked = False
            replica.notify_changed()
        else:
            instance = self.handle(obj_id).spec_class()
            instance.unmarshal_state(state)
            manager.install(obj_id, self.handle(obj_id).name, instance,
                            version=version,
                            is_primary=node_id == primary_node)
            self.stats.replicas_created += 1
        self._applied[(node_id, obj_id)] = dict(table or {})
        self._wake_replica_waiters(node_id, obj_id)

    def _finish_switch_delivery(self, node_id: int, obj_id: int, epoch: int,
                                origin: int, invocation_id: int) -> None:
        """Common tail of every switch delivery at one member.

        Deferred new-epoch writes apply first (on the freshly established
        state), then coherence traffic that raced ahead of the switch
        (stale-regime messages are dropped inside ``_flush_deferred``).
        This member's own still-pending pre-switch writes are released for
        re-issue right away: deliveries arrive in sequence order, so a
        write of this object still pending here was not sequenced before
        the switch and is guaranteed to be dropped identically everywhere.
        """
        self._flush_future_writes(node_id, obj_id)
        self._flush_deferred(node_id, obj_id)
        if self._txn_layer is not None:
            # A transaction record that outran this member's epoch sits
            # under a barrier lock; the switch it awaited just landed.
            self._txn_layer.on_switch_delivered(node_id, obj_id)
        for pending_id, pending in list(self._pending.items()):
            if (pending.obj_id == obj_id and pending.origin == node_id
                    and pending.epoch < epoch):
                self._resolve(pending_id, MIGRATED)
        for waiter in self._switch_waiters.pop((node_id, obj_id), []):
            waiter.wake()
        if origin == node_id:
            self._resolve(invocation_id, None)
        self._migration_settled(obj_id)

    def _await_switch(self, proc: "SimProcess", node_id: int, obj_id: int) -> None:
        """Block until ``node_id`` has delivered the object's latest switch."""
        while (self._node_epoch.get((node_id, obj_id), 0)
               < self._epoch_by_obj.get(obj_id, 0)):
            key = (node_id, obj_id)
            self._switch_waiters.setdefault(key, []).append(proc)
            proc.suspend()

    # ------------------------------------------------------------------ #
    # Cross-group rebalancing: shard moves, live growth, primary seats
    # ------------------------------------------------------------------ #

    def move_shard(self, proc: "SimProcess", handle: ObjectHandle,
                   new_shard: int) -> bool:
        """Move ``handle`` onto broadcast group ``new_shard`` while it runs.

        For a broadcast-managed object this is the drain-and-switch barrier
        described in the module docstring: the route flips first (new writes
        head for the destination order under a fresh epoch), a
        ``shard-switch`` drains the source order, and a ``shard-arrive``
        lands in the destination order; stale writes are dropped identically
        everywhere and re-issued by their origin, so no write is lost,
        duplicated, or reordered within its client's FIFO.  A primary-copy
        object carries no ordered broadcast traffic, so its move is pure
        routing bookkeeping (the next switch simply rides the new group).

        Returns ``True`` when a move was performed, ``False`` when the
        object already lives on ``new_shard`` or another switch of it is
        still in flight.
        """
        router = self._ensure_router()
        obj_id = handle.obj_id
        if not 0 <= new_shard < router.num_shards:
            raise ConfigurationError(
                f"cannot move {handle.name!r} to shard {new_shard}: only "
                f"{router.num_shards} shards exist")
        src = self.shard_of(handle)
        if src == new_shard:
            return False
        if obj_id in self._migrate_in_progress:
            return False
        if obj_id in self._migrating and not self._migration_settled(obj_id):
            return False
        if self._catching_up:
            # A rejoin seed is captured against the current shard routes;
            # moving the object between orders under it could lose the
            # member the object entirely.  Abort cleanly.
            return False
        if self._txn_layer is not None and self._txn_layer.pins(obj_id):
            # A live transaction's prepares assume the object's shard (its
            # decision order may be this one).  Abort cleanly.
            return False
        self._migrating.discard(obj_id)
        self._migrate_in_progress.add(obj_id)
        try:
            if self._mechanism_of(obj_id) != MECHANISM_BROADCAST:
                router.move(obj_id, new_shard)
                self._last_moved_at[obj_id] = self.sim.now
                self.stats.shard_moves += 1
                self.shard_moves.append(ShardMoveRecord(
                    obj_id=obj_id, name=handle.name, src=src, dst=new_shard,
                    epoch=self._epoch_by_obj.get(obj_id, 0)))
                return True
            node = self._node_of(proc)
            self._migrating.add(obj_id)
            epoch = self._epoch_by_obj.get(obj_id, 0) + 1
            self._epoch_by_obj[obj_id] = epoch
            self._dest_epoch_required[obj_id] = epoch
            router.move(obj_id, new_shard)
            self._last_moved_at[obj_id] = self.sim.now
            self.stats.shard_moves += 1
            self.shard_moves.append(ShardMoveRecord(
                obj_id=obj_id, name=handle.name, src=src, dst=new_shard,
                epoch=epoch))
            # Drain: every source-group member retires the old route at the
            # same position of the source total order.
            self._broadcast_switch(
                proc, node, handle,
                ("shard-switch", obj_id, src, new_shard, epoch), shard=src)
            # Arrive: prove the destination group's sequencing path carries
            # the object before reporting the move complete.
            self._broadcast_switch(
                proc, node, handle,
                ("shard-arrive", obj_id, src, new_shard, epoch),
                shard=new_shard)
            return True
        finally:
            self._migrate_in_progress.discard(obj_id)

    def _apply_shard_switch(self, node_id: int, payload: Tuple[Any, ...],
                            origin: int) -> None:
        """One member's drain point in the *source* group's total order."""
        (_, obj_id, src, dst, epoch, invocation_id) = payload
        if self._superseded_switch(node_id, obj_id, epoch, origin,
                                   invocation_id):
            return
        self._node_epoch[(node_id, obj_id)] = epoch
        self.cluster.node(node_id).charge_overhead(
            self.cost_model.cpu.operation_dispatch_cost)
        # Destination-order writes that outran this switch apply now, on
        # the state every pre-switch source write has already reached; our
        # own still-pending stale writes are doomed (they can only be
        # sequenced behind this switch) and are released for re-issue into
        # the destination order inside the common tail.
        self._finish_switch_delivery(node_id, obj_id, epoch, origin,
                                     invocation_id)

    def _apply_shard_arrive(self, node_id: int, payload: Tuple[Any, ...],
                            origin: int) -> None:
        """One member's arrival marker in the *destination* group's order."""
        (_, obj_id, src, dst, epoch, invocation_id) = payload
        key = (node_id, obj_id)
        node = self.cluster.node(node_id)
        node.charge_overhead(self.cost_model.cpu.operation_dispatch_cost)
        if epoch > self._dest_epoch.get(key, 0):
            self._dest_epoch[key] = epoch
        if origin == node_id:
            self._resolve(invocation_id, None)
        self._migration_settled(obj_id)

    def _heaviest_writer(self, obj_id: int) -> Optional[int]:
        """The live node with the most observed writes to ``obj_id``."""
        decider = self.replication.decider
        live = [node.node_id for node in self.cluster.nodes if node.alive]
        if not live:
            return None
        best = max(live, key=lambda nid: (
            decider.stats_for(obj_id, nid).total_writes, -nid))
        if decider.stats_for(obj_id, best).total_writes == 0:
            return None
        return best

    def relocate_primary(self, proc: "SimProcess", handle: ObjectHandle,
                         target: Optional[int] = None) -> bool:
        """Move a primary-copy object's primary seat to ``target``.

        ``target`` defaults to the object's heaviest writer (per the
        dynamic-replication statistics), turning remote-write RPC streams
        into local writes.  The relocation reuses the migration machinery:
        the object is frozen at the old primary (in-flight coherence writes
        drain first), its snapshot rides a totally-ordered switch scoped to
        the copy-holding members plus the target, and the new primary
        refuses writes until it has delivered that switch — so every write
        lands exactly once, on exactly one primary.

        Returns ``True`` when the seat moved, ``False`` when the target
        already holds it (or no traffic suggests a better seat).
        """
        obj_id = handle.obj_id
        if self._mechanism_of(obj_id) != MECHANISM_PRIMARY:
            raise RtsError(
                f"{handle.name!r} is broadcast-managed; relocate_primary "
                "applies to primary-copy objects (use move_shard instead)")
        if target is None:
            target = self._heaviest_writer(obj_id)
            if target is None:
                return False
        if not self.cluster.node(target).alive:
            raise RtsError(f"node {target} is crashed and cannot become "
                           f"the primary of {handle.name!r}")
        if target in self._catching_up or target in self._draining:
            # Alive but not (or not staying) a full member: a seat parked
            # there would serve from un-reseeded state or be orphaned the
            # moment the drain retires the machine.  Abort cleanly.
            return False
        if target == self.directory.primary_of(obj_id):
            return False
        if not self.cluster.node(self.directory.primary_of(obj_id)).alive:
            # The seat is already dead; the crash takeover owns the object.
            return False
        if obj_id in self._migrate_in_progress:
            return False
        if obj_id in self._migrating and not self._migration_settled(obj_id):
            return False
        if self._txn_layer is not None and self._txn_layer.pins(obj_id):
            # A transaction holding (or about to take) this seat's lock
            # evaluated its guards against the seat's state.  Abort
            # cleanly — callers retry once the transaction completes.
            return False
        self._migrating.discard(obj_id)
        self._ensure_router()
        self._migrate_in_progress.add(obj_id)
        try:
            node = self._node_of(proc)
            primary = self.directory.primary_of(obj_id)
            epoch_before = self._epoch_by_obj.get(obj_id, 0)
            if node.node_id == primary:
                state, version = self._freeze_and_snapshot(proc, primary,
                                                           obj_id)
            else:
                try:
                    state, version = self.cluster.rpc_for(node.node_id).call(
                        proc, primary, PORT_MIGRATE,
                        payload={"obj_id": obj_id}, size=24)
                except RpcPeerDeadError:
                    # The old primary died mid-freeze: abort cleanly — the
                    # crash takeover recovers the object instead.
                    return False
            if not self.cluster.node(target).alive:
                # The chosen seat died while the snapshot was being taken:
                # abort, unfreeze the (still intact) old primary, and let
                # the bounced writers resume against it.
                self._frozen.discard(obj_id)
                return False
            if self._epoch_by_obj.get(obj_id, 0) != epoch_before:
                # The old primary died right after serving the freeze and a
                # crash takeover already reseated the object: its successor
                # may hold writes this snapshot predates, so broadcasting
                # the snapshot would erase them.  Abort cleanly.
                self._frozen.discard(obj_id)
                return False
            table = dict(self._applied_table(primary, obj_id))
            self._migrating.add(obj_id)
            epoch = epoch_before + 1
            self._epoch_by_obj[obj_id] = epoch
            entry = self.directory.entry(obj_id)
            scope = tuple(sorted(set(entry.copyset) | {primary, target}))
            entry.primary_node = target
            entry.copyset = set(scope)
            self._frozen.discard(obj_id)
            self.stats.primary_relocations += 1
            self.relocations.append((obj_id, primary, target))
            # The relocation snapshot is the committed state as of the seat
            # move; record it so a crash of the new seat before its first
            # commit still recovers the object.
            self._last_committed[obj_id] = (state, version, table)
            self._broadcast_switch(
                proc, node, handle,
                ("switch", obj_id, self._policy_by_obj[obj_id], target,
                 state, version, epoch, scope, table),
                size=32 + estimate_size(state) + estimate_size(table))
            return True
        finally:
            self._migrate_in_progress.discard(obj_id)

    # ------------------------------------------------------------------ #
    # Primary-failure recovery (takeover by a surviving secondary)
    # ------------------------------------------------------------------ #

    def _schedule_recoveries(self) -> None:
        """Start a takeover for every object whose primary seat is dead.

        Runs inside the node-crash listener.  The successor is chosen
        deterministically (freshest surviving copy — highest coherence
        version — ties to the lowest node id; with no valid copy left, the
        lowest live node id restores from the commit record), and the
        takeover itself runs in a thread on the successor: the broadcast
        switch it sends cannot ride the crash listener's event context.
        """
        if not self.cluster.network.supports_broadcast:
            # No total order to carry a takeover switch on this hardware:
            # the object dies with its primary, exactly as in the paper.
            return
        for obj_id in self.directory.objects():
            if self._policy_by_obj.get(obj_id) is None:
                continue
            if self._mechanism_of(obj_id) != MECHANISM_PRIMARY:
                continue
            primary = self.directory.primary_of(obj_id)
            if self.cluster.node(primary).alive:
                continue
            coordinator = self._recovering.get(obj_id)
            if (coordinator is not None
                    and self.cluster.node(coordinator).alive):
                continue  # a live takeover is already on its way
            successor = self._choose_successor(obj_id)
            if successor is None:
                continue  # no live machine (or no record) to recover onto
            self._recovering[obj_id] = successor
            self.cluster.node(successor).kernel.spawn_thread(
                self._recover_primary, obj_id, primary, self.sim.now,
                name=f"takeover:{self.handle(obj_id).name}", daemon=True)

    def _choose_successor(self, obj_id: int) -> Optional[int]:
        """The deterministic takeover winner for one dead-primary object."""
        holders = [
            node.node_id for node in self.cluster.nodes
            if node.alive and self.managers[node.node_id].has_valid_copy(obj_id)
        ]
        if holders:
            return max(holders, key=lambda nid: (
                self.managers[nid].get(obj_id).version, -nid))
        if obj_id not in self._last_committed:
            return None
        live = [node.node_id for node in self.cluster.nodes if node.alive]
        return min(live) if live else None

    def _recover_primary(self, obj_id: int, old_primary: int,
                         crashed_at: float) -> None:
        """Takeover body, running on the successor node.

        Re-validates the situation (another takeover, a relocation or a
        policy migration may have won the race), promotes this node's copy —
        or the last-committed record when no valid copy survived — and
        broadcasts an epoch-stamped ``takeover`` switch through the object's
        shard group.  Total order does the rest: every member installs the
        same state at the same point of the object's write order, writes
        from the dead regime are dropped identically everywhere, and the
        new primary refuses writes until it has delivered its own switch.
        """
        proc = self.sim.current_process
        node = self._node_of(proc)
        try:
            if (self._policy_by_obj.get(obj_id) is None
                    or self._mechanism_of(obj_id) != MECHANISM_PRIMARY):
                return
            if self.cluster.node(self.directory.primary_of(obj_id)).alive:
                return  # superseded: the seat already landed somewhere live
            handle = self.handle(obj_id)
            successor = node.node_id
            manager = self.managers[successor]
            if manager.has_valid_copy(obj_id):
                replica = manager.get(obj_id)
                state = replica.instance.marshal_state()
                version = replica.version
                table = dict(self._applied_table(successor, obj_id))
                from_snapshot = False
            else:
                committed = self._last_committed.get(obj_id)
                if committed is None:
                    return  # nothing to recover from
                state, version, committed_table = committed
                table = dict(committed_table)
                from_snapshot = True
            self._ensure_router()
            epoch = self._epoch_by_obj.get(obj_id, 0) + 1
            self._epoch_by_obj[obj_id] = epoch
            self._migrating.add(obj_id)
            holders = [
                n.node_id for n in self.cluster.nodes
                if n.alive and self.managers[n.node_id].has_valid_copy(obj_id)
            ]
            scope = tuple(sorted(set(holders) | {successor}))
            entry = self.directory.entry(obj_id)
            entry.primary_node = successor
            entry.copyset = set(scope)
            self._frozen.discard(obj_id)
            self.stats.primary_recoveries += 1
            record = RecoveryRecord(
                obj_id=obj_id, name=handle.name, old_primary=old_primary,
                new_primary=successor, epoch=epoch,
                from_snapshot=from_snapshot, crashed_at=crashed_at)
            self.recoveries.append(record)
            # The takeover commits the surviving state: refresh the record
            # so a second crash (even before any new write) recovers it.
            self._last_committed[obj_id] = (state, version, table)
            self._broadcast_switch(
                proc, node, handle,
                ("takeover", obj_id, self._policy_by_obj[obj_id], successor,
                 state, version, table, epoch, scope),
                size=32 + estimate_size(state) + estimate_size(table))
            record.completed_at = self.sim.now
        finally:
            if self._recovering.get(obj_id) == node.node_id:
                self._recovering.pop(obj_id, None)

    def _apply_takeover(self, node_id: int, payload: Tuple[Any, ...],
                        origin: int) -> None:
        """One member's totally-ordered takeover point for one object."""
        (_, obj_id, target, new_primary, state, version, table, epoch,
         scope, invocation_id) = payload
        if self._superseded_switch(node_id, obj_id, epoch, origin,
                                   invocation_id):
            return
        self._node_epoch[(node_id, obj_id)] = epoch
        self.cluster.node(node_id).charge_overhead(
            self.cost_model.cpu.operation_dispatch_cost)
        if node_id in scope:
            self._install_member_copy(node_id, obj_id, new_primary, state,
                                      version, table)
        self._finish_switch_delivery(node_id, obj_id, epoch, origin,
                                     invocation_id)

    def _await_recovery(self, proc: "SimProcess", obj_id: int) -> None:
        """Park a client until the object's primary seat is live again."""
        while (self._mechanism_of(obj_id) == MECHANISM_PRIMARY
               and not self.cluster.node(
                   self.directory.primary_of(obj_id)).alive):
            if not self.cluster.network.supports_broadcast:
                raise RtsError(
                    f"primary of object {obj_id} crashed and this cluster's "
                    f"{self.cluster.network.name!r} network cannot order a "
                    "takeover switch; the object is lost (as in the paper)")
            proc.hold(self.cost_model.cpu.protocol_cost * 4)

    # ------------------------------------------------------------------ #
    # Elasticity: rejoin after recovery, planned drain, live scale-in
    # ------------------------------------------------------------------ #

    def is_caught_up(self, node_id: int) -> bool:
        """Has ``node_id`` completed its rejoin catch-up (or never needed one)?"""
        if node_id in self._catching_up:
            return False
        if self.router is not None:
            for shard in self.router.active_shards():
                if not self.router.group_for(shard).member(node_id).synced:
                    return False
        return True

    def _abort_rejoin(self, crashed: int) -> None:
        """A crash voids any rejoin catch-up in progress for the node.

        Bumping the rejoin epoch makes the running catch-up thread abandon
        itself at its next blocking point and invalidates any seed still in
        flight toward the dead machine, so a *second* recovery starts from
        a clean slate instead of accepting state captured for the first.
        """
        if crashed in self._catching_up:
            self._catching_up.discard(crashed)
            self._rejoin_epoch[crashed] = self._rejoin_epoch.get(crashed, 0) + 1
        for key in [k for k in self._awaiting_seed if k[0] == crashed]:
            self._awaiting_seed.discard(key)
        for key in [k for k in self._seed_buffer if k[0] == crashed]:
            del self._seed_buffer[key]
        # Commits that died mid-flight on the crashed machine must not
        # wedge a later freeze of a recovered or relocated seat.
        for key in [k for k in self._inflight_writes if k[0] == crashed]:
            del self._inflight_writes[key]

    def _on_node_recover(self, recovered: int) -> None:
        """React to a machine recovery: apply the crash's loss, start catch-up.

        Runs synchronously in the recover listener.  The crash's loss of
        RTS state is applied here rather than at crash time (so runs that
        never recover a node behave exactly as before): every replica the
        machine held — both mechanisms — its applied-write tables, epoch
        cursors, deferred traffic and write batchers are gone.  A rejoin
        thread then re-earns membership shard by shard before the member
        serves the cluster again.
        """
        manager = self.managers[recovered]
        for obj_id in list(manager.replicas):
            manager.discard(obj_id)
            self._forget_directory_copy(obj_id, recovered)
        for table in (self._applied, self._future_writes, self._deferred,
                      self._node_epoch, self._dest_epoch):
            for key in [k for k in table if k[0] == recovered]:
                del table[key]
        if self._txn_layer is not None:
            # The member's lock entries and outcome markers died with it;
            # the rejoin seeds re-establish them from a donor.
            self._txn_layer.on_node_recover(recovered)
        kernel = self.cluster.node(recovered).kernel
        for key in [k for k in self._batchers if k[0] == recovered]:
            batcher = self._batchers.pop(key)
            if batcher._timer is not None:
                kernel.cancel_timer(batcher._timer)
            if batcher._backoff_timer is not None:
                kernel.cancel_timer(batcher._backoff_timer)
        generation = self._rejoin_epoch.get(recovered, 0) + 1
        self._rejoin_epoch[recovered] = generation
        self._catching_up.add(recovered)
        record = RejoinRecord(node_id=recovered, recovered_at=self.sim.now)
        self.rejoins.append(record)
        kernel.spawn_thread(self._rejoin_body, recovered, generation, record,
                            name=f"rejoin:{recovered}", daemon=True)

    def _forget_directory_copy(self, obj_id: int, node_id: int) -> None:
        """Drop a wiped machine from one object's copyset (primary stays:
        a dead/blank seat is the crash takeover's business, not ours)."""
        try:
            entry = self.directory.entry(obj_id)
        except RtsError:
            return
        if entry.primary_node != node_id:
            entry.copyset.discard(node_id)

    def _rejoin_body(self, recovered: int, generation: int,
                     record: RejoinRecord) -> None:
        """Catch-up thread on a recovered node: seats, anchors, seeds, epochs."""
        proc = self.sim.current_process
        node = self.cluster.node(recovered)

        def abandoned() -> bool:
            return (self._rejoin_epoch.get(recovered, 0) != generation
                    or not node.alive)

        if self.router is not None:
            for shard in self.router.active_shards():
                if abandoned():
                    return
                self._rejoin_shard(proc, recovered, shard, generation)
        if abandoned():
            return
        # Primary-mechanism objects carry no state in the seeds (their
        # copies re-replicate on demand); jump this member's epoch cursors
        # to the present so coherence traffic is not deferred forever
        # waiting on pre-crash switches the member will never deliver.
        # max() only: a post-anchor switch replayed from the seed buffer
        # may already have advanced a cursor past the global value here.
        for handle in sorted(self.handles(), key=lambda h: h.obj_id):
            obj_id = handle.obj_id
            if self._mechanism_of(obj_id) != MECHANISM_PRIMARY:
                continue
            key = (recovered, obj_id)
            self._node_epoch[key] = max(
                self._node_epoch.get(key, 0),
                self._epoch_by_obj.get(obj_id, 0))
            self._dest_epoch[key] = max(
                self._dest_epoch.get(key, 0),
                self._dest_epoch_required.get(obj_id, 0))
        self._catching_up.discard(recovered)
        self.stats.node_rejoins += 1
        record.completed_at = self.sim.now
        # Seat hand-back happens after the member is a full member again
        # (the relocation guard would refuse a catching-up target).
        record.seats_handed_back = self._hand_back_seats(proc, recovered)
        self.stats.seats_handed_back += record.seats_handed_back

    def _rejoin_shard(self, proc: "SimProcess", recovered: int, shard: int,
                      generation: int) -> None:
        """Re-enter one broadcast group's total order (anchor + seed)."""
        group = self.router.group_for(shard)
        member = group.member(recovered)
        node = self.cluster.node(recovered)
        if group.sequencer_node_id == recovered:
            # The seat's in-memory state died with the crash; hand it to
            # the lowest caught-up peer, renumbering from live evidence.
            donors = self._seed_donors(shard, recovered)
            if not donors:
                # Sole survivor: re-found the order from scratch.  Whatever
                # predated the crash is lost cluster-wide.
                group.install_sequencer(recovered, 1)
                member.mark_synced()
                return
            group.handoff_sequencer(donors[0], trust_old=False)
        key = (recovered, shard)
        self._awaiting_seed.add(key)
        invocation_id = next(self._invocation_ids)
        self._pending[invocation_id] = _PendingWrite(proc=proc)
        proc.flush()
        member.begin_rejoin(("rejoin", recovered, generation, invocation_id),
                            size=CONTROL_MESSAGE_SIZE)
        proc.suspend()
        self._pending.pop(invocation_id, None)
        # Await the out-of-band seed; re-request on a timeout (the donor
        # chosen at the anchor's delivery may have died before sending, or
        # its unicast may have been lost).
        while key in self._awaiting_seed:
            proc.hold(group.retry_timeout)
            if (self._rejoin_epoch.get(recovered, 0) != generation
                    or not node.alive):
                return
            if key in self._awaiting_seed:
                self._request_seed(recovered, shard, generation)

    def _seed_donors(self, shard: int, rejoining: int) -> List[int]:
        """Live, synced, caught-up members able to seed a rejoin (sorted)."""
        group = self.router.group_for(shard)
        return sorted(
            nid for nid, member in group.members.items()
            if member.node.alive and member.synced and nid != rejoining
            and nid not in self._catching_up)

    def _apply_rejoin(self, node_id: int, shard: int,
                      delivered: DeliveredMessage) -> None:
        """One member's delivery of a recovered peer's rejoin anchor.

        At the rejoining member itself the anchor's arrival already
        fast-forwarded the ordering engine (group layer); here it only
        wakes the rejoin thread.  At every other member, the lowest-id
        eligible peer captures the seed — the shard's object states exactly
        as of the anchor's position in the order — and unicasts it.
        """
        _, rejoining, generation, invocation_id = delivered.payload
        node = self.cluster.node(node_id)
        node.charge_overhead(self.cost_model.cpu.operation_dispatch_cost)
        if node_id == rejoining:
            self._resolve(invocation_id, None)
            return
        if self._rejoin_epoch.get(rejoining, 0) != generation:
            return  # a newer crash already voided this rejoin
        donors = self._seed_donors(shard, rejoining)
        if donors and donors[0] == node_id:
            # ``upto`` is the anchor's own position: at this point in the
            # delivery loop the donor's state reflects exactly the order up
            # to and including the anchor (later messages in the same
            # deliverable batch have not run their handlers yet).
            self._send_seed(node_id, rejoining, shard, generation,
                            upto=delivered.seqno)

    def _send_seed(self, donor: int, rejoining: int, shard: int,
                   generation: int, upto: int) -> None:
        """Capture and unicast one shard's rejoin seed from ``donor``.

        The capture is synchronous at the donor's delivery position
        ``upto``: the recipient skips delivering anything at or below it,
        so seed state plus replayed order reconstruct the donor's history
        exactly.  Broadcast-mechanism objects routed through this shard
        travel with state, version and epoch cursors; primary-mechanism
        objects need no state here (copies re-replicate on demand).
        """
        manager = self.managers[donor]
        objects: List[Tuple[Any, ...]] = []
        shard_objs: List[int] = []
        payload_bytes = 0
        for handle in sorted(self.handles(), key=lambda h: h.obj_id):
            obj_id = handle.obj_id
            if self._mechanism_of(obj_id) != MECHANISM_BROADCAST:
                continue
            if self.router.assign(obj_id, handle.name) != shard:
                continue
            shard_objs.append(obj_id)
            if not manager.has_valid_copy(obj_id):
                continue
            replica = manager.get(obj_id)
            objects.append((obj_id, replica.instance.marshal_state(),
                            replica.version,
                            self._node_epoch.get((donor, obj_id), 0),
                            self._dest_epoch.get((donor, obj_id), 0)))
            payload_bytes += replica.instance.state_size()
        payload = {"shard": shard, "generation": generation, "upto": upto,
                   "objects": objects}
        if self._txn_layer is not None:
            # Transaction lock entries and queues travel with the replica
            # state: they are as much a part of the donor's position in
            # the order as the object versions are.
            payload["txn"] = self._txn_layer.seed_state(donor, shard_objs)
        node = self.cluster.node(donor)
        node.send(node.make_message(
            rejoining, KIND_SEED, size=32 + payload_bytes,
            payload=payload))

    def _request_seed(self, rejoining: int, shard: int,
                      generation: int) -> None:
        """Re-request a seed that never arrived (donor died or loss)."""
        donors = self._seed_donors(shard, rejoining)
        if not donors:
            # Degraded rejoin: nobody left who could seed this member.
            # Whatever predated the anchor is lost cluster-wide; proceed
            # with what the order delivers from here on.
            self._finish_seed(rejoining, shard, upto=0)
            return
        node = self.cluster.node(rejoining)
        node.send(node.make_message(
            donors[0], KIND_SEED_REQ, size=CONTROL_MESSAGE_SIZE,
            payload={"shard": shard, "requester": rejoining,
                     "generation": generation}))

    def _on_seed_request(self, node_id: int, payload: Dict[str, Any]) -> None:
        """A donor answers a rejoiner's re-request with a fresh seed."""
        rejoining = payload["requester"]
        shard = payload["shard"]
        generation = payload["generation"]
        if self._rejoin_epoch.get(rejoining, 0) != generation:
            return
        member = self.router.group_for(shard).member(node_id)
        if (not member.node.alive or not member.synced
                or node_id in self._catching_up):
            return  # cannot serve a seed we do not fully hold ourselves
        # Outside a delivery handler every delivered message has been
        # applied, so the donor's position is its delivery cursor.
        self._send_seed(node_id, rejoining, shard, generation,
                        upto=member.engine.next_expected - 1)

    def _on_seed(self, node_id: int, payload: Dict[str, Any]) -> None:
        """The rejoining member installs a seed and opens its delivery gate."""
        shard = payload["shard"]
        key = (node_id, shard)
        if key not in self._awaiting_seed:
            return  # duplicate (two donors raced); the first one won
        if self._rejoin_epoch.get(node_id, 0) != payload["generation"]:
            return  # stale seed from a rejoin a later crash voided
        manager = self.managers[node_id]
        count = 0
        for obj_id, state, version, node_epoch, dest_epoch in payload["objects"]:
            handle = self.handle(obj_id)
            instance = handle.spec_class()
            instance.unmarshal_state(state)
            manager.discard(obj_id)
            manager.install(obj_id, handle.name, instance, version=version)
            self.stats.replicas_created += 1
            self._node_epoch[(node_id, obj_id)] = node_epoch
            if dest_epoch:
                self._dest_epoch[(node_id, obj_id)] = dest_epoch
            self._wake_replica_waiters(node_id, obj_id)
            count += 1
        if self._txn_layer is not None and payload.get("txn"):
            self._txn_layer.install_seed(node_id, payload["txn"])
        record = self._rejoin_record(node_id)
        if record is not None:
            record.objects_reseeded += count
        self._finish_seed(node_id, shard, upto=payload["upto"])

    def _finish_seed(self, node_id: int, shard: int, upto: int) -> None:
        """Open the delivery gate: replay buffered deliveries, then flush.

        Order matters: the buffered deliveries (received between anchor and
        seed) carry the *earliest* post-``upto`` positions, so they replay
        before :meth:`GroupMember.resume_delivery` skips the cursor past
        ``upto`` and flushes anything later still parked in the engine.
        """
        key = (node_id, shard)
        self._awaiting_seed.discard(key)
        for delivered in self._seed_buffer.pop(key, []):
            if delivered.seqno <= upto:
                continue  # covered by the seed snapshot
            self._on_deliver(node_id, shard, delivered)
        self.router.group_for(shard).member(node_id).resume_delivery(upto)

    def _rejoin_record(self, node_id: int) -> Optional[RejoinRecord]:
        for record in reversed(self.rejoins):
            if record.node_id == node_id:
                return record
        return None

    def _hand_back_seats(self, proc: "SimProcess", recovered: int) -> int:
        """Hand primary seats back toward a rejoined heaviest writer."""
        handed = 0
        for handle in sorted(self.handles(), key=lambda h: h.obj_id):
            obj_id = handle.obj_id
            if self._mechanism_of(obj_id) != MECHANISM_PRIMARY:
                continue
            if self.directory.primary_of(obj_id) == recovered:
                continue
            if self._heaviest_writer(obj_id) != recovered:
                continue
            if self.relocate_primary(proc, handle, target=recovered):
                handed += 1
        return handed

    # -- planned drain --------------------------------------------------- #

    def drain_node(self, proc: "SimProcess", node_id: int) -> bool:
        """Evacuate every seat from ``node_id``, then retire the machine.

        The planned counterpart of crash recovery: primary seats relocate
        to the heaviest remaining writers, sequencer seats hand off after
        their queues drain, and the node leaves only once no RPC anywhere
        is still addressed to it — so a drained exit causes zero dead-peer
        failures, zero elections, and zero takeovers.  Returns ``False``
        if a drain of this node is already running.
        """
        node = self.cluster.node(node_id)
        if not node.alive:
            raise RtsError(
                f"drain_node() drains live nodes; node {node_id} is crashed "
                "(crash recovery owns dead ones)")
        if node_id in self._catching_up:
            raise RtsError(
                f"node {node_id} is still catching up from a recovery and "
                "cannot be drained yet")
        if node_id in self._draining:
            return False
        if not any(n.alive and n.node_id != node_id
                   for n in self.cluster.nodes):
            raise RtsError(
                f"cannot drain node {node_id}: it is the last live machine")
        self._draining.add(node_id)
        record = DrainRecord(node_id=node_id, started_at=self.sim.now)
        self.drains.append(record)
        try:
            for handle in sorted(self.handles(), key=lambda h: h.obj_id):
                obj_id = handle.obj_id
                if self._mechanism_of(obj_id) != MECHANISM_PRIMARY:
                    continue
                while self.directory.primary_of(obj_id) == node_id:
                    target = self._drain_target(obj_id, node_id)
                    if target is None:
                        raise RtsError(
                            f"cannot drain node {node_id}: no full member "
                            f"left to take the primary seat of object "
                            f"{obj_id}")
                    if self.relocate_primary(proc, handle, target=target):
                        record.primary_seats_moved += 1
                        break
                    # Transient refusal (a switch still settling); retry.
                    proc.hold(self.cost_model.cpu.protocol_cost * 4)
            if self.router is not None:
                for shard in self.router.active_shards():
                    group = self.router.group_for(shard)
                    if group.sequencer_node_id != node_id:
                        continue
                    while group.sequencer.queue_depth > 0:
                        proc.hold(group.retry_timeout)
                    target = self._drain_sequencer_target(group, node_id)
                    if target is None:
                        raise RtsError(
                            f"cannot drain node {node_id}: no full member "
                            f"left to take shard {shard}'s sequencer seat")
                    group.handoff_sequencer(target, trust_old=True)
                    record.sequencer_seats_moved += 1
            self._await_node_quiesced(proc, node_id)
            node.crash()
            self.stats.nodes_drained += 1
            record.completed_at = self.sim.now
            return True
        finally:
            self._draining.discard(node_id)

    def _drain_target(self, obj_id: int, leaving: int) -> Optional[int]:
        """The heaviest-writing full member to inherit a drained seat."""
        decider = self.replication.decider
        candidates = [
            node.node_id for node in self.cluster.nodes
            if node.alive and node.node_id != leaving
            and node.node_id not in self._catching_up
            and node.node_id not in self._draining]
        if not candidates:
            return None
        return max(candidates, key=lambda nid: (
            decider.stats_for(obj_id, nid).total_writes, -nid))

    def _drain_sequencer_target(self, group: "BroadcastGroup",
                                leaving: int) -> Optional[int]:
        """Lowest-id full member to inherit a drained sequencer seat."""
        candidates = [
            nid for nid, member in group.members.items()
            if member.node.alive and member.synced and nid != leaving
            and nid not in self._catching_up and nid not in self._draining]
        return min(candidates) if candidates else None

    def _await_node_quiesced(self, proc: "SimProcess", node_id: int) -> None:
        """Wait until no RPC anywhere is still addressed to ``node_id``.

        After the final poll returns clean, the caller retires the node in
        the same event — no other process can slip a new call in between,
        and all new traffic routes at the relocated seats anyway.
        """
        while any(endpoint.pending_to(node_id)
                  for endpoint in self.cluster.rpc.values()):
            proc.hold(self.cost_model.cpu.protocol_cost * 4)

    # -- live scale-in (merge a broadcast group away) --------------------- #

    def remove_shard(self, proc: "SimProcess", shard: int) -> bool:
        """Merge broadcast group ``shard`` away while the cluster runs.

        The reverse of :meth:`add_shard`: the group stops accepting
        placements (retired in the router), every object it orders is
        drained onto the remaining groups with :meth:`move_shard` (the
        same epoch-stamped drain-and-switch barrier, so no write is lost
        or reordered), and once every live member has delivered the
        group's full order its sequencer retires.  Returns ``False`` when
        the shard is already retired or a rejoin catch-up is in progress.
        """
        router = self._ensure_router()
        if not 0 <= shard < router.num_shards:
            raise ConfigurationError(
                f"cannot remove shard {shard}: only {router.num_shards} "
                "shards exist")
        if shard in router.retired:
            return False  # idempotent: a second remove is a no-op
        if router.num_active_shards <= 1:
            raise ConfigurationError("cannot remove the last active shard")
        if self._catching_up:
            return False  # a rejoin seed is computed against current routes
        # Retire first: placements and planner moves stop targeting the
        # group immediately, so the evacuation below cannot race new
        # arrivals (already-assigned objects keep their recorded shard).
        router.retire_shard(shard)
        evacuees = sorted(
            handle.obj_id for handle in self.handles()
            if router.assigned_shard(handle.obj_id) == shard)
        destinations = router.active_shards()
        for index, obj_id in enumerate(evacuees):
            handle = self.handle(obj_id)
            dest = destinations[index % len(destinations)]
            attempts = 0
            while router.assigned_shard(obj_id) == shard:
                if self.move_shard(proc, handle, dest):
                    break
                attempts += 1
                if attempts > 256:
                    raise RtsError(
                        f"cannot evacuate object {obj_id} off retiring "
                        f"shard {shard}: moves keep being refused")
                proc.hold(self.cost_model.cpu.protocol_cost * 4)
        group = router.group_for(shard)
        self._await_group_drained(proc, group)
        group.sequencer.retire()
        self.stats.shards_removed += 1
        self.removed_shards.append(shard)
        return True

    def _await_group_drained(self, proc: "SimProcess",
                             group: "BroadcastGroup") -> None:
        """Wait until a group's order is fully served and fully delivered."""
        def drained() -> bool:
            if group.sequencer.queue_depth > 0:
                return False
            highest = group.sequencer.highest_assigned
            return all(
                member.engine.next_expected > highest
                for member in group.members.values()
                if member.node.alive and member.synced)
        while not drained():
            proc.hold(group.retry_timeout)

    # -- the background rebalancing controller --------------------------- #

    def _maybe_start_rebalancer(self) -> None:
        """(Re)start the controller loop when write traffic flows.

        The controller is armed by the first broadcast write (and re-armed
        by the first write after it went quiet), not at construction: a
        long, write-free setup phase must not run its quiet-round budget
        down before the workload even starts.
        """
        if self._rebalancer_active:
            return
        # The controller must live on a machine that can actually broadcast
        # the switches; if its host dies later, the loop exits and the next
        # write re-arms a controller on a surviving node.
        host = next((node for node in self.cluster.nodes if node.alive), None)
        if host is None:
            return
        self._rebalancer_active = True
        host.kernel.spawn_thread(self._rebalance_body,
                                 name="shard-rebalancer")

    def _rebalance_body(self) -> None:
        """Periodic plan-and-move rounds over the router's load windows.

        Each round: optionally grow the group set toward ``grow_to``, ask
        the planner for moves off the hottest shard, execute them, and
        reset the load window.  The loop exits after ``quiet_rounds``
        consecutive rounds without a single new write anywhere (so a
        drained workload lets the simulation terminate); fresh traffic
        re-arms it.
        """
        proc = self.sim.current_process
        host = self._node_of(proc)
        params = self.rebalance
        planner = RebalancePlanner(self.router, imbalance=params.imbalance,
                                   min_writes=params.min_writes,
                                   max_moves=params.max_moves,
                                   queue_weight=params.queue_weight,
                                   byte_weight=params.byte_weight,
                                   exclude=self._in_move_cooldown)
        try:
            quiet = 0
            last_total = self._total_shard_writes()
            while quiet < params.quiet_rounds:
                proc.hold(params.interval)
                if not host.alive:
                    # A dead node cannot broadcast switches; bow out so the
                    # next write re-arms the controller on a live machine.
                    return
                total = self._total_shard_writes()
                if total == last_total:
                    quiet += 1
                    continue
                last_total = total
                quiet = 0
                live = sum(1 for n in self.cluster.nodes if n.alive)
                if (params.grow_to is not None
                        and self.router.num_active_shards
                        < min(params.grow_to, live)):
                    # Never outgrow the machines: every group needs a
                    # sequencer seat on a live node.
                    self.add_shard()
                elif (params.shrink_to is not None
                        and self.router.num_active_shards > params.shrink_to
                        and not self._catching_up):
                    idle = self._coolest_idle_shard(params)
                    if idle is not None:
                        # At most one merge per round: scale-in is the
                        # expensive direction (a full drain-and-switch per
                        # evacuated object) and the next window re-earns it.
                        self.remove_shard(proc, idle)
                moves = planner.plan()
                for move in moves:
                    self.move_shard(proc, self.handle(move.obj_id), move.dst)
                if moves:
                    # The evidence behind these moves is spent; the next
                    # decision must re-earn itself on a fresh window.  (No
                    # reset on quiet rounds: the window keeps accumulating
                    # until there is enough traffic to decide on.)
                    self.router.reset_window()
                    # Moves take virtual time; re-read the baseline so a
                    # round spent moving does not look like fresh traffic.
                    last_total = self._total_shard_writes()
        finally:
            self._rebalancer_active = False

    def _coolest_idle_shard(self, params: "RebalanceParams") -> Optional[int]:
        """The active shard to merge away, or ``None`` if none is idle.

        Only a shard whose window load is at or below ``shrink_below``
        qualifies: merging a busy group would stuff its traffic onto the
        survivors and immediately re-trigger growth.
        """
        active = self.router.active_shards()
        if len(active) <= 1:
            return None
        loads = self.router.window_loads()
        coolest = min(active, key=lambda s: (loads.get(s, 0), s))
        if loads.get(coolest, 0) > params.shrink_below:
            return None
        return coolest

    def _in_move_cooldown(self, obj_id: int) -> bool:
        """Churn damping: an object the controller moved less than
        ``rebalance.cooldown`` virtual seconds ago stays put, so
        near-balanced load stops shuffling the same object between groups
        (each move costs a drain-and-switch in two total orders)."""
        if self.rebalance is None:
            return False
        last = self._last_moved_at.get(obj_id)
        return last is not None and self.sim.now - last < self.rebalance.cooldown

    def _total_shard_writes(self) -> int:
        return sum(stats.writes for stats in self.router.shard_stats.values())

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def object_summary(self) -> Dict[str, Dict[str, Any]]:
        summary = super().object_summary()
        for handle in self.handles():
            row = summary[handle.name]
            row["policy"] = self._policy_by_obj[handle.obj_id]
            if handle.obj_id in self._adaptive_by_obj:
                row["adaptive"] = True
            # The shard column is the router's *current* view, so it stays
            # consistent across shard moves and policy migrations alike.
            shard = (self.router.assigned_shard(handle.obj_id)
                     if self.router is not None else None)
            if shard is not None and self.num_shards > 1:
                row["shard"] = shard
        return summary

    def downstream_queue_depth(self) -> int:
        """Deepest active-shard sequencer queue — the gateway shed signal.

        The same depth the write batcher's flow control watches
        (:meth:`_WriteBatcher._backpressured`), taken as a max over active
        shards so one congested shard is enough to arm edge shedding.
        """
        router = self.router
        if router is None:
            return 0
        return max((router.group_for(shard).sequencer.queue_depth
                    for shard in router.active_shards()), default=0)

    def read_write_summary(self) -> Dict[str, Any]:
        summary = super().read_write_summary()
        if self.router is not None and (self.num_shards > 1
                                        or self.batching is not None):
            summary["sharding"] = self.router.summary()
            if self.batching is not None:
                summary["batching"] = {
                    "max_batch": self.batching.max_batch,
                    "flush_delay": self.batching.flush_delay,
                }
        if self.stats.migrations:
            summary["migrations"] = {
                "total": self.stats.migrations,
                "to_primary": self.stats.migrations_to_primary,
                "to_broadcast": self.stats.migrations_to_broadcast,
                "log": [(m.name, m.target, m.primary_node)
                        for m in self.migrations],
            }
        if (self.stats.shard_moves or self.stats.shards_added
                or self.stats.primary_relocations):
            summary["rebalancing"] = {
                "moves": self.stats.shard_moves,
                "shards_added": self.stats.shards_added,
                "primary_relocations": self.stats.primary_relocations,
                "placement_epoch": (self.router.placement_epoch
                                    if self.router is not None else 0),
                "log": [(m.name, m.src, m.dst) for m in self.shard_moves],
            }
        if self.stats.flow_control_holds:
            summary["flow_control_holds"] = self.stats.flow_control_holds
        if self.stats.primary_recoveries:
            windows = [r.window for r in self.recoveries
                       if r.window is not None]
            summary["recovery"] = {
                "primary_recoveries": self.stats.primary_recoveries,
                "deduplicated_writes": self.stats.deduplicated_writes,
                "max_window": round(max(windows), 9) if windows else None,
                "log": [(r.name, r.old_primary, r.new_primary,
                         "snapshot" if r.from_snapshot else "copy")
                        for r in self.recoveries],
            }
        if (self.stats.node_rejoins or self.stats.nodes_drained
                or self.stats.shards_removed):
            windows = [r.window for r in self.rejoins if r.window is not None]
            summary["elasticity"] = {
                "node_rejoins": self.stats.node_rejoins,
                "nodes_drained": self.stats.nodes_drained,
                "shards_removed": self.stats.shards_removed,
                "seats_handed_back": self.stats.seats_handed_back,
                "objects_reseeded": sum(r.objects_reseeded
                                        for r in self.rejoins),
                "max_rejoin_window": (round(max(windows), 9)
                                      if windows else None),
                "rejoin_log": [
                    (r.node_id, r.objects_reseeded, r.seats_handed_back)
                    for r in self.rejoins if r.completed_at is not None],
                "drain_log": [
                    (d.node_id, d.primary_seats_moved,
                     d.sequencer_seats_moved)
                    for d in self.drains if d.completed_at is not None],
                "removed_shards": list(self.removed_shards),
            }
        if self.stats.txn_commits or self.stats.txn_aborts:
            summary["transactions"] = {
                "commits": self.stats.txn_commits,
                "aborts": self.stats.txn_aborts,
                "same_shard_commits": self.stats.txn_same_shard_commits,
                "cross_shard_commits": self.stats.txn_cross_shard_commits,
                "conflict_retries": self.stats.txn_retries,
                "deferred_writes": self.stats.txn_deferred_writes,
                "recoveries": self.stats.txn_recoveries,
            }
        return summary
