"""The unified runtime system: per-object management policies, live migration.

:class:`HybridRts` hosts both of the paper's object-management mechanisms in
one runtime.  Every shared object runs under a
:class:`~repro.rts.policy.ManagementPolicy` chosen at creation time
(``create_object(..., policy=...)``) and changeable while the cluster runs:

* **broadcast** objects are replicated on every machine; reads are local and
  writes ride the totally-ordered broadcast of the object's shard (exactly
  the classic :class:`BroadcastRts` machinery, including sharding and write
  batching);
* **primary-copy** objects live on one machine with dynamically replicated
  secondaries; writes go through the primary and propagate by invalidation
  or two-phase update (exactly the classic :class:`PointToPointRts`
  machinery);
* **adaptive** objects carry an :class:`~repro.rts.policy.AdaptivePolicy`
  controller that watches the object's read/write ratio and migrates it
  between the fixed policies at run time.

Migration protocol
------------------

A migration must not lose, duplicate, or reorder writes, so the switch point
is decided by the same total order that already serialises the object's
broadcast writes.  Every object keeps a **migration epoch**; broadcast write
payloads are stamped with the epoch they were issued under, and every member
tracks, per object, the epoch it has *delivered* up to.

* **broadcast → primary**: the initiator flips the object's global policy
  and directory entry (new writes head for the chosen primary), then
  broadcasts a ``switch`` message through the object's shard.  Total order
  guarantees each member delivers the switch after exactly the same set of
  writes, so the (identical) replicas simply become the primary/secondary
  copies — no state transfer.  A write broadcast sequenced *after* the
  switch is dropped identically at every member and re-issued by its origin
  through the primary.  The primary refuses to apply writes until it has
  itself delivered the switch (so it has applied every pre-switch write);
  coherence traffic reaching a member that has not yet delivered the switch
  is deferred until it does.
* **primary → broadcast**: the initiator freezes the object at the primary
  (in-flight two-phase writes drain first; new writes bounce and retry),
  snapshots its state, flips the global policy, and broadcasts the switch
  *carrying the snapshot*.  Each member installs the snapshot when it
  delivers the switch — the totally-ordered state transfer — after which
  writes flow as ordered broadcasts.

Both directions inherit the broadcast layer's fault tolerance: a switch in
flight across a sequencer crash is retried, survives the election, and is
still delivered exactly once in the same total order everywhere.

Sequential consistency is preserved across a switch because (a) the switch
point is a single position in the object's write order, (b) no write is
applied on both sides of it (epoch-mismatched broadcasts are dropped and
re-issued; primary writes wait for the switch to land), and (c) every
member's replica passes through the switch state before serving post-switch
operations.

Cross-group rebalancing (drain-and-switch)
------------------------------------------

A policy switch moves an object between management mechanisms; a **shard
move** (:meth:`HybridRts.move_shard`) moves it between *total orders* — from
one broadcast group's sequencer to another's — so a skewed workload can be
spread off a melting sequencer at run time.  The same epoch machinery
carries it, with one extra barrier:

* the initiator bumps the object's epoch and rewrites the router's mapping
  (new writes are stamped with the new epoch and broadcast in the
  *destination* group), then broadcasts a ``shard-switch`` through the
  **source** group and a ``shard-arrive`` through the **destination** group;
* the source switch is the drain point: total order in the source group
  guarantees every member retires the old route after the same set of
  writes; stale-epoch writes sequenced behind it are dropped identically
  everywhere and re-issued by their origin into the destination order (the
  origin's doomed pending writes are released early, exactly like a policy
  switch);
* destination-group writes carrying the *new* epoch can reach a member
  before that member has delivered the source switch (the two groups share
  no ordering).  Such writes are **deferred**, per member, and applied — in
  their destination-order positions — the moment the local source switch
  lands.  That per-member barrier is what makes the object's global write
  order a source-order prefix followed by a destination-order suffix at
  every machine;
* the initiator awaits local delivery of both broadcasts, so a move is only
  reported complete once both groups' sequencing paths have carried it; a
  sequencer crash in either group retries through that group's election,
  preserving exactly-once delivery of the switch and of every write.

The same drain-and-switch primitive powers live scale-out: `add_shard`
joins a fresh broadcast group on the running cluster and the rebalancing
controller (:class:`~repro.rts.sharding.RebalanceParams`) moves hot objects
onto it.  Primary-copy objects get the analogous lever in
:meth:`HybridRts.relocate_primary`: the primary seat follows the heaviest
writer via a frozen snapshot carried in a totally-ordered switch scoped to
the copy-holding members.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Tuple, Type

from ..amoeba.broadcast.protocol import DeliveredMessage
from ..amoeba.message import estimate_size
from ..amoeba.rpc import RpcReply, RpcRequest
from ..errors import ConfigurationError, RtsError
from .base import ObjectHandle, RuntimeSystem
from .consistency import HistoryRecorder
from .object_model import RETRY, ObjectSpec
from .p2p.directory import ObjectDirectory
from .p2p.invalidation import KIND_INVALIDATE, InvalidationProtocol
from .p2p.replication_policy import ReplicationPolicy
from .p2p.update import KIND_UNLOCK, KIND_UPDATE, TwoPhaseUpdateProtocol
from .policy import (
    FIXED_POLICIES,
    MECHANISM_BROADCAST,
    MECHANISM_PRIMARY,
    AdaptivePolicy,
    BroadcastReplicated,
    management_policy,
)
from .sharding import (
    BatchingParams,
    RebalancePlanner,
    ShardRouter,
    batching_params,
    rebalance_params,
)
from .stats import AccessStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..amoeba.broadcast.group import BroadcastGroup
    from ..amoeba.cluster import Cluster
    from ..amoeba.node import Node
    from ..sim.process import SimProcess

#: Sentinel returned by a mechanism path when the object's policy changed
#: under the invocation; the unified dispatch loop re-routes the operation.
MIGRATED = object()

#: Point-to-point protocol message kinds (unchanged from the classic p2p RTS).
KIND_ACK = "p2p.ack"
KIND_DROP = "p2p.drop"

PORT_READ = "orca.obj.read"
PORT_WRITE = "orca.obj.write"
PORT_FETCH = "orca.obj.fetch"
#: Freeze-and-snapshot service used by primary -> broadcast migrations.
PORT_MIGRATE = "orca.obj.migrate"

#: On-wire retry markers carried in RPC replies (strings, like the classic
#: ``"__retry__"``, so they survive the payload plumbing untouched).
MARKER_RETRY = "__retry__"
MARKER_MIGRATED = "__migrated__"
MARKER_MIGRATING = "__migrating__"


@dataclass
class _PendingWrite:
    """An invocation waiting for its own broadcast to come back.

    Ordinary writes also record which object/epoch they were issued under so
    a policy switch can release them early (see ``_apply_switch``).
    """

    proc: "SimProcess"
    result: Any = None
    resolved: bool = False
    obj_id: Optional[int] = None
    origin: Optional[int] = None
    epoch: int = 0


@dataclass
class _Transaction:
    """Fan-out bookkeeping: one primary write waiting for acknowledgements."""

    remaining: int
    proc: Optional["SimProcess"] = None
    #: Nodes still owing an acknowledgement; a node crash releases its debt
    #: (a dead machine will never answer, and its copy is gone with it).
    destinations: Set[int] = None  # type: ignore[assignment]


@dataclass
class MigrationRecord:
    """One completed (or in-flight) policy switch, for reports and tests."""

    obj_id: int
    name: str
    target: str
    epoch: int
    primary_node: Optional[int]


@dataclass
class ShardMoveRecord:
    """One cross-group move of an object (drain-and-switch), for reports."""

    obj_id: int
    name: str
    src: int
    dst: int
    epoch: int


class _WriteBatcher:
    """Per-(node, shard) write combining onto the ordered broadcast.

    Writes enqueue here instead of broadcasting individually.  A batch is
    flushed when it reaches ``max_batch`` operations, when ``flush_delay``
    expires, or — with a zero delay — immediately while no batch is in
    flight.  Only one batch per (node, shard) is outstanding at a time:
    writes arriving while it is on the wire coalesce into the next batch,
    which both preserves per-node FIFO order and yields the group-commit
    effect that amortises the sequencer round trip under contention.

    With ``backpressure_depth`` set, the batcher also implements batch-aware
    flow control: while the shard sequencer's service queue is at least that
    deep, a ready batch is *held* (and keeps coalescing) instead of adding
    to the overload, so the sender backs off before its unanswered sends
    could escalate into retries and a spurious election.  The hold is
    re-evaluated after roughly the time the queue needs to drain back under
    the threshold, and a batch that has grown to ``4 * max_batch`` entries
    flushes unconditionally, bounding the held writes' latency.  (In the
    simulator the sender reads the queue depth directly; a real cluster
    would piggyback it on the sequencer's ordered broadcasts.)
    """

    def __init__(self, rts: "HybridRts", node: "Node",
                 group: "BroadcastGroup", shard: int,
                 params: BatchingParams) -> None:
        self.rts = rts
        self.node = node
        self.group = group
        self.shard = shard
        self.params = params
        self._entries: List[Tuple[Any, ...]] = []
        self._bytes = 0
        self._in_flight = False
        self._timer: Optional[int] = None
        self._backoff_timer: Optional[int] = None
        self.holds = 0

    def enqueue(self, entry: Tuple[Any, ...], size: int) -> None:
        self._entries.append(entry)
        self._bytes += size
        self._maybe_flush()

    def on_batch_delivered(self) -> None:
        self._in_flight = False
        self._maybe_flush()

    def _backpressured(self) -> bool:
        """Should a ready batch be held back for the loaded sequencer?"""
        depth = self.params.backpressure_depth
        if depth is None:
            return False
        if len(self._entries) >= 4 * self.params.max_batch:
            return False  # hard cap: flush regardless of load
        return self.group.sequencer.queue_depth >= depth

    def _hold(self) -> None:
        """Re-check once the sequencer had time to work the queue down."""
        if self._backoff_timer is not None:
            return
        self.holds += 1
        self.rts.stats.flow_control_holds += 1
        service = self.node.cost_model.cpu.sequencing_cost
        delay = max(self.params.flush_delay,
                    service * self.params.backpressure_depth)
        self._backoff_timer = self.node.kernel.set_timer(
            delay, self._on_backoff)

    def _on_backoff(self) -> None:
        self._backoff_timer = None
        self._maybe_flush()

    def _maybe_flush(self) -> None:
        if self._in_flight or not self._entries:
            return
        if (len(self._entries) >= self.params.max_batch
                or self.params.flush_delay <= 0.0):
            if self._backpressured():
                self._hold()
                return
            self._flush()
        elif self._timer is None:
            self._timer = self.node.kernel.set_timer(
                self.params.flush_delay, self._on_timer)

    def _on_timer(self) -> None:
        self._timer = None
        if self._in_flight or not self._entries:
            return
        if self._backpressured():
            self._hold()
            return
        self._flush()

    def _flush(self) -> None:
        if self._timer is not None:
            self.node.kernel.cancel_timer(self._timer)
            self._timer = None
        entries, self._entries = self._entries, []
        size, self._bytes = self._bytes, 0
        self._in_flight = True
        self.rts.stats.batches_sent += 1
        self.rts.router.shard_stats[self.shard].note_batch(len(entries))
        self.group.member(self.node.node_id).broadcast(
            ("batch", entries), size=max(16, size) + 8)


class HybridRts(RuntimeSystem):
    """Shared objects under per-object, runtime-switchable management."""

    name = "hybrid-rts"

    def __init__(self, cluster: "Cluster", default_policy: Any = "broadcast",
                 protocol: str = "update", dynamic_replication: bool = True,
                 replicate_everywhere: bool = False,
                 record_history: bool = False, num_shards: int = 1,
                 placement: Any = None, batching: Any = None,
                 rebalance: Any = None) -> None:
        """Create the unified runtime.

        Parameters
        ----------
        cluster:
            The simulated cluster.  Broadcast-managed objects (and
            migrations) need a broadcast-capable network; a purely
            primary-copy configuration runs on any network.
        default_policy:
            Policy for objects created without an explicit ``policy=``:
            a name (``"broadcast"``, ``"primary-invalidate"``,
            ``"primary-update"``, ``"primary"``, ``"adaptive"``), adaptive
            params, or a :class:`ManagementPolicy`.
        protocol:
            Which coherence protocol ``default_policy="primary"`` resolves
            to (``"update"`` or ``"invalidation"``).
        dynamic_replication:
            Enable the read/write-ratio driven secondary-copy policy for
            primary-managed objects.
        replicate_everywhere:
            Eagerly give every machine a secondary copy when a
            primary-managed object is created.
        record_history:
            Record write/read histories for the consistency checker.
        num_shards / placement / batching:
            Sharding and write batching of the broadcast mechanism (see
            :mod:`repro.rts.sharding`).
        rebalance:
            Configuration of the background shard-rebalancing controller
            (``True``, a dict of :class:`~repro.rts.sharding.RebalanceParams`
            fields, or params).  The controller samples per-shard write
            loads every ``interval`` virtual seconds, moves hot objects off
            the hottest broadcast group with :meth:`move_shard`, and — when
            ``grow_to`` is set — adds groups to the live cluster first.
        """
        super().__init__(cluster)
        if protocol not in ("update", "invalidation"):
            raise ConfigurationError(
                f"unknown coherence protocol {protocol!r} (use 'update' or "
                "'invalidation')")
        if default_policy == "primary":
            default_policy = f"primary-{'invalidate' if protocol == 'invalidation' else 'update'}"
        self.default_policy = management_policy(default_policy,
                                                default=BroadcastReplicated())
        self.dynamic_replication = dynamic_replication
        self.replicate_everywhere = replicate_everywhere
        self.history = HistoryRecorder(enabled=record_history)

        # -- broadcast mechanism ---------------------------------------- #
        self._num_shards = num_shards
        self._placement = placement
        self.batching = batching_params(batching)
        self.rebalance = rebalance_params(rebalance)
        self._rebalancer_active = False
        self.router: Optional[ShardRouter] = None
        #: Shard-0 group under the classic attribute name (set with the router).
        self.group: Optional["BroadcastGroup"] = None
        self._batchers: Dict[Tuple[int, int], _WriteBatcher] = {}
        self._invocation_ids = itertools.count(1)
        self._pending: Dict[int, _PendingWrite] = {}
        #: (node_id, obj_id) -> [SimProcess, ...] waiting for a local replica.
        self._replica_waiters: Dict[Tuple[int, int], List["SimProcess"]] = {}

        # -- primary-copy mechanism ------------------------------------- #
        self.directory = ObjectDirectory()
        self.replication = ReplicationPolicy(self.cost_model.replication)
        self.protocols = {
            "invalidation": InvalidationProtocol(self),
            "update": TwoPhaseUpdateProtocol(self),
        }
        #: Default protocol instance (what ``"primary"`` resolves to).
        self.protocol = self.protocols[protocol]
        self._txn_ids = itertools.count(1)
        self._transactions: Dict[int, _Transaction] = {}
        #: txn_id -> node that must receive the acknowledgements.
        self._ack_destinations: Dict[int, int] = {}
        self._services_installed = False

        # -- per-object policy state ------------------------------------ #
        #: obj_id -> name of the fixed policy currently managing the object.
        self._policy_by_obj: Dict[int, str] = {}
        #: obj_id -> adaptive controller (objects created adaptive only).
        self._adaptive_by_obj: Dict[int, AdaptivePolicy] = {}
        #: obj_id -> cluster-wide access window driving adaptive decisions.
        self._obj_access: Dict[int, AccessStats] = {}
        self._created_on: Dict[int, int] = {}

        # -- migration state -------------------------------------------- #
        #: obj_id -> number of switches (policy or shard) broadcast for it.
        self._epoch_by_obj: Dict[int, int] = {}
        #: (node_id, obj_id) -> epoch that node has delivered up to.
        self._node_epoch: Dict[Tuple[int, int], int] = {}
        #: (node_id, obj_id) -> destination-group writes that outran the
        #: member's delivery of the source-group shard switch; applied, in
        #: destination order, the moment the local switch lands (the
        #: cross-group barrier of a shard move).
        self._future_writes: Dict[Tuple[int, int],
                                  List[Tuple[Any, ...]]] = {}
        #: (node_id, obj_id) -> highest shard-arrive epoch delivered there;
        #: a move is settled only when *both* of its broadcasts landed
        #: everywhere.
        self._dest_epoch: Dict[Tuple[int, int], int] = {}
        #: obj_id -> shard-arrive epoch the latest move requires.
        self._dest_epoch_required: Dict[int, int] = {}
        #: (node_id, obj_id) -> processes waiting for that node to deliver
        #: the current switch (the primary gating its first post-switch write).
        self._switch_waiters: Dict[Tuple[int, int], List["SimProcess"]] = {}
        #: Coherence messages that raced ahead of a switch at some member.
        self._deferred: Dict[Tuple[int, int], List[Tuple[str, Dict[str, Any]]]] = {}
        #: Objects frozen at their primary for a state transfer.
        self._frozen: Set[int] = set()
        #: Objects with a switch still being delivered somewhere.
        self._migrating: Set[int] = set()
        #: Objects inside a migrate() call that has not yet broadcast its
        #: switch (the freeze/snapshot phase can suspend, during which the
        #: epoch is still old and ``_migrating`` alone cannot protect).
        self._migrate_in_progress: Set[int] = set()
        #: Objects whose adaptive migration thread is spawned but not done.
        self._migration_pending: Set[int] = set()
        self.migrations: List[MigrationRecord] = []
        self.shard_moves: List[ShardMoveRecord] = []
        #: (obj_id, old_primary, new_primary) per completed seat relocation.
        self.relocations: List[Tuple[int, int, int]] = []

        initial = self.default_policy
        needs_broadcast = (isinstance(initial, AdaptivePolicy)
                           or initial.mechanism == MECHANISM_BROADCAST)
        if needs_broadcast:
            self._ensure_router()
        else:
            self._ensure_primary_services()
        if type(self) is HybridRts:
            self.name = {
                MECHANISM_BROADCAST: "broadcast-rts",
                MECHANISM_PRIMARY: "p2p-rts",
            }.get(initial.mechanism, "adaptive-rts"
                  if isinstance(initial, AdaptivePolicy) else "hybrid-rts")

    # ------------------------------------------------------------------ #
    # Lazy wiring of the two mechanisms
    # ------------------------------------------------------------------ #

    def _ensure_router(self) -> ShardRouter:
        """Build the broadcast groups on first need (they require hardware
        broadcast, which a primary-copy-only configuration does not)."""
        if self.router is None:
            if not self.cluster.network.supports_broadcast:
                raise RtsError(
                    "broadcast-managed objects (and policy migrations) need "
                    "a broadcast-capable network; this cluster is "
                    f"{self.cluster.network.name!r}")
            self.router = ShardRouter(self.cluster, num_shards=self._num_shards,
                                      placement=self._placement)
            self.group = self.router.group_for(0)
            for shard in range(self.router.num_shards):
                self._wire_shard(shard)
        return self.router

    def _wire_shard(self, shard: int) -> None:
        """Install every member's delivery handler for one shard's group."""
        group = self.router.group_for(shard)
        for node in self.cluster.nodes:
            group.set_delivery_handler(
                node.node_id,
                lambda delivered, nid=node.node_id, s=shard:
                    self._on_deliver(nid, s, delivered),
            )

    def add_shard(self, sequencer_node_id: Optional[int] = None) -> int:
        """Add a broadcast group to the running cluster; returns its shard.

        The group's members join and its wire-kind namespace registers
        immediately (see :meth:`ShardRouter.add_shard` for seat selection),
        so the new total order can carry traffic — and receive rebalanced
        objects — without disturbing the existing groups.
        """
        router = self._ensure_router()
        shard = router.add_shard(sequencer_node_id=sequencer_node_id)
        self._wire_shard(shard)
        self.stats.shards_added += 1
        return shard

    def _ensure_primary_services(self) -> None:
        """Register the point-to-point handlers and RPC services once."""
        if self._services_installed:
            return
        self._services_installed = True
        for node in self.cluster.nodes:
            nid = node.node_id
            node.on_crash(lambda n=nid: self._on_node_crash(n))
            node.register_handler(KIND_INVALIDATE,
                                  lambda m, n=nid: self._on_invalidate(n, m.payload))
            node.register_handler(KIND_UPDATE,
                                  lambda m, n=nid: self._on_update(n, m.payload))
            node.register_handler(KIND_UNLOCK,
                                  lambda m, n=nid: self._on_unlock(n, m.payload))
            node.register_handler(KIND_ACK,
                                  lambda m, n=nid: self._on_ack(n, m.payload))
            node.register_handler(KIND_DROP,
                                  lambda m, n=nid: self._on_drop(n, m.payload))
            rpc = self.cluster.rpc_for(nid)
            rpc.register_service(PORT_READ,
                                 lambda req, n=nid: self._serve_read(n, req))
            rpc.register_service(PORT_WRITE,
                                 lambda req, n=nid: self._serve_write(n, req),
                                 may_block=True)
            rpc.register_service(PORT_FETCH,
                                 lambda req, n=nid: self._serve_fetch(n, req),
                                 may_block=True)
            rpc.register_service(PORT_MIGRATE,
                                 lambda req, n=nid: self._serve_migrate(n, req),
                                 may_block=True)

    # ------------------------------------------------------------------ #
    # Policy bookkeeping
    # ------------------------------------------------------------------ #

    def policy_of(self, handle: ObjectHandle) -> str:
        """Name of the fixed policy currently managing ``handle``."""
        return self._policy_by_obj[handle.obj_id]

    def is_adaptive(self, handle: ObjectHandle) -> bool:
        return handle.obj_id in self._adaptive_by_obj

    def _mechanism_of(self, obj_id: int) -> str:
        return FIXED_POLICIES[self._policy_by_obj[obj_id]].mechanism

    def _protocol_for_obj(self, obj_id: int):
        return self.protocols[FIXED_POLICIES[self._policy_by_obj[obj_id]].protocol]

    @property
    def num_shards(self) -> int:
        return self.router.num_shards if self.router is not None else 1

    def shard_of(self, handle: ObjectHandle) -> int:
        """The shard (and thus broadcast group) currently ordering ``handle``.

        This is the router's live view: after a :meth:`move_shard` it names
        the destination group, not the creation-time placement.
        """
        return self._ensure_router().assign(handle.obj_id, handle.name)

    def _batcher(self, node: "Node", shard: int) -> _WriteBatcher:
        key = (node.node_id, shard)
        batcher = self._batchers.get(key)
        if batcher is None:
            batcher = _WriteBatcher(self, node, self.router.group_for(shard),
                                    shard, self.batching)
            self._batchers[key] = batcher
        return batcher

    # ------------------------------------------------------------------ #
    # Object creation
    # ------------------------------------------------------------------ #

    def create_object(self, proc: "SimProcess", spec_class: Type[ObjectSpec],
                      args: Tuple[Any, ...] = (), kwargs: Optional[Dict[str, Any]] = None,
                      name: Optional[str] = None, policy: Any = None) -> ObjectHandle:
        """Create a shared object managed by ``policy`` (default: the RTS's)."""
        node = self._node_of(proc)
        chosen = management_policy(policy, default=self.default_policy)
        if isinstance(chosen, AdaptivePolicy):
            controller: Optional[AdaptivePolicy] = chosen
            effective = FIXED_POLICIES[chosen.initial]
        else:
            controller, effective = None, chosen
        if effective.mechanism == MECHANISM_BROADCAST or controller is not None:
            self._ensure_router()
        if effective.mechanism == MECHANISM_PRIMARY or controller is not None:
            self._ensure_primary_services()

        handle = self._new_handle(spec_class, name)
        obj_id = handle.obj_id
        self._policy_by_obj[obj_id] = effective.name
        if controller is not None:
            self._adaptive_by_obj[obj_id] = controller
            self._obj_access[obj_id] = AccessStats()
        self._created_on[obj_id] = node.node_id

        if effective.mechanism == MECHANISM_BROADCAST:
            self._create_broadcast(proc, node, handle, spec_class, args, kwargs)
        else:
            self._create_primary(proc, node, handle, spec_class, args, kwargs)
        return handle

    def _create_broadcast(self, proc: "SimProcess", node: "Node",
                          handle: ObjectHandle, spec_class: Type[ObjectSpec],
                          args: Tuple[Any, ...],
                          kwargs: Optional[Dict[str, Any]]) -> None:
        """Replicate the new object on every machine via ordered broadcast."""
        shard = self.router.note_create(handle.obj_id, handle.name)
        invocation_id = next(self._invocation_ids)
        pending = _PendingWrite(proc=proc)
        self._pending[invocation_id] = pending
        payload = ("create", handle.obj_id, spec_class, args, kwargs or {},
                   invocation_id)
        size = max(32, estimate_size(args) + estimate_size(kwargs or {}))
        proc.advance(self.cost_model.cpu.operation_dispatch_cost)
        proc.absorb_overhead(node.drain_overhead())
        proc.flush()
        self.router.group_for(shard).member(node.node_id).broadcast(
            payload, size=size)
        proc.suspend()
        self._pending.pop(invocation_id, None)

    def _create_primary(self, proc: "SimProcess", node: "Node",
                        handle: ObjectHandle, spec_class: Type[ObjectSpec],
                        args: Tuple[Any, ...],
                        kwargs: Optional[Dict[str, Any]]) -> None:
        """Install the primary copy on the caller's machine."""
        instance = spec_class.create(args, kwargs)
        self.managers[node.node_id].install(handle.obj_id, handle.name, instance,
                                            is_primary=True)
        self.directory.register(handle.obj_id, node.node_id)
        self.stats.replicas_created += 1
        proc.advance(self.cost_model.cpu.operation_dispatch_cost)
        if self.replicate_everywhere:
            for other in self.cluster.nodes:
                if other.node_id != node.node_id:
                    self.replicate_to(handle, other.node_id)

    def replicate_to(self, handle: ObjectHandle, node_id: int) -> None:
        """Eagerly install a secondary copy on ``node_id`` (no cost charged)."""
        primary = self.directory.primary_of(handle.obj_id)
        source = self.managers[primary].get(handle.obj_id)
        if self.managers[node_id].has_valid_copy(handle.obj_id):
            return
        copy = handle.spec_class()
        copy.unmarshal_state(source.instance.marshal_state())
        self.managers[node_id].discard(handle.obj_id)
        self.managers[node_id].install(handle.obj_id, handle.name, copy,
                                       version=source.version)
        self.directory.add_copy(handle.obj_id, node_id)
        self.stats.replicas_created += 1

    # ------------------------------------------------------------------ #
    # Unified invocation dispatch
    # ------------------------------------------------------------------ #

    def _invoke(self, proc: "SimProcess", handle: ObjectHandle, op_name: str,
                args: Tuple[Any, ...] = (), kwargs: Optional[Dict[str, Any]] = None) -> Any:
        node = self._node_of(proc)
        nid = node.node_id
        obj_id = handle.obj_id
        op = handle.spec_class.operation_def(op_name)
        cpu = self.cost_model.cpu
        proc.advance(cpu.operation_dispatch_cost)
        if op.work_units:
            proc.compute(op.work_units)

        # Cluster-wide and per-machine access accounting (one note per
        # invocation, regardless of retries or mid-flight migrations).
        if op.is_write:
            self.stats.note_write(obj_id)
            self.replication.note_write(obj_id, nid)
        else:
            self.replication.note_read(obj_id, nid)

        shard_write_noted = False
        while True:
            mechanism = self._mechanism_of(obj_id)
            if mechanism == MECHANISM_BROADCAST:
                if op.is_write:
                    # One shard-write note per invocation, exactly like the
                    # per-object counters — even if a migration bounces the
                    # invocation out of and back into the broadcast path.
                    # The router attributes it to the object's *current*
                    # shard, so the counters follow the object across moves.
                    if not shard_write_noted:
                        self.router.note_write(obj_id, handle.name)
                        shard_write_noted = True
                        if self.rebalance is not None:
                            self._maybe_start_rebalancer()
                    result = self._broadcast_write(proc, node, handle, op,
                                                   args, kwargs)
                else:
                    result = self._broadcast_read(proc, node, handle, op,
                                                  args, kwargs)
            else:
                proc.absorb_overhead(node.drain_overhead())
                if op.is_write:
                    result = self._primary_write(proc, nid, handle, op, args,
                                                 kwargs)
                else:
                    result = self._primary_read(proc, nid, handle, op, args,
                                                kwargs)
                if result is not MIGRATED and self.dynamic_replication:
                    self._apply_replication_policy(proc, nid, handle)
            if result is not MIGRATED:
                break
            # The object moved to the other mechanism while this invocation
            # was in flight; re-route it under the new policy.

        self._adaptive_check(proc, handle, op.is_write)
        return result

    def _adaptive_check(self, proc: "SimProcess", handle: ObjectHandle,
                        is_write: bool) -> None:
        """Update the object's access window; migrate when the controller says.

        The migration itself runs in a spawned thread on the invoking node:
        the client whose access tripped the threshold continues immediately
        instead of paying the freeze/switch round trips in its own request
        latency.
        """
        controller = self._adaptive_by_obj.get(handle.obj_id)
        if controller is None:
            return
        window = self._obj_access[handle.obj_id]
        if is_write:
            window.note_write()
        else:
            window.note_read()
        if not controller.due(window):
            return
        obj_id = handle.obj_id
        if obj_id in self._migration_pending:
            return
        if obj_id in self._migrating and not self._migration_settled(obj_id):
            return
        node = self._node_of(proc)
        target = controller.desired(window, self._policy_by_obj[obj_id])
        if target is None:
            # No policy move wanted; the controller's second lever is the
            # object's *shard* — relocate it off an overloaded sequencer.
            if self._mechanism_of(obj_id) != MECHANISM_BROADCAST:
                return
            dest = controller.desired_shard(self.router, obj_id)
            if dest is None:
                return
            self._migration_pending.add(obj_id)

            def shard_move_body() -> None:
                mproc = self.sim.current_process
                try:
                    if self.move_shard(mproc, handle, dest):
                        # The window that justified the move is spent; the
                        # next decision must re-earn itself on fresh load.
                        self.router.reset_window()
                finally:
                    self._migration_pending.discard(obj_id)

            node.kernel.spawn_thread(shard_move_body,
                                     name=f"rebalance:{handle.name}")
            return
        self._migration_pending.add(obj_id)

        def migration_body() -> None:
            mproc = self.sim.current_process
            try:
                if self.migrate(mproc, handle, target):
                    window.decay(controller.params.decay)
            finally:
                self._migration_pending.discard(obj_id)

        node.kernel.spawn_thread(migration_body, name=f"migrate:{handle.name}")

    # ------------------------------------------------------------------ #
    # Broadcast mechanism (reads local, writes through the ordered group)
    # ------------------------------------------------------------------ #

    def _broadcast_read(self, proc: "SimProcess", node: "Node",
                        handle: ObjectHandle, op, args, kwargs) -> Any:
        manager = self.managers[node.node_id]
        if not manager.has_valid_copy(handle.obj_id):
            self._await_replica(proc, node.node_id, handle.obj_id)
        proc.absorb_overhead(node.drain_overhead())
        while True:
            result = manager.execute_read(handle.obj_id, op, args, kwargs)
            if result is not RETRY:
                break
            self.stats.guard_retries += 1
            self._wait_for_change(proc, node.node_id, handle.obj_id)
        self.stats.note_read(handle.obj_id, local=True)
        self.history.record_read(proc.name, node.node_id, handle.obj_id,
                                 op.name, args, result,
                                 manager.get(handle.obj_id).version)
        return result

    def _broadcast_write(self, proc: "SimProcess", node: "Node",
                         handle: ObjectHandle, op, args, kwargs) -> Any:
        """Broadcast the write (directly or batched) and await local apply."""
        manager = self.managers[node.node_id]
        obj_id = handle.obj_id
        while True:
            # Capture the epoch *before* confirming the mechanism: a stamp
            # can only ever be stale-old, and a stale-old write sequenced
            # after the switch is dropped and re-issued.  (Reading the epoch
            # afterwards could stamp a post-switch epoch onto a write that
            # bypasses the new primary protocol.)  The epoch and the route
            # are read back to back — no suspension between them — so a
            # write is always broadcast in the group that matches its stamp;
            # a shard move between loop iterations simply re-routes the
            # retry to the destination order.
            epoch = self._epoch_by_obj.get(obj_id, 0)
            shard = self.shard_of(handle)
            group = self.router.group_for(shard)
            if self._mechanism_of(obj_id) != MECHANISM_BROADCAST:
                return MIGRATED
            if not manager.has_valid_copy(obj_id):
                self._await_replica(proc, node.node_id, obj_id)
                continue
            invocation_id = next(self._invocation_ids)
            size = max(16, estimate_size(args) + estimate_size(kwargs or {}) + 16)
            proc.absorb_overhead(node.drain_overhead())
            proc.flush()
            self.stats.broadcast_writes += 1
            # The pending entry is registered only after the (possibly
            # blocking) flush above: a policy switch may resolve pending
            # writes of this object early, and that wake must never race a
            # wait the process is parked in for some other reason.
            pending = _PendingWrite(proc=proc, obj_id=obj_id,
                                    origin=node.node_id, epoch=epoch)
            self._pending[invocation_id] = pending
            if self.batching is not None:
                entry = (obj_id, op.name, args, kwargs or {}, invocation_id,
                         epoch)
                self._batcher(node, shard).enqueue(entry, size)
            else:
                payload = ("op", obj_id, op.name, args, kwargs or {},
                           invocation_id, epoch)
                group.member(node.node_id).broadcast(payload, size=size)
            result = proc.suspend()
            self._pending.pop(invocation_id, None)
            proc.absorb_overhead(node.drain_overhead())
            if result is MIGRATED:
                return MIGRATED
            if result is not RETRY:
                return result
            # Guard rejected the operation everywhere; wait and retry.
            self.stats.guard_retries += 1
            self._wait_for_change(proc, node.node_id, obj_id)

    # -- delivery (runs at every member, in per-shard total order) ------- #

    def _on_deliver(self, node_id: int, shard: int,
                    delivered: DeliveredMessage) -> None:
        payload = delivered.payload
        kind = payload[0]
        manager = self.managers[node_id]
        node = self.cluster.node(node_id)
        cpu = self.cost_model.cpu
        if kind == "create":
            _, obj_id, spec_class, args, kwargs, invocation_id = payload
            if not manager.has_valid_copy(obj_id):
                instance = spec_class.create(args, kwargs)
                manager.install(obj_id, self.handle(obj_id).name, instance)
                self.stats.replicas_created += 1
            node.charge_overhead(cpu.operation_dispatch_cost)
            self._wake_replica_waiters(node_id, obj_id)
            if delivered.origin == node_id:
                self._resolve(invocation_id, None)
            return
        if kind == "op":
            _, obj_id, op_name, args, kwargs, invocation_id, epoch = payload
            self._apply_one(node_id, manager, node, obj_id, op_name, args,
                            kwargs, invocation_id, epoch, delivered.origin,
                            delivered.seqno)
            return
        if kind == "batch":
            _, entries = payload
            for obj_id, op_name, args, kwargs, invocation_id, epoch in entries:
                self._apply_one(node_id, manager, node, obj_id, op_name, args,
                                kwargs, invocation_id, epoch, delivered.origin,
                                delivered.seqno)
            if delivered.origin == node_id:
                batcher = self._batchers.get((node_id, shard))
                if batcher is not None:
                    batcher.on_batch_delivered()
            return
        if kind == "switch":
            self._apply_switch(node_id, payload, delivered.origin)
            return
        if kind == "shard-switch":
            self._apply_shard_switch(node_id, payload, delivered.origin)
            return
        if kind == "shard-arrive":
            self._apply_shard_arrive(node_id, payload, delivered.origin)
            return
        raise RtsError(f"unknown broadcast RTS payload kind {kind!r}")

    def _apply_one(self, node_id: int, manager, node, obj_id: int,
                   op_name: str, args, kwargs, invocation_id: int, epoch: int,
                   origin: int, seqno: int) -> None:
        """Apply one delivered write (standalone or decoded from a batch)."""
        delivered_up_to = self._node_epoch.get((node_id, obj_id), 0)
        if epoch > delivered_up_to:
            # A post-switch write outran this member's delivery of the
            # switch itself — possible only across *groups* (a shard move's
            # destination order is not synchronised with its source order)
            # or when a new-epoch write is sequenced just ahead of its own
            # switch message.  Defer it: it applies, in its own group's
            # order, the moment the local switch lands.  Every member makes
            # the same decision at the same position of the same group
            # order, so the object's global write order stays identical
            # everywhere.
            self._future_writes.setdefault((node_id, obj_id), []).append(
                (op_name, args, kwargs, invocation_id, epoch, origin, seqno))
            return
        if epoch < delivered_up_to:
            # The write was sequenced after a switch it predates.  Every
            # member drops it at the same point in the total order; the
            # origin re-issues it under the object's new policy or route.
            if origin == node_id:
                self._resolve(invocation_id, MIGRATED)
            return
        handle = self.handle(obj_id)
        op = handle.spec_class.operation_def(op_name)
        cpu = self.cost_model.cpu
        if not manager.has_valid_copy(obj_id):
            # Per-shard total order guarantees the create precedes every
            # operation, so a missing replica is a protocol error worth
            # failing on.
            raise RtsError(
                f"node {node_id} received operation {op_name!r} for object "
                f"{obj_id} before its create message"
            )
        result = manager.apply_write(obj_id, op, args, kwargs,
                                     local_origin=origin == node_id)
        # Applying the update costs CPU on every machine that holds a
        # replica: this is the overhead that limits ACP's speedup.
        node.charge_overhead(cpu.operation_dispatch_cost +
                             op.work_units * cpu.work_unit_time)
        if result is not RETRY:
            self.history.record_write(node_id, obj_id, op_name, args, seqno,
                                      manager.get(obj_id).version)
        if origin == node_id:
            self._resolve(invocation_id, result)

    def _flush_future_writes(self, node_id: int, obj_id: int) -> None:
        """Apply deferred destination-order writes after a switch landed."""
        entries = self._future_writes.pop((node_id, obj_id), [])
        if not entries:
            return
        manager = self.managers[node_id]
        node = self.cluster.node(node_id)
        requeue: List[Tuple[Any, ...]] = []
        current = self._node_epoch.get((node_id, obj_id), 0)
        for entry in entries:
            op_name, args, kwargs, invocation_id, epoch, origin, seqno = entry
            if epoch > current:
                requeue.append(entry)
                continue
            self._apply_one(node_id, manager, node, obj_id, op_name, args,
                            kwargs, invocation_id, epoch, origin, seqno)
        if requeue:
            self._future_writes[(node_id, obj_id)] = requeue

    def _resolve(self, invocation_id: int, result: Any) -> None:
        pending = self._pending.get(invocation_id)
        if pending is None or pending.resolved:
            return
        pending.resolved = True
        pending.result = result
        pending.proc.wake(result)

    # -- blocking helpers ------------------------------------------------ #

    def _await_replica(self, proc: "SimProcess", node_id: int, obj_id: int) -> None:
        """Block until this node holds a replica of ``obj_id``."""
        key = (node_id, obj_id)
        self._replica_waiters.setdefault(key, []).append(proc)
        proc.suspend()

    def _wake_replica_waiters(self, node_id: int, obj_id: int) -> None:
        for proc in self._replica_waiters.pop((node_id, obj_id), []):
            proc.wake()

    def _wait_for_change(self, proc: "SimProcess", node_id: int, obj_id: int) -> None:
        """Block until the local replica of ``obj_id`` is modified."""
        replica = self.managers[node_id].get(obj_id)
        replica.on_next_change(lambda: proc.wake())
        proc.suspend()

    # ------------------------------------------------------------------ #
    # Primary-copy mechanism (reads local-or-RPC, writes via the primary)
    # ------------------------------------------------------------------ #

    def _primary_read(self, proc: "SimProcess", nid: int, handle: ObjectHandle,
                      op, args, kwargs) -> Any:
        manager = self.managers[nid]
        if manager.has_valid_copy(handle.obj_id):
            replica = manager.get(handle.obj_id)
            # Reads wait while the copy is locked by an in-flight update.
            while replica.locked:
                replica.on_next_change(lambda p=proc: p.wake())
                proc.suspend()
            while True:
                result = manager.execute_read(handle.obj_id, op, args, kwargs)
                if result is not RETRY:
                    break
                self.stats.guard_retries += 1
                replica.on_next_change(lambda p=proc: p.wake())
                proc.suspend()
            self.stats.note_read(handle.obj_id, local=True)
            return result
        # No local copy: remote read at the primary.
        primary = self.directory.primary_of(handle.obj_id)
        while True:
            result = self.cluster.rpc_for(nid).call(
                proc, primary, PORT_READ,
                payload={"obj_id": handle.obj_id, "op_name": op.name,
                         "args": args, "kwargs": kwargs or {}},
                size=16 + estimate_size(args),
            )
            if isinstance(result, str) and result == MARKER_MIGRATED:
                return MIGRATED
            if not (isinstance(result, str) and result == MARKER_RETRY):
                self.stats.note_read(handle.obj_id, local=False)
                return result
            self.stats.guard_retries += 1
            proc.hold(self.cost_model.cpu.protocol_cost * 4)

    def _serve_read(self, nid: int, request: RpcRequest) -> Any:
        payload = request.payload
        handle = self.handle(payload["obj_id"])
        op = handle.spec_class.operation_def(payload["op_name"])
        manager = self.managers[nid]
        if (not manager.has_valid_copy(payload["obj_id"])
                or self._mechanism_of(payload["obj_id"]) != MECHANISM_PRIMARY):
            # The object migrated away while the read was in flight; the
            # client re-routes it under the new policy.
            return MARKER_MIGRATED
        result = manager.execute_read(payload["obj_id"], op, payload["args"],
                                      payload["kwargs"])
        if result is RETRY:
            return MARKER_RETRY
        return result

    def _primary_write(self, proc: "SimProcess", nid: int, handle: ObjectHandle,
                       op, args, kwargs) -> Any:
        obj_id = handle.obj_id
        while True:
            if self._mechanism_of(obj_id) != MECHANISM_PRIMARY:
                return MIGRATED
            primary = self.directory.primary_of(obj_id)
            if primary == nid:
                # The primary must have applied every pre-switch write (i.e.
                # delivered the switch) before it can serialise new ones.
                self._await_switch(proc, nid, obj_id)
                if self._mechanism_of(obj_id) != MECHANISM_PRIMARY:
                    return MIGRATED
                if obj_id in self._frozen:
                    proc.hold(self.cost_model.cpu.protocol_cost * 4)
                    continue
                if self.directory.primary_of(obj_id) != nid:
                    # The primary moved while this write was parked across
                    # the switch; route it to the new one.
                    continue
                self.stats.local_writes += 1
                result = self._protocol_for_obj(obj_id).primary_write(
                    proc, obj_id, op, args, kwargs)
            else:
                self.stats.rpc_writes += 1
                result = self.cluster.rpc_for(nid).call(
                    proc, primary, PORT_WRITE,
                    payload={"obj_id": obj_id, "op_name": op.name,
                             "args": args, "kwargs": kwargs or {}},
                    size=16 + estimate_size(args) + estimate_size(kwargs or {}),
                )
                if isinstance(result, str) and result == MARKER_MIGRATED:
                    return MIGRATED
                if isinstance(result, str) and result == MARKER_MIGRATING:
                    proc.hold(self.cost_model.cpu.protocol_cost * 4)
                    continue
                if isinstance(result, str) and result == MARKER_RETRY:
                    result = RETRY
            if result is not RETRY:
                return result
            # Guarded write rejected: wait a little and retry at the primary.
            self.stats.guard_retries += 1
            proc.hold(self.cost_model.cpu.protocol_cost * 4)

    def _serve_write(self, nid: int, request: RpcRequest) -> Any:
        payload = request.payload
        obj_id = payload["obj_id"]
        handle = self.handle(obj_id)
        op = handle.spec_class.operation_def(payload["op_name"])
        proc = self.sim.current_process
        if proc is None:
            raise RtsError("write handler must run in a blocking-capable context")
        if self._mechanism_of(obj_id) != MECHANISM_PRIMARY:
            return MARKER_MIGRATED
        self._await_switch(proc, nid, obj_id)
        if self._mechanism_of(obj_id) != MECHANISM_PRIMARY:
            return MARKER_MIGRATED
        if obj_id in self._frozen:
            return MARKER_MIGRATING
        if self.directory.primary_of(obj_id) != nid:
            # Stale primary: the object migrated here and away again.
            return MARKER_MIGRATING
        result = self._protocol_for_obj(obj_id).primary_write(
            proc, obj_id, op, payload["args"], payload["kwargs"])
        if result is RETRY:
            return MARKER_RETRY
        return result

    # -- dynamic replication --------------------------------------------- #

    def _apply_replication_policy(self, proc: "SimProcess", nid: int,
                                  handle: ObjectHandle) -> None:
        manager = self.managers[nid]
        has_copy = manager.has_valid_copy(handle.obj_id)
        is_primary = self.directory.primary_of(handle.obj_id) == nid
        if self.replication.should_fetch_copy(handle.obj_id, nid, has_copy):
            self._fetch_copy(proc, nid, handle)
        elif self.replication.should_drop_copy(handle.obj_id, nid, has_copy,
                                               is_primary):
            manager.discard(handle.obj_id)
            self.directory.remove_copy(handle.obj_id, nid)
            self.stats.replicas_dropped += 1
            primary = self.directory.primary_of(handle.obj_id)
            self.send_protocol_message(nid, primary, KIND_DROP,
                                       {"obj_id": handle.obj_id, "node": nid})

    def _fetch_copy(self, proc: "SimProcess", nid: int, handle: ObjectHandle) -> None:
        """Fetch the object state from the primary and install a local copy."""
        primary = self.directory.primary_of(handle.obj_id)
        if primary == nid:
            return
        reply = self.cluster.rpc_for(nid).call(
            proc, primary, PORT_FETCH,
            payload={"obj_id": handle.obj_id, "requester": nid},
            size=24,
        )
        if isinstance(reply, str) and reply == MARKER_MIGRATED:
            return
        state, version = reply
        if self._mechanism_of(handle.obj_id) != MECHANISM_PRIMARY:
            return
        instance = handle.spec_class()
        instance.unmarshal_state(state)
        manager = self.managers[nid]
        manager.discard(handle.obj_id)
        manager.install(handle.obj_id, handle.name, instance, version=version)
        self.stats.replicas_created += 1

    def _serve_fetch(self, nid: int, request: RpcRequest):
        payload = request.payload
        obj_id = payload["obj_id"]
        proc = self.sim.current_process
        if self._mechanism_of(obj_id) != MECHANISM_PRIMARY:
            return MARKER_MIGRATED
        if proc is not None:
            self._await_switch(proc, nid, obj_id)
        if self._mechanism_of(obj_id) != MECHANISM_PRIMARY:
            return MARKER_MIGRATED
        manager = self.managers[nid]
        replica = manager.get(obj_id)
        # Do not hand out state in the middle of a write's critical section.
        while replica.locked and proc is not None:
            replica.on_next_change(lambda p=proc: p.wake())
            proc.suspend()
        self.directory.add_copy(obj_id, payload["requester"])
        state = replica.instance.marshal_state()
        return RpcReply(payload=(state, replica.version),
                        size=replica.instance.state_size() + 16)

    # -- protocol plumbing used by the coherence strategies --------------- #

    def new_transaction(self, expected_acks: int,
                        destinations: Optional[List[int]] = None) -> int:
        txn_id = next(self._txn_ids)
        self._transactions[txn_id] = _Transaction(
            remaining=expected_acks,
            destinations=set(destinations or ()))
        return txn_id

    def await_acks(self, proc: "SimProcess", txn_id: int) -> None:
        txn = self._transactions[txn_id]
        if txn.remaining > 0:
            txn.proc = proc
            proc.suspend()
        del self._transactions[txn_id]

    def send_ack(self, from_node: int, txn_id: int) -> None:
        primary_node = self._ack_destinations.get(txn_id)
        if primary_node is None:
            return
        self.send_protocol_message(from_node, primary_node, KIND_ACK,
                                   {"txn_id": txn_id, "node": from_node})

    def send_protocol_message(self, src: int, dst: int, kind: str,
                              payload: Dict[str, Any]) -> None:
        if kind in (KIND_UPDATE,):
            size = 32 + estimate_size(payload.get("args", ())) + estimate_size(
                payload.get("kwargs", {}))
        else:
            size = 32
        node = self.cluster.node(src)
        msg = node.make_message(dst, kind, payload=payload, size=size)
        node.send(msg)
        if kind in (KIND_INVALIDATE, KIND_UPDATE):
            self._ack_destinations[payload["txn_id"]] = src

    # -- incoming protocol messages --------------------------------------- #

    def _defer_if_lagging(self, nid: int, kind: str,
                          payload: Dict[str, Any]) -> bool:
        """Queue a coherence message that raced ahead of a policy switch.

        A member that has not yet delivered the switch establishing the
        current primary regime must not apply (or discard state for)
        coherence traffic from that regime: the totally-ordered writes the
        switch is sequenced after may still be undelivered locally.
        """
        obj_id = payload["obj_id"]
        key = (nid, obj_id)
        if self._node_epoch.get(key, 0) >= self._epoch_by_obj.get(obj_id, 0):
            return False
        self._deferred.setdefault(key, []).append((kind, payload))
        return True

    def _flush_deferred(self, node_id: int, obj_id: int) -> None:
        handlers = {
            "invalidate": self._on_invalidate,
            "update": self._on_update,
            "unlock": self._on_unlock,
        }
        for kind, payload in self._deferred.pop((node_id, obj_id), []):
            if self._mechanism_of(obj_id) == MECHANISM_PRIMARY:
                handlers[kind](node_id, payload)
            elif "txn_id" in payload:
                # The regime that sent this message is gone; acknowledge so
                # its primary (if still waiting) is not left hanging.
                self.send_ack(node_id, payload["txn_id"])

    def _on_invalidate(self, nid: int, payload: Dict[str, Any]) -> None:
        if self._defer_if_lagging(nid, "invalidate", payload):
            return
        self.protocols["invalidation"].handle_invalidate(nid, payload)

    def _on_update(self, nid: int, payload: Dict[str, Any]) -> None:
        if self._defer_if_lagging(nid, "update", payload):
            return
        self.protocols["update"].handle_update(nid, payload)

    def _on_unlock(self, nid: int, payload: Dict[str, Any]) -> None:
        if self._defer_if_lagging(nid, "unlock", payload):
            return
        self.protocols["update"].handle_unlock(nid, payload)

    def _on_ack(self, nid: int, payload: Dict[str, Any]) -> None:
        txn = self._transactions.get(payload["txn_id"])
        if txn is None:
            return
        if txn.destinations:
            # An ack only counts while its sender still owes one: a node
            # that crashed with its ack in flight already had its debt
            # released by the crash listener, and double-counting it would
            # complete the fan-out before the live secondaries applied.
            if payload.get("node") not in txn.destinations:
                return
            txn.destinations.discard(payload.get("node"))
        txn.remaining -= 1
        if txn.remaining <= 0 and txn.proc is not None:
            txn.proc.wake()

    def _on_node_crash(self, crashed: int) -> None:
        """Release every acknowledgement the dead machine will never send."""
        for txn in list(self._transactions.values()):
            if crashed in txn.destinations:
                txn.destinations.discard(crashed)
                txn.remaining -= 1
                if txn.remaining <= 0 and txn.proc is not None:
                    txn.proc.wake()
        # Its copies die with it: prune the directory so later fan-outs and
        # migrations never count on the dead member.
        for obj_id in self.directory.objects():
            entry = self.directory.entry(obj_id)
            if crashed != entry.primary_node:
                entry.copyset.discard(crashed)

    def _on_drop(self, nid: int, payload: Dict[str, Any]) -> None:
        # A secondary informs the primary that it discarded its copy; the
        # directory may already reflect this (the secondary updates it
        # directly), so this is a tolerant no-op if so.
        self.directory.entry(payload["obj_id"]).copyset.discard(payload["node"])

    def protocol_for_secondary(self, name: str):
        """Return the protocol object implementing secondary-side handling."""
        try:
            return self.protocols[name]
        except KeyError:
            raise RtsError(f"unknown coherence protocol {name!r}") from None

    # ------------------------------------------------------------------ #
    # Live migration between policies
    # ------------------------------------------------------------------ #

    def migrate(self, proc: "SimProcess", handle: ObjectHandle,
                policy: Any, primary: Optional[int] = None) -> bool:
        """Move ``handle`` under ``policy`` while the cluster runs.

        ``primary`` pins the primary copy onto a specific (live,
        copy-holding) node when migrating to primary-copy management; by
        default the node with the most observed writes is chosen.  Note that
        primary-copy management has no primary-failure recovery (as in the
        paper), so callers racing node crashes should place the primary on a
        node expected to survive.

        Returns ``True`` when a migration was performed, ``False`` when the
        object already runs under the requested policy or another migration
        of it is still being delivered.  Sequential consistency holds across
        the switch (see the module docstring for the argument).
        """
        target = management_policy(policy, default=self.default_policy)
        if isinstance(target, AdaptivePolicy):
            raise ConfigurationError(
                "migrate() takes a fixed policy; attach adaptive control at "
                "create_object(policy='adaptive') time")
        obj_id = handle.obj_id
        current = self._policy_by_obj[obj_id]
        if target.name == current:
            return False
        # Two guards: one for a migrate() call still in its (possibly
        # blocking) pre-switch phase, one for a broadcast switch still being
        # delivered at some member.
        if obj_id in self._migrate_in_progress:
            return False
        if obj_id in self._migrating and not self._migration_settled(obj_id):
            return False
        self._migrating.discard(obj_id)
        current_mechanism = self._mechanism_of(obj_id)
        self._migrate_in_progress.add(obj_id)
        try:
            if target.mechanism == current_mechanism == MECHANISM_PRIMARY:
                # Same mechanism, different coherence protocol: pure
                # bookkeeping, no broadcast needed (so this works on
                # point-to-point-only networks too).  Secondary-side
                # handling routes by message kind, so writes in flight
                # under the old protocol complete untouched.
                self._policy_by_obj[obj_id] = target.name
                self.stats.migrations += 1
                self.migrations.append(MigrationRecord(
                    obj_id=obj_id, name=handle.name, target=target.name,
                    epoch=self._epoch_by_obj.get(obj_id, 0),
                    primary_node=self.directory.primary_of(obj_id)))
                return True
            # Mechanism changes ride the object's shard broadcast and may
            # land it under primary-copy management: both wirings needed.
            self._ensure_router()
            self._ensure_primary_services()
            self._migrating.add(obj_id)
            if target.mechanism == MECHANISM_PRIMARY:
                self._migrate_to_primary(proc, handle, target.name,
                                         primary_override=primary)
            else:
                self._migrate_to_broadcast(proc, handle)
            return True
        finally:
            self._migrate_in_progress.discard(obj_id)

    def _migration_settled(self, obj_id: int) -> bool:
        """Has every live member delivered the object's latest switch?

        A shard move broadcasts in two groups; it settles only when the
        source drain *and* the destination arrival landed at every live
        member, so back-to-back moves never leave two epochs in flight.
        """
        epoch = self._epoch_by_obj.get(obj_id, 0)
        dest_epoch = self._dest_epoch_required.get(obj_id, 0)
        settled = all(
            self._node_epoch.get((node.node_id, obj_id), 0) >= epoch
            and self._dest_epoch.get((node.node_id, obj_id), 0) >= dest_epoch
            for node in self.cluster.nodes if node.alive)
        if settled:
            self._migrating.discard(obj_id)
        return settled

    def _choose_primary(self, obj_id: int, copyset: List[int]) -> int:
        """The copy-holding live node with the most observed writes."""
        decider = self.replication.decider

        def writes_on(nid: int) -> int:
            return decider.stats_for(obj_id, nid).total_writes

        best = max(copyset, key=lambda nid: (writes_on(nid), -nid))
        if writes_on(best) == 0:
            creator = self._created_on.get(obj_id)
            if creator in copyset:
                return creator
        return best

    def _migrate_to_primary(self, proc: "SimProcess", handle: ObjectHandle,
                            target: str,
                            primary_override: Optional[int] = None) -> None:
        """broadcast -> primary: flip routing, then switch in total order."""
        obj_id = handle.obj_id
        node = self._node_of(proc)
        copyset = sorted(
            n.node_id for n in self.cluster.nodes
            if n.alive and self.managers[n.node_id].has_valid_copy(obj_id))
        if not copyset:
            raise RtsError(f"no live replica of object {obj_id} to migrate")
        if primary_override is not None:
            if primary_override not in copyset:
                raise RtsError(
                    f"node {primary_override} holds no live replica of "
                    f"object {obj_id}; cannot become its primary")
            primary = primary_override
        else:
            primary = self._choose_primary(obj_id, copyset)
        epoch = self._epoch_by_obj.get(obj_id, 0) + 1
        # Flip the global routing first: new writes head for the primary,
        # where they wait until it has delivered the switch below.
        self._epoch_by_obj[obj_id] = epoch
        self._policy_by_obj[obj_id] = target
        self._register_primary(obj_id, primary, copyset)
        self.stats.migrations += 1
        self.stats.migrations_to_primary += 1
        self.migrations.append(MigrationRecord(
            obj_id=obj_id, name=handle.name, target=target, epoch=epoch,
            primary_node=primary))
        self._broadcast_switch(proc, node, handle,
                               ("switch", obj_id, target, primary, None, 0,
                                epoch, None))

    def _migrate_to_broadcast(self, proc: "SimProcess",
                              handle: ObjectHandle) -> None:
        """primary -> broadcast: freeze, snapshot, switch carrying the state."""
        obj_id = handle.obj_id
        node = self._node_of(proc)
        primary = self.directory.primary_of(obj_id)
        if node.node_id == primary:
            state, version = self._freeze_and_snapshot(proc, primary, obj_id)
        else:
            state, version = self.cluster.rpc_for(node.node_id).call(
                proc, primary, PORT_MIGRATE, payload={"obj_id": obj_id},
                size=24)
        epoch = self._epoch_by_obj.get(obj_id, 0) + 1
        self._epoch_by_obj[obj_id] = epoch
        self._policy_by_obj[obj_id] = "broadcast"
        # New writes now route through the broadcast; ones sequenced before
        # the switch below are dropped by the epoch check and re-issued.
        self._frozen.discard(obj_id)
        self.stats.migrations += 1
        self.stats.migrations_to_broadcast += 1
        self.migrations.append(MigrationRecord(
            obj_id=obj_id, name=handle.name, target="broadcast", epoch=epoch,
            primary_node=None))
        self._broadcast_switch(proc, node, handle,
                               ("switch", obj_id, "broadcast", -1, state,
                                version, epoch, None),
                               size=32 + estimate_size(state))

    def _freeze_and_snapshot(self, proc: "SimProcess", primary: int,
                             obj_id: int) -> Tuple[Any, int]:
        """Drain in-flight writes at the primary, freeze it, snapshot state."""
        self._await_switch(proc, primary, obj_id)
        replica = self.managers[primary].get(obj_id)
        while replica.locked:
            replica.on_next_change(lambda p=proc: p.wake())
            proc.suspend()
        self._frozen.add(obj_id)
        return replica.instance.marshal_state(), replica.version

    def _serve_migrate(self, nid: int, request: RpcRequest) -> RpcReply:
        proc = self.sim.current_process
        if proc is None:
            raise RtsError("migration freeze must run in a blocking context")
        obj_id = request.payload["obj_id"]
        state, version = self._freeze_and_snapshot(proc, nid, obj_id)
        size = self.managers[nid].get(obj_id).instance.state_size() + 16
        return RpcReply(payload=(state, version), size=size)

    def _register_primary(self, obj_id: int, primary: int,
                          copyset: List[int]) -> None:
        try:
            entry = self.directory.entry(obj_id)
        except RtsError:
            entry = self.directory.register(obj_id, primary)
        entry.primary_node = primary
        entry.copyset = set(copyset) | {primary}

    def _broadcast_switch(self, proc: "SimProcess", node: "Node",
                          handle: ObjectHandle, payload: Tuple[Any, ...],
                          size: int = 64, shard: Optional[int] = None) -> None:
        """Send the switch through the object's shard and await local delivery.

        ``shard`` overrides the route for cross-group moves, whose drain
        switch must ride the *source* group after the router already points
        at the destination.
        """
        if shard is None:
            shard = self.shard_of(handle)
        self.router.shard_stats[shard].note_migration()
        invocation_id = next(self._invocation_ids)
        self._pending[invocation_id] = _PendingWrite(proc=proc)
        proc.advance(self.cost_model.cpu.operation_dispatch_cost)
        proc.absorb_overhead(node.drain_overhead())
        proc.flush()
        self.router.group_for(shard).member(node.node_id).broadcast(
            payload + (invocation_id,), size=size)
        proc.suspend()
        self._pending.pop(invocation_id, None)
        proc.absorb_overhead(node.drain_overhead())

    def _apply_switch(self, node_id: int, payload: Tuple[Any, ...],
                      origin: int) -> None:
        """One member's totally-ordered switch point for one object.

        ``scope`` narrows a snapshot-carrying switch to the listed members
        (primary relocation refreshes only the copy-holding machines); a
        ``None`` scope is the classic primary -> broadcast transfer that
        installs a replica everywhere.
        """
        (_, obj_id, target, primary_node, state, version, epoch, scope,
         invocation_id) = payload
        key = (node_id, obj_id)
        self._node_epoch[key] = epoch
        manager = self.managers[node_id]
        node = self.cluster.node(node_id)
        node.charge_overhead(self.cost_model.cpu.operation_dispatch_cost)
        replica = manager.replicas.get(obj_id)
        if state is not None and (scope is None or node_id in scope):
            # Install the transferred snapshot.  Nodes holding a (secondary
            # or primary) copy are updated in place so processes already
            # waiting on the replica keep their hooks.
            if replica is not None:
                replica.instance.unmarshal_state(state)
                replica.version = version
                replica.valid = True
                replica.is_primary = node_id == primary_node
                replica.locked = False
                replica.notify_changed()
            else:
                instance = self.handle(obj_id).spec_class()
                instance.unmarshal_state(state)
                manager.install(obj_id, self.handle(obj_id).name, instance,
                                version=version,
                                is_primary=node_id == primary_node)
                self.stats.replicas_created += 1
            self._wake_replica_waiters(node_id, obj_id)
        elif state is None:
            # broadcast -> primary: the (identical) replicas become the
            # primary and secondary copies; no state moves.
            if replica is not None:
                replica.is_primary = node_id == primary_node
        # Deferred writes first (none exist unless a new-epoch broadcast was
        # sequenced ahead of this switch; they apply on the fresh state),
        # then coherence traffic that raced ahead of the switch.
        self._flush_future_writes(node_id, obj_id)
        self._flush_deferred(node_id, obj_id)
        # Release this member's own pending pre-switch writes right away:
        # deliveries arrive in sequence order, so a write of this object
        # still pending here was not sequenced before the switch — it is
        # guaranteed to be dropped by the epoch check at every member, and
        # its client can re-issue under the new policy without waiting for
        # the doomed broadcast to drain through the sequencer.
        for pending_id, pending in list(self._pending.items()):
            if (pending.obj_id == obj_id and pending.origin == node_id
                    and pending.epoch < epoch):
                self._resolve(pending_id, MIGRATED)
        for proc in self._switch_waiters.pop(key, []):
            proc.wake()
        if origin == node_id:
            self._resolve(invocation_id, None)
        self._migration_settled(obj_id)

    def _await_switch(self, proc: "SimProcess", node_id: int, obj_id: int) -> None:
        """Block until ``node_id`` has delivered the object's latest switch."""
        while (self._node_epoch.get((node_id, obj_id), 0)
               < self._epoch_by_obj.get(obj_id, 0)):
            key = (node_id, obj_id)
            self._switch_waiters.setdefault(key, []).append(proc)
            proc.suspend()

    # ------------------------------------------------------------------ #
    # Cross-group rebalancing: shard moves, live growth, primary seats
    # ------------------------------------------------------------------ #

    def move_shard(self, proc: "SimProcess", handle: ObjectHandle,
                   new_shard: int) -> bool:
        """Move ``handle`` onto broadcast group ``new_shard`` while it runs.

        For a broadcast-managed object this is the drain-and-switch barrier
        described in the module docstring: the route flips first (new writes
        head for the destination order under a fresh epoch), a
        ``shard-switch`` drains the source order, and a ``shard-arrive``
        lands in the destination order; stale writes are dropped identically
        everywhere and re-issued by their origin, so no write is lost,
        duplicated, or reordered within its client's FIFO.  A primary-copy
        object carries no ordered broadcast traffic, so its move is pure
        routing bookkeeping (the next switch simply rides the new group).

        Returns ``True`` when a move was performed, ``False`` when the
        object already lives on ``new_shard`` or another switch of it is
        still in flight.
        """
        router = self._ensure_router()
        obj_id = handle.obj_id
        if not 0 <= new_shard < router.num_shards:
            raise ConfigurationError(
                f"cannot move {handle.name!r} to shard {new_shard}: only "
                f"{router.num_shards} shards exist")
        src = self.shard_of(handle)
        if src == new_shard:
            return False
        if obj_id in self._migrate_in_progress:
            return False
        if obj_id in self._migrating and not self._migration_settled(obj_id):
            return False
        self._migrating.discard(obj_id)
        self._migrate_in_progress.add(obj_id)
        try:
            if self._mechanism_of(obj_id) != MECHANISM_BROADCAST:
                router.move(obj_id, new_shard)
                self.stats.shard_moves += 1
                self.shard_moves.append(ShardMoveRecord(
                    obj_id=obj_id, name=handle.name, src=src, dst=new_shard,
                    epoch=self._epoch_by_obj.get(obj_id, 0)))
                return True
            node = self._node_of(proc)
            self._migrating.add(obj_id)
            epoch = self._epoch_by_obj.get(obj_id, 0) + 1
            self._epoch_by_obj[obj_id] = epoch
            self._dest_epoch_required[obj_id] = epoch
            router.move(obj_id, new_shard)
            self.stats.shard_moves += 1
            self.shard_moves.append(ShardMoveRecord(
                obj_id=obj_id, name=handle.name, src=src, dst=new_shard,
                epoch=epoch))
            # Drain: every source-group member retires the old route at the
            # same position of the source total order.
            self._broadcast_switch(
                proc, node, handle,
                ("shard-switch", obj_id, src, new_shard, epoch), shard=src)
            # Arrive: prove the destination group's sequencing path carries
            # the object before reporting the move complete.
            self._broadcast_switch(
                proc, node, handle,
                ("shard-arrive", obj_id, src, new_shard, epoch),
                shard=new_shard)
            return True
        finally:
            self._migrate_in_progress.discard(obj_id)

    def _apply_shard_switch(self, node_id: int, payload: Tuple[Any, ...],
                            origin: int) -> None:
        """One member's drain point in the *source* group's total order."""
        (_, obj_id, src, dst, epoch, invocation_id) = payload
        key = (node_id, obj_id)
        self._node_epoch[key] = epoch
        node = self.cluster.node(node_id)
        node.charge_overhead(self.cost_model.cpu.operation_dispatch_cost)
        # Destination-order writes that outran this switch apply now, on the
        # state every pre-switch source write has already reached.
        self._flush_future_writes(node_id, obj_id)
        # Our own still-pending stale writes are doomed (they can only be
        # sequenced behind this switch); release them for re-issue into the
        # destination order without waiting for the drop to drain through.
        for pending_id, pending in list(self._pending.items()):
            if (pending.obj_id == obj_id and pending.origin == node_id
                    and pending.epoch < epoch):
                self._resolve(pending_id, MIGRATED)
        for proc in self._switch_waiters.pop(key, []):
            proc.wake()
        if origin == node_id:
            self._resolve(invocation_id, None)
        self._migration_settled(obj_id)

    def _apply_shard_arrive(self, node_id: int, payload: Tuple[Any, ...],
                            origin: int) -> None:
        """One member's arrival marker in the *destination* group's order."""
        (_, obj_id, src, dst, epoch, invocation_id) = payload
        key = (node_id, obj_id)
        node = self.cluster.node(node_id)
        node.charge_overhead(self.cost_model.cpu.operation_dispatch_cost)
        if epoch > self._dest_epoch.get(key, 0):
            self._dest_epoch[key] = epoch
        if origin == node_id:
            self._resolve(invocation_id, None)
        self._migration_settled(obj_id)

    def _heaviest_writer(self, obj_id: int) -> Optional[int]:
        """The live node with the most observed writes to ``obj_id``."""
        decider = self.replication.decider
        live = [node.node_id for node in self.cluster.nodes if node.alive]
        if not live:
            return None
        best = max(live, key=lambda nid: (
            decider.stats_for(obj_id, nid).total_writes, -nid))
        if decider.stats_for(obj_id, best).total_writes == 0:
            return None
        return best

    def relocate_primary(self, proc: "SimProcess", handle: ObjectHandle,
                         target: Optional[int] = None) -> bool:
        """Move a primary-copy object's primary seat to ``target``.

        ``target`` defaults to the object's heaviest writer (per the
        dynamic-replication statistics), turning remote-write RPC streams
        into local writes.  The relocation reuses the migration machinery:
        the object is frozen at the old primary (in-flight coherence writes
        drain first), its snapshot rides a totally-ordered switch scoped to
        the copy-holding members plus the target, and the new primary
        refuses writes until it has delivered that switch — so every write
        lands exactly once, on exactly one primary.

        Returns ``True`` when the seat moved, ``False`` when the target
        already holds it (or no traffic suggests a better seat).
        """
        obj_id = handle.obj_id
        if self._mechanism_of(obj_id) != MECHANISM_PRIMARY:
            raise RtsError(
                f"{handle.name!r} is broadcast-managed; relocate_primary "
                "applies to primary-copy objects (use move_shard instead)")
        if target is None:
            target = self._heaviest_writer(obj_id)
            if target is None:
                return False
        if not self.cluster.node(target).alive:
            raise RtsError(f"node {target} is crashed and cannot become "
                           f"the primary of {handle.name!r}")
        if target == self.directory.primary_of(obj_id):
            return False
        if obj_id in self._migrate_in_progress:
            return False
        if obj_id in self._migrating and not self._migration_settled(obj_id):
            return False
        self._migrating.discard(obj_id)
        self._ensure_router()
        self._migrate_in_progress.add(obj_id)
        try:
            node = self._node_of(proc)
            primary = self.directory.primary_of(obj_id)
            if node.node_id == primary:
                state, version = self._freeze_and_snapshot(proc, primary,
                                                           obj_id)
            else:
                state, version = self.cluster.rpc_for(node.node_id).call(
                    proc, primary, PORT_MIGRATE, payload={"obj_id": obj_id},
                    size=24)
            self._migrating.add(obj_id)
            epoch = self._epoch_by_obj.get(obj_id, 0) + 1
            self._epoch_by_obj[obj_id] = epoch
            entry = self.directory.entry(obj_id)
            scope = tuple(sorted(set(entry.copyset) | {primary, target}))
            entry.primary_node = target
            entry.copyset = set(scope)
            self._frozen.discard(obj_id)
            self.stats.primary_relocations += 1
            self.relocations.append((obj_id, primary, target))
            self._broadcast_switch(
                proc, node, handle,
                ("switch", obj_id, self._policy_by_obj[obj_id], target,
                 state, version, epoch, scope),
                size=32 + estimate_size(state))
            return True
        finally:
            self._migrate_in_progress.discard(obj_id)

    # -- the background rebalancing controller --------------------------- #

    def _maybe_start_rebalancer(self) -> None:
        """(Re)start the controller loop when write traffic flows.

        The controller is armed by the first broadcast write (and re-armed
        by the first write after it went quiet), not at construction: a
        long, write-free setup phase must not run its quiet-round budget
        down before the workload even starts.
        """
        if self._rebalancer_active:
            return
        # The controller must live on a machine that can actually broadcast
        # the switches; if its host dies later, the loop exits and the next
        # write re-arms a controller on a surviving node.
        host = next((node for node in self.cluster.nodes if node.alive), None)
        if host is None:
            return
        self._rebalancer_active = True
        host.kernel.spawn_thread(self._rebalance_body,
                                 name="shard-rebalancer")

    def _rebalance_body(self) -> None:
        """Periodic plan-and-move rounds over the router's load windows.

        Each round: optionally grow the group set toward ``grow_to``, ask
        the planner for moves off the hottest shard, execute them, and
        reset the load window.  The loop exits after ``quiet_rounds``
        consecutive rounds without a single new write anywhere (so a
        drained workload lets the simulation terminate); fresh traffic
        re-arms it.
        """
        proc = self.sim.current_process
        host = self._node_of(proc)
        params = self.rebalance
        planner = RebalancePlanner(self.router, imbalance=params.imbalance,
                                   min_writes=params.min_writes,
                                   max_moves=params.max_moves)
        try:
            quiet = 0
            last_total = self._total_shard_writes()
            while quiet < params.quiet_rounds:
                proc.hold(params.interval)
                if not host.alive:
                    # A dead node cannot broadcast switches; bow out so the
                    # next write re-arms the controller on a live machine.
                    return
                total = self._total_shard_writes()
                if total == last_total:
                    quiet += 1
                    continue
                last_total = total
                quiet = 0
                if (params.grow_to is not None
                        and self.router.num_shards < params.grow_to):
                    self.add_shard()
                moves = planner.plan()
                for move in moves:
                    self.move_shard(proc, self.handle(move.obj_id), move.dst)
                if moves:
                    # The evidence behind these moves is spent; the next
                    # decision must re-earn itself on a fresh window.  (No
                    # reset on quiet rounds: the window keeps accumulating
                    # until there is enough traffic to decide on.)
                    self.router.reset_window()
                    # Moves take virtual time; re-read the baseline so a
                    # round spent moving does not look like fresh traffic.
                    last_total = self._total_shard_writes()
        finally:
            self._rebalancer_active = False

    def _total_shard_writes(self) -> int:
        return sum(stats.writes for stats in self.router.shard_stats.values())

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def object_summary(self) -> Dict[str, Dict[str, Any]]:
        summary = super().object_summary()
        for handle in self.handles():
            row = summary[handle.name]
            row["policy"] = self._policy_by_obj[handle.obj_id]
            if handle.obj_id in self._adaptive_by_obj:
                row["adaptive"] = True
            # The shard column is the router's *current* view, so it stays
            # consistent across shard moves and policy migrations alike.
            shard = (self.router.assigned_shard(handle.obj_id)
                     if self.router is not None else None)
            if shard is not None and self.num_shards > 1:
                row["shard"] = shard
        return summary

    def read_write_summary(self) -> Dict[str, Any]:
        summary = super().read_write_summary()
        if self.router is not None and (self.num_shards > 1
                                        or self.batching is not None):
            summary["sharding"] = self.router.summary()
            if self.batching is not None:
                summary["batching"] = {
                    "max_batch": self.batching.max_batch,
                    "flush_delay": self.batching.flush_delay,
                }
        if self.stats.migrations:
            summary["migrations"] = {
                "total": self.stats.migrations,
                "to_primary": self.stats.migrations_to_primary,
                "to_broadcast": self.stats.migrations_to_broadcast,
                "log": [(m.name, m.target, m.primary_node)
                        for m in self.migrations],
            }
        if (self.stats.shard_moves or self.stats.shards_added
                or self.stats.primary_relocations):
            summary["rebalancing"] = {
                "moves": self.stats.shard_moves,
                "shards_added": self.stats.shards_added,
                "primary_relocations": self.stats.primary_relocations,
                "placement_epoch": (self.router.placement_epoch
                                    if self.router is not None else 0),
                "log": [(m.name, m.src, m.dst) for m in self.shard_moves],
            }
        if self.stats.flow_control_holds:
            summary["flow_control_holds"] = self.stats.flow_control_holds
        return summary
