"""The point-to-point runtime system (no hardware broadcast required).

Objects have a *primary copy* on the machine that created them; other
machines may hold *secondary copies*.  All writes are sent to the primary,
which propagates them to the secondaries either by **invalidation** (discard
all other copies) or by a **two-phase update** (ship the operation, wait for
acknowledgements, then unlock).  Which machines hold copies is decided
dynamically from per-machine read/write-ratio statistics.
"""

from .directory import ObjectDirectory
from .invalidation import InvalidationProtocol
from .replication_policy import ReplicationPolicy
from .runtime import PointToPointRts
from .update import TwoPhaseUpdateProtocol

__all__ = [
    "PointToPointRts",
    "InvalidationProtocol",
    "TwoPhaseUpdateProtocol",
    "ObjectDirectory",
    "ReplicationPolicy",
]
