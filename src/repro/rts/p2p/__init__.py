"""The point-to-point runtime system (no hardware broadcast required).

Objects have a *primary copy* on the machine that created them; other
machines may hold *secondary copies*.  All writes are sent to the primary,
which propagates them to the secondaries either by **invalidation** (discard
all other copies) or by a **two-phase update** (ship the operation, wait for
acknowledgements, then unlock).  Which machines hold copies is decided
dynamically from per-machine read/write-ratio statistics.
"""

from .directory import ObjectDirectory
from .invalidation import InvalidationProtocol
from .replication_policy import ReplicationPolicy
from .update import TwoPhaseUpdateProtocol

__all__ = [
    "PointToPointRts",
    "InvalidationProtocol",
    "TwoPhaseUpdateProtocol",
    "ObjectDirectory",
    "ReplicationPolicy",
]


def __getattr__(name):
    # PointToPointRts is a shim over repro.rts.hybrid, which itself builds on
    # this package's protocol modules; importing it lazily keeps the package
    # importable from either direction.
    if name == "PointToPointRts":
        from .runtime import PointToPointRts
        return PointToPointRts
    raise AttributeError(name)
