"""Object directory: which machine holds the primary copy of each object.

In the real Orca runtime this knowledge is distributed by the compiler and
runtime; in the reproduction the directory is a shared bookkeeping structure
(it is consulted without charging communication costs, mirroring the fact
that primary locations are static and known to every machine after object
creation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ...errors import RtsError


@dataclass
class DirectoryEntry:
    """Placement information for one object."""

    obj_id: int
    primary_node: int
    #: Every machine currently holding a copy (always includes the primary).
    copyset: Set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        self.copyset.add(self.primary_node)


class ObjectDirectory:
    """Maps object ids to their primary location and current copy set."""

    def __init__(self) -> None:
        self._entries: Dict[int, DirectoryEntry] = {}

    def register(self, obj_id: int, primary_node: int) -> DirectoryEntry:
        if obj_id in self._entries:
            raise RtsError(f"object {obj_id} already registered in the directory")
        entry = DirectoryEntry(obj_id=obj_id, primary_node=primary_node)
        self._entries[obj_id] = entry
        return entry

    def entry(self, obj_id: int) -> DirectoryEntry:
        try:
            return self._entries[obj_id]
        except KeyError:
            raise RtsError(f"object {obj_id} is not registered in the directory") from None

    def primary_of(self, obj_id: int) -> int:
        return self.entry(obj_id).primary_node

    def copyset_of(self, obj_id: int) -> Set[int]:
        return set(self.entry(obj_id).copyset)

    def secondaries_of(self, obj_id: int) -> List[int]:
        entry = self.entry(obj_id)
        return sorted(entry.copyset - {entry.primary_node})

    def add_copy(self, obj_id: int, node_id: int) -> None:
        self.entry(obj_id).copyset.add(node_id)

    def remove_copy(self, obj_id: int, node_id: int) -> None:
        entry = self.entry(obj_id)
        if node_id == entry.primary_node:
            raise RtsError("the primary copy cannot be dropped")
        entry.copyset.discard(node_id)

    def migrate_primary(self, obj_id: int, new_primary: int) -> None:
        """Move the primary role (used when the owner node is reconfigured)."""
        entry = self.entry(obj_id)
        entry.primary_node = new_primary
        entry.copyset.add(new_primary)

    def objects(self) -> List[int]:
        return sorted(self._entries)
