"""Dynamic replication policy for the point-to-point runtime system.

"The decision of where to replicate each object is done dynamically based on
runtime statistics.  Initially, only one copy of each object is maintained.
[...] When the ratio of reads to writes on any machine exceeds a certain
threshold, the runtime system concludes that [...] having a local copy is
worthwhile.  [...] when this ratio falls below another threshold, [...] the
local copy is then discarded."  (§3.2.2)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ...config import ReplicationParams
from ..stats import AccessStats, ReplicationDecider


@dataclass
class PolicyStats:
    """Counts of replication decisions taken."""

    copies_fetched: int = 0
    copies_dropped: int = 0


class ReplicationPolicy:
    """Per-(object, machine) replication decisions with hysteresis."""

    def __init__(self, params: ReplicationParams) -> None:
        self.params = params
        self.decider = ReplicationDecider(params)
        self.stats = PolicyStats()

    # -- accounting -------------------------------------------------------- #

    def note_read(self, obj_id: int, node_id: int) -> None:
        self.decider.note_read(obj_id, node_id)

    def note_write(self, obj_id: int, node_id: int) -> None:
        self.decider.note_write(obj_id, node_id)

    def access_stats(self, obj_id: int, node_id: int) -> AccessStats:
        return self.decider.stats_for(obj_id, node_id)

    # -- decisions ---------------------------------------------------------- #

    def should_fetch_copy(self, obj_id: int, node_id: int, has_copy: bool) -> bool:
        """Should this machine (currently without a copy) fetch one?"""
        if has_copy:
            return False
        decision = self.decider.should_replicate(obj_id, node_id)
        if decision:
            self.stats.copies_fetched += 1
        return decision

    def should_drop_copy(self, obj_id: int, node_id: int, has_copy: bool,
                         is_primary: bool) -> bool:
        """Should this machine (currently holding a copy) discard it?"""
        if not has_copy or is_primary:
            return False
        decision = self.decider.should_drop(obj_id, node_id)
        if decision:
            self.stats.copies_dropped += 1
        return decision
