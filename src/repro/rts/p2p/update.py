"""The two-phase update coherence protocol for primary-copy objects.

When a write arrives at the primary, the primary locks the object and ships
the *operation* (code plus parameters — cheaper in bandwidth than shipping
the new state) to every secondary.  Each secondary locks its copy, applies
the operation, acknowledges, and keeps the copy locked.  When all
acknowledgements have reached the primary, the second phase unlocks every
copy; reads attempted while a copy is locked wait until it is unlocked.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from ..object_model import OperationDef
from .invalidation import live_secondaries

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...sim.process import SimProcess
    from ..hybrid import HybridRts

#: Message kinds used by the two-phase update protocol.
KIND_UPDATE = "p2p.update"
KIND_UNLOCK = "p2p.unlock"


class TwoPhaseUpdateProtocol:
    """Primary-side behaviour of the two-phase update protocol."""

    name = "update"

    def __init__(self, rts: "HybridRts") -> None:
        self.rts = rts
        self.updates_sent = 0
        self.unlocks_sent = 0
        self.writes_processed = 0

    def primary_write(self, proc: "SimProcess", obj_id: int, op: OperationDef,
                      args: Tuple[Any, ...], kwargs: Optional[Dict[str, Any]],
                      wid: Optional[Tuple[int, int]] = None) -> Any:
        """Execute a write at the primary with the two-phase update protocol.

        ``wid`` is the invocation's cluster-unique write id; it rides the
        phase-1 updates so every secondary records the write as applied.  A
        secondary promoted after a primary crash then recognises the
        client's re-issue of an in-flight write and does not apply it twice.
        """
        rts = self.rts
        primary_node = rts.directory.primary_of(obj_id)
        manager = rts.managers[primary_node]
        replica = manager.get(obj_id)
        secondaries = live_secondaries(rts, obj_id)
        self.writes_processed += 1

        replica.locked = True
        try:
            if secondaries:
                # Phase 1: ship the operation, wait until everyone applied it.
                txn_id = rts.new_transaction(len(secondaries),
                                             destinations=secondaries)
                for node_id in secondaries:
                    self.updates_sent += 1
                    rts.stats.updates_sent += 1
                    rts.send_protocol_message(
                        primary_node, node_id, KIND_UPDATE,
                        {"obj_id": obj_id, "txn_id": txn_id,
                         "op_name": op.name, "args": args,
                         "kwargs": kwargs or {}, "wid": wid},
                    )
                rts.await_acks(proc, txn_id)
                # Phase 2: unlock every secondary copy.
                for node_id in secondaries:
                    self.unlocks_sent += 1
                    rts.send_protocol_message(
                        primary_node, node_id, KIND_UNLOCK,
                        {"obj_id": obj_id, "txn_id": txn_id},
                    )
            result = manager.apply_write(obj_id, op, args, kwargs, local_origin=True)
        finally:
            replica.locked = False
        return result

    # -- secondary side ---------------------------------------------------- #

    def handle_update(self, node_id: int, payload: Dict[str, Any]) -> None:
        """A secondary applies the shipped operation, acknowledges, stays locked."""
        rts = self.rts
        obj_id = payload["obj_id"]
        manager = rts.managers[node_id]
        if manager.has_valid_copy(obj_id):
            handle = rts.handle(obj_id)
            op = handle.spec_class.operation_def(payload["op_name"])
            result = manager.apply_write(obj_id, op, payload["args"],
                                         payload["kwargs"],
                                         local_origin=False)
            manager.get(obj_id).locked = True
            rts.record_applied(node_id, obj_id, payload.get("wid"), result)
            cpu = rts.cost_model.cpu
            rts.cluster.node(node_id).charge_overhead(
                cpu.operation_dispatch_cost + op.work_units * cpu.work_unit_time
            )
        rts.send_ack(node_id, payload["txn_id"])

    def handle_unlock(self, node_id: int, payload: Dict[str, Any]) -> None:
        """Phase 2 at a secondary: make the copy readable again."""
        rts = self.rts
        manager = rts.managers[node_id]
        obj_id = payload["obj_id"]
        if obj_id in manager.replicas:
            replica = manager.get(obj_id)
            replica.locked = False
            replica.notify_changed()
