"""The invalidation coherence protocol for primary-copy objects.

When a write arrives at the primary, every secondary copy is invalidated
(discarded); once all invalidation acknowledgements are in, the write is
applied to the (now only) primary copy and the object is unlocked.  A machine
whose copy was invalidated and that later needs the object again must fetch a
fresh copy — the cost trade-off against the update protocol the paper
discusses in §3.2.2.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from ..object_model import OperationDef

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...sim.process import SimProcess
    from ..hybrid import HybridRts

#: Message kinds used by the invalidation protocol.
KIND_INVALIDATE = "p2p.invalidate"


def live_secondaries(rts: "HybridRts", obj_id: int) -> list:
    """Secondary copy holders that are still alive.

    A crashed machine can never acknowledge, so fanning out to it would
    deadlock the primary; its directory entry is pruned instead.  (Objects
    migrated from broadcast management inherit their copyset from the whole
    cluster, which is how dead members can appear here.)
    """
    secondaries = rts.directory.secondaries_of(obj_id)
    live = [n for n in secondaries if rts.cluster.node(n).alive]
    for dead in set(secondaries) - set(live):
        rts.directory.remove_copy(obj_id, dead)
    return live


class InvalidationProtocol:
    """Primary-side behaviour of the invalidation protocol."""

    name = "invalidation"

    def __init__(self, rts: "HybridRts") -> None:
        self.rts = rts
        self.invalidations_sent = 0
        self.writes_processed = 0

    def primary_write(self, proc: "SimProcess", obj_id: int, op: OperationDef,
                      args: Tuple[Any, ...], kwargs: Optional[Dict[str, Any]],
                      wid: Optional[Tuple[int, int]] = None) -> Any:
        """Execute a write at the primary: invalidate all secondaries first.

        Runs in the context of a (blocking-capable) process on the primary
        node: either the client itself (when the client is local) or the RPC
        server thread handling the remote write.  ``wid`` (the invocation's
        write id) is recorded by the runtime at commit time; invalidated
        secondaries hold no state, so nothing rides the invalidations.
        """
        rts = self.rts
        primary_node = rts.directory.primary_of(obj_id)
        manager = rts.managers[primary_node]
        replica = manager.get(obj_id)
        secondaries = live_secondaries(rts, obj_id)
        self.writes_processed += 1

        replica.locked = True
        try:
            if secondaries:
                txn_id = rts.new_transaction(len(secondaries),
                                             destinations=secondaries)
                for node_id in secondaries:
                    self.invalidations_sent += 1
                    rts.stats.invalidations_sent += 1
                    rts.send_protocol_message(
                        primary_node, node_id, KIND_INVALIDATE,
                        {"obj_id": obj_id, "txn_id": txn_id},
                    )
                rts.await_acks(proc, txn_id)
                # All other copies are gone now.
                for node_id in secondaries:
                    rts.directory.remove_copy(obj_id, node_id)
            result = manager.apply_write(obj_id, op, args, kwargs, local_origin=True)
        finally:
            replica.locked = False
        return result

    # -- secondary side ---------------------------------------------------- #

    def handle_invalidate(self, node_id: int, payload: Dict[str, Any]) -> None:
        """A secondary discards its copy and acknowledges."""
        rts = self.rts
        obj_id = payload["obj_id"]
        manager = rts.managers[node_id]
        manager.invalidate(obj_id)
        manager.discard(obj_id)
        rts.stats.replicas_dropped += 1
        rts.send_ack(node_id, payload["txn_id"])
