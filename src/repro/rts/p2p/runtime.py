"""The classic point-to-point runtime system, as a fixed-policy configuration.

.. deprecated::
    :class:`PointToPointRts` is now a thin shim over
    :class:`~repro.rts.hybrid.HybridRts` with every object pinned to the
    primary-copy management policy matching the chosen coherence protocol.
    Constructing it still works — and behaves exactly as before — but emits
    a :class:`DeprecationWarning`; new code should build
    ``HybridRts(cluster, default_policy="primary", protocol=...)`` (or pass
    per-object policies) instead.

The primary-copy design itself is unchanged: every object has a primary
copy, machines acquire and drop secondary copies dynamically based on their
observed read/write ratio, reads hit a valid local copy when one exists and
otherwise RPC to the primary, and writes go through the primary, which
propagates them with either the invalidation protocol or the two-phase
update protocol.  The wire constants are re-exported here for existing
imports.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING

from ..hybrid import (  # noqa: F401 - re-exported wire constants
    KIND_ACK,
    KIND_DROP,
    PORT_FETCH,
    PORT_MIGRATE,
    PORT_READ,
    PORT_WRITE,
    HybridRts,
)
from .replication_policy import ReplicationPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...amoeba.cluster import Cluster


class PointToPointRts(HybridRts):
    """Primary-copy shared objects over point-to-point messages."""

    name = "p2p-rts"

    def __init__(self, cluster: "Cluster", protocol: str = "update",
                 dynamic_replication: bool = True,
                 replicate_everywhere: bool = False) -> None:
        """Create the runtime.

        Parameters
        ----------
        cluster:
            The simulated cluster (any network type works; no broadcast needed).
        protocol:
            ``"update"`` (two-phase update) or ``"invalidation"``.
        dynamic_replication:
            Enable the read/write-ratio driven replication policy.  When
            disabled, copies exist only where :meth:`replicate_to` placed them.
        replicate_everywhere:
            Eagerly give every machine a copy at object-creation time (used by
            benchmarks that isolate protocol costs from replication decisions).
        """
        if type(self) is PointToPointRts:
            warnings.warn(
                "PointToPointRts is deprecated; use HybridRts(cluster, "
                "default_policy='primary', protocol=...) — the unified "
                "runtime also accepts per-object policies and live migration",
                DeprecationWarning, stacklevel=2)
        super().__init__(cluster, default_policy="primary", protocol=protocol,
                         dynamic_replication=dynamic_replication,
                         replicate_everywhere=replicate_everywhere)

    @property
    def policy(self) -> ReplicationPolicy:
        """The dynamic replication policy (classic attribute name)."""
        return self.replication
