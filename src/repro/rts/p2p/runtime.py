"""The point-to-point runtime system façade.

This RTS works on networks without hardware broadcast.  Every object has a
primary copy; machines acquire and drop secondary copies dynamically based on
their observed read/write ratio.  Reads hit a valid local copy when one
exists and otherwise RPC to the primary; writes always go through the
primary, which propagates them with either the invalidation protocol or the
two-phase update protocol.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple, Type

from ...amoeba.message import estimate_size
from ...amoeba.rpc import RpcReply, RpcRequest
from ...errors import ConfigurationError, RtsError
from ..base import ObjectHandle, RuntimeSystem
from ..object_model import RETRY, ObjectSpec
from .directory import ObjectDirectory
from .invalidation import KIND_INVALIDATE, InvalidationProtocol
from .replication_policy import ReplicationPolicy
from .update import KIND_UNLOCK, KIND_UPDATE, TwoPhaseUpdateProtocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...amoeba.cluster import Cluster
    from ...sim.process import SimProcess

KIND_ACK = "p2p.ack"
KIND_DROP = "p2p.drop"

PORT_READ = "orca.obj.read"
PORT_WRITE = "orca.obj.write"
PORT_FETCH = "orca.obj.fetch"


@dataclass
class _Transaction:
    """Fan-out bookkeeping: one write waiting for its acknowledgements."""

    remaining: int
    proc: Optional["SimProcess"] = None


class PointToPointRts(RuntimeSystem):
    """Primary-copy shared objects over point-to-point messages."""

    name = "p2p-rts"

    def __init__(self, cluster: "Cluster", protocol: str = "update",
                 dynamic_replication: bool = True,
                 replicate_everywhere: bool = False) -> None:
        """Create the runtime.

        Parameters
        ----------
        cluster:
            The simulated cluster (any network type works; no broadcast needed).
        protocol:
            ``"update"`` (two-phase update) or ``"invalidation"``.
        dynamic_replication:
            Enable the read/write-ratio driven replication policy.  When
            disabled, copies exist only where :meth:`replicate_to` placed them.
        replicate_everywhere:
            Eagerly give every machine a copy at object-creation time (used by
            benchmarks that isolate protocol costs from replication decisions).
        """
        super().__init__(cluster)
        if protocol == "update":
            self.protocol = TwoPhaseUpdateProtocol(self)
        elif protocol == "invalidation":
            self.protocol = InvalidationProtocol(self)
        else:
            raise ConfigurationError(
                f"unknown coherence protocol {protocol!r} (use 'update' or 'invalidation')"
            )
        self.directory = ObjectDirectory()
        self.policy = ReplicationPolicy(self.cost_model.replication)
        self.dynamic_replication = dynamic_replication
        self.replicate_everywhere = replicate_everywhere
        self._txn_ids = itertools.count(1)
        self._transactions: Dict[int, _Transaction] = {}
        #: txn_id -> node that must receive the acknowledgements (the primary).
        self._ack_destinations: Dict[int, int] = {}
        self._install_node_services()

    # ------------------------------------------------------------------ #
    # Node wiring
    # ------------------------------------------------------------------ #

    def _install_node_services(self) -> None:
        for node in self.cluster.nodes:
            nid = node.node_id
            node.register_handler(KIND_INVALIDATE,
                                  lambda m, n=nid: self._on_invalidate(n, m.payload))
            node.register_handler(KIND_UPDATE,
                                  lambda m, n=nid: self._on_update(n, m.payload))
            node.register_handler(KIND_UNLOCK,
                                  lambda m, n=nid: self._on_unlock(n, m.payload))
            node.register_handler(KIND_ACK,
                                  lambda m, n=nid: self._on_ack(n, m.payload))
            node.register_handler(KIND_DROP,
                                  lambda m, n=nid: self._on_drop(n, m.payload))
            rpc = self.cluster.rpc_for(nid)
            rpc.register_service(PORT_READ,
                                 lambda req, n=nid: self._serve_read(n, req))
            rpc.register_service(PORT_WRITE,
                                 lambda req, n=nid: self._serve_write(n, req),
                                 may_block=True)
            rpc.register_service(PORT_FETCH,
                                 lambda req, n=nid: self._serve_fetch(n, req),
                                 may_block=True)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def create_object(self, proc: "SimProcess", spec_class: Type[ObjectSpec],
                      args: Tuple[Any, ...] = (), kwargs: Optional[Dict[str, Any]] = None,
                      name: Optional[str] = None) -> ObjectHandle:
        """Create an object whose primary copy lives on the caller's machine."""
        node = self._node_of(proc)
        handle = self._new_handle(spec_class, name)
        instance = spec_class.create(args, kwargs)
        self.managers[node.node_id].install(handle.obj_id, handle.name, instance,
                                            is_primary=True)
        self.directory.register(handle.obj_id, node.node_id)
        self.stats.replicas_created += 1
        proc.advance(self.cost_model.cpu.operation_dispatch_cost)
        if self.replicate_everywhere:
            for other in self.cluster.nodes:
                if other.node_id != node.node_id:
                    self.replicate_to(handle, other.node_id)
        return handle

    def replicate_to(self, handle: ObjectHandle, node_id: int) -> None:
        """Eagerly install a secondary copy on ``node_id`` (no cost charged)."""
        primary = self.directory.primary_of(handle.obj_id)
        source = self.managers[primary].get(handle.obj_id)
        if self.managers[node_id].has_valid_copy(handle.obj_id):
            return
        copy = handle.spec_class()
        copy.unmarshal_state(source.instance.marshal_state())
        self.managers[node_id].discard(handle.obj_id)
        self.managers[node_id].install(handle.obj_id, handle.name, copy,
                                       version=source.version)
        self.directory.add_copy(handle.obj_id, node_id)
        self.stats.replicas_created += 1

    def _invoke(self, proc: "SimProcess", handle: ObjectHandle, op_name: str,
                args: Tuple[Any, ...] = (), kwargs: Optional[Dict[str, Any]] = None) -> Any:
        node = self._node_of(proc)
        nid = node.node_id
        op = handle.spec_class.operation_def(op_name)
        cpu = self.cost_model.cpu
        proc.advance(cpu.operation_dispatch_cost)
        if op.work_units:
            proc.compute(op.work_units)
        proc.absorb_overhead(node.drain_overhead())

        if not op.is_write:
            self.policy.note_read(handle.obj_id, nid)
            result = self._do_read(proc, nid, handle, op, args, kwargs)
        else:
            self.policy.note_write(handle.obj_id, nid)
            self.stats.note_write(handle.obj_id)
            result = self._do_write(proc, nid, handle, op, args, kwargs)

        if self.dynamic_replication:
            self._apply_replication_policy(proc, nid, handle)
        return result

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    def _do_read(self, proc: "SimProcess", nid: int, handle: ObjectHandle,
                 op, args, kwargs) -> Any:
        manager = self.managers[nid]
        if manager.has_valid_copy(handle.obj_id):
            replica = manager.get(handle.obj_id)
            # Reads wait while the copy is locked by an in-flight update.
            while replica.locked:
                replica.on_next_change(lambda p=proc: p.wake())
                proc.suspend()
            while True:
                result = manager.execute_read(handle.obj_id, op, args, kwargs)
                if result is not RETRY:
                    break
                self.stats.guard_retries += 1
                replica.on_next_change(lambda p=proc: p.wake())
                proc.suspend()
            self.stats.note_read(handle.obj_id, local=True)
            return result
        # No local copy: remote read at the primary.
        primary = self.directory.primary_of(handle.obj_id)
        self.stats.note_read(handle.obj_id, local=False)
        while True:
            result = self.cluster.rpc_for(nid).call(
                proc, primary, PORT_READ,
                payload={"obj_id": handle.obj_id, "op_name": op.name,
                         "args": args, "kwargs": kwargs or {}},
                size=16 + estimate_size(args),
            )
            if not (isinstance(result, str) and result == "__retry__"):
                return result
            self.stats.guard_retries += 1
            proc.hold(self.cost_model.cpu.protocol_cost * 4)

    def _serve_read(self, nid: int, request: RpcRequest) -> Any:
        payload = request.payload
        handle = self.handle(payload["obj_id"])
        op = handle.spec_class.operation_def(payload["op_name"])
        manager = self.managers[nid]
        result = manager.execute_read(payload["obj_id"], op, payload["args"],
                                      payload["kwargs"])
        if result is RETRY:
            return "__retry__"
        return result

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #

    def _do_write(self, proc: "SimProcess", nid: int, handle: ObjectHandle,
                  op, args, kwargs) -> Any:
        primary = self.directory.primary_of(handle.obj_id)
        while True:
            if primary == nid:
                self.stats.local_writes += 1
                result = self.protocol.primary_write(proc, handle.obj_id, op, args, kwargs)
            else:
                self.stats.rpc_writes += 1
                result = self.cluster.rpc_for(nid).call(
                    proc, primary, PORT_WRITE,
                    payload={"obj_id": handle.obj_id, "op_name": op.name,
                             "args": args, "kwargs": kwargs or {}},
                    size=16 + estimate_size(args) + estimate_size(kwargs or {}),
                )
                if isinstance(result, str) and result == "__retry__":
                    result = RETRY
            if result is not RETRY:
                return result
            # Guarded write rejected: wait a little and retry against the primary.
            self.stats.guard_retries += 1
            proc.hold(self.cost_model.cpu.protocol_cost * 4)

    def _serve_write(self, nid: int, request: RpcRequest) -> Any:
        payload = request.payload
        handle = self.handle(payload["obj_id"])
        op = handle.spec_class.operation_def(payload["op_name"])
        proc = self.sim.current_process
        if proc is None:
            raise RtsError("write handler must run in a blocking-capable context")
        result = self.protocol.primary_write(proc, payload["obj_id"], op,
                                             payload["args"], payload["kwargs"])
        if result is RETRY:
            return "__retry__"
        return result

    # ------------------------------------------------------------------ #
    # Dynamic replication
    # ------------------------------------------------------------------ #

    def _apply_replication_policy(self, proc: "SimProcess", nid: int,
                                  handle: ObjectHandle) -> None:
        manager = self.managers[nid]
        has_copy = manager.has_valid_copy(handle.obj_id)
        is_primary = self.directory.primary_of(handle.obj_id) == nid
        if self.policy.should_fetch_copy(handle.obj_id, nid, has_copy):
            self._fetch_copy(proc, nid, handle)
        elif self.policy.should_drop_copy(handle.obj_id, nid, has_copy, is_primary):
            manager.discard(handle.obj_id)
            self.directory.remove_copy(handle.obj_id, nid)
            self.stats.replicas_dropped += 1
            primary = self.directory.primary_of(handle.obj_id)
            self.send_protocol_message(nid, primary, KIND_DROP,
                                       {"obj_id": handle.obj_id, "node": nid})

    def _fetch_copy(self, proc: "SimProcess", nid: int, handle: ObjectHandle) -> None:
        """Fetch the object state from the primary and install a local copy."""
        primary = self.directory.primary_of(handle.obj_id)
        if primary == nid:
            return
        reply = self.cluster.rpc_for(nid).call(
            proc, primary, PORT_FETCH,
            payload={"obj_id": handle.obj_id, "requester": nid},
            size=24,
        )
        state, version = reply
        instance = handle.spec_class()
        instance.unmarshal_state(state)
        manager = self.managers[nid]
        manager.discard(handle.obj_id)
        manager.install(handle.obj_id, handle.name, instance, version=version)
        self.stats.replicas_created += 1

    def _serve_fetch(self, nid: int, request: RpcRequest) -> RpcReply:
        payload = request.payload
        obj_id = payload["obj_id"]
        manager = self.managers[nid]
        replica = manager.get(obj_id)
        proc = self.sim.current_process
        # Do not hand out state in the middle of a write's critical section.
        while replica.locked and proc is not None:
            replica.on_next_change(lambda p=proc: p.wake())
            proc.suspend()
        self.directory.add_copy(obj_id, payload["requester"])
        state = replica.instance.marshal_state()
        return RpcReply(payload=(state, replica.version),
                        size=replica.instance.state_size() + 16)

    # ------------------------------------------------------------------ #
    # Protocol plumbing used by the coherence strategies
    # ------------------------------------------------------------------ #

    def new_transaction(self, expected_acks: int) -> int:
        txn_id = next(self._txn_ids)
        self._transactions[txn_id] = _Transaction(remaining=expected_acks)
        return txn_id

    def await_acks(self, proc: "SimProcess", txn_id: int) -> None:
        txn = self._transactions[txn_id]
        if txn.remaining > 0:
            txn.proc = proc
            proc.suspend()
        del self._transactions[txn_id]

    def send_ack(self, from_node: int, txn_id: int) -> None:
        primary_node = self._ack_destinations.get(txn_id)
        if primary_node is None:
            return
        self.send_protocol_message(from_node, primary_node, KIND_ACK,
                                   {"txn_id": txn_id})

    def send_protocol_message(self, src: int, dst: int, kind: str,
                              payload: Dict[str, Any]) -> None:
        if kind in (KIND_UPDATE,):
            size = 32 + estimate_size(payload.get("args", ())) + estimate_size(
                payload.get("kwargs", {}))
        else:
            size = 32
        node = self.cluster.node(src)
        msg = node.make_message(dst, kind, payload=payload, size=size)
        node.send(msg)
        if kind in (KIND_INVALIDATE, KIND_UPDATE):
            self._ack_destinations[payload["txn_id"]] = src

    # ------------------------------------------------------------------ #
    # Incoming protocol messages
    # ------------------------------------------------------------------ #

    def _on_invalidate(self, nid: int, payload: Dict[str, Any]) -> None:
        self.protocol_for_secondary("invalidation").handle_invalidate(nid, payload)

    def _on_update(self, nid: int, payload: Dict[str, Any]) -> None:
        self.protocol_for_secondary("update").handle_update(nid, payload)

    def _on_unlock(self, nid: int, payload: Dict[str, Any]) -> None:
        self.protocol_for_secondary("update").handle_unlock(nid, payload)

    def _on_ack(self, nid: int, payload: Dict[str, Any]) -> None:
        txn = self._transactions.get(payload["txn_id"])
        if txn is None:
            return
        txn.remaining -= 1
        if txn.remaining <= 0 and txn.proc is not None:
            txn.proc.wake()

    def _on_drop(self, nid: int, payload: Dict[str, Any]) -> None:
        # A secondary informs the primary that it discarded its copy; the
        # directory may already reflect this (the secondary updates it
        # directly), so this is a tolerant no-op if so.
        self.directory.entry(payload["obj_id"]).copyset.discard(payload["node"])

    def protocol_for_secondary(self, name: str):
        """Return the protocol object implementing secondary-side handling."""
        if self.protocol.name == name:
            return self.protocol
        # A secondary can receive messages only from the configured protocol;
        # getting here means a mismatch worth failing loudly on.
        raise RtsError(
            f"received a {name!r} protocol message but this RTS runs "
            f"{self.protocol.name!r}"
        )
