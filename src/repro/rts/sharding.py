"""Sharding the shared-object space over multiple broadcast groups.

The classic broadcast RTS funnels every write through one sequencer, which
makes that machine the system-wide throughput ceiling.  Total order, however,
is only needed *per object* (per shard), not per cluster: this module splits
the object space into N shards, each backed by its own
:class:`~repro.amoeba.broadcast.group.BroadcastGroup` with its own sequencer,
placed round-robin over the machines so the sequencing load spreads.

Placement policies decide which shard an object lives on:

* :class:`HashPlacement` — deterministic hash of the object id (uniform for
  the sequentially assigned ids) or of the object name;
* :class:`ExplicitPlacement` — a name -> shard map with a fallback policy,
  for pinning known-hot objects onto dedicated shards.

:class:`ShardRouter` owns the groups and per-shard counters;
:class:`BatchingParams` configures the per-node write batching that rides on
top (see :mod:`repro.rts.broadcast_rts`), flushing a shard's queued writes
into one ordered broadcast on a size or time threshold.
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional

from ..errors import ConfigurationError
from .stats import ShardStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..amoeba.broadcast.group import BroadcastGroup
    from ..amoeba.cluster import Cluster


@dataclass(frozen=True)
class BatchingParams:
    """Knobs of the per-node, per-shard write batching.

    Attributes
    ----------
    max_batch:
        Size threshold: a batch is flushed as soon as it holds this many
        operations.
    flush_delay:
        Time threshold, in seconds of virtual time.  Zero means "flush
        immediately when no batch is in flight"; writes arriving while a
        batch is on the wire still coalesce into the next one (group-commit
        style), which is what amortises the sequencer round trip under
        contention without adding latency when the node is idle.
    """

    max_batch: int = 8
    flush_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        if self.flush_delay < 0:
            raise ConfigurationError("flush_delay must be non-negative")


def batching_params(value: Any) -> Optional[BatchingParams]:
    """Coerce ``value`` (None / bool / dict / params) into batching config."""
    if value is None or value is False:
        return None
    if value is True:
        return BatchingParams()
    if isinstance(value, BatchingParams):
        return value
    if isinstance(value, Mapping):
        return BatchingParams(**dict(value))
    raise ConfigurationError(
        f"cannot interpret {value!r} as batching configuration "
        "(use None, True, a dict of fields, or BatchingParams)")


class ShardingPolicy(ABC):
    """Maps objects to shard indices in ``[0, num_shards)``."""

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ConfigurationError("num_shards must be >= 1")
        self.num_shards = num_shards

    @abstractmethod
    def shard_of(self, obj_id: int, name: str) -> int:
        """The shard holding object ``obj_id`` (named ``name``)."""


class HashPlacement(ShardingPolicy):
    """Deterministic hash placement.

    ``by="id"`` (the default) spreads the sequentially assigned object ids
    uniformly over the shards; ``by="name"`` hashes the stable object name
    with CRC-32, so placement survives id renumbering between runs.
    """

    def __init__(self, num_shards: int, by: str = "id") -> None:
        super().__init__(num_shards)
        if by not in ("id", "name"):
            raise ConfigurationError("HashPlacement by must be 'id' or 'name'")
        self.by = by

    def shard_of(self, obj_id: int, name: str) -> int:
        if self.by == "id":
            return (obj_id - 1) % self.num_shards
        return zlib.crc32(name.encode("utf-8")) % self.num_shards


class ExplicitPlacement(ShardingPolicy):
    """Pin named objects to chosen shards; everything else falls back."""

    def __init__(self, num_shards: int, assignments: Mapping[str, int],
                 fallback: Optional[ShardingPolicy] = None) -> None:
        super().__init__(num_shards)
        for name, shard in assignments.items():
            if not 0 <= shard < num_shards:
                raise ConfigurationError(
                    f"object {name!r} pinned to shard {shard}, but only "
                    f"{num_shards} shards exist")
        self.assignments = dict(assignments)
        self.fallback = fallback or HashPlacement(num_shards)
        if self.fallback.num_shards != num_shards:
            raise ConfigurationError(
                "fallback policy must use the same shard count")

    def shard_of(self, obj_id: int, name: str) -> int:
        shard = self.assignments.get(name)
        if shard is not None:
            return shard
        return self.fallback.shard_of(obj_id, name)


def make_policy(num_shards: int, placement: Any) -> ShardingPolicy:
    """Coerce ``placement`` into a policy for ``num_shards`` shards.

    Accepts a ready policy, the string ``"hash"``, or a name -> shard dict
    (explicit placement with hash fallback).
    """
    if isinstance(placement, ShardingPolicy):
        if placement.num_shards != num_shards:
            raise ConfigurationError(
                f"placement policy is for {placement.num_shards} shards, "
                f"but {num_shards} were requested")
        return placement
    if placement in (None, "hash"):
        return HashPlacement(num_shards)
    if isinstance(placement, Mapping):
        return ExplicitPlacement(num_shards, placement)
    raise ConfigurationError(
        f"cannot interpret {placement!r} as a sharding policy "
        "(use 'hash', a name->shard dict, or a ShardingPolicy)")


class ShardRouter:
    """Owns one broadcast group per shard and routes objects onto them.

    Shard 0 reuses the cluster's classic group (so a one-shard router is
    wire-identical to the unsharded runtime); further shards get fresh
    groups whose initial sequencer seats rotate round-robin over the
    machines, which is what actually spreads the sequencing load.
    """

    def __init__(self, cluster: "Cluster", num_shards: int = 1,
                 placement: Any = None) -> None:
        self.cluster = cluster
        self.policy = make_policy(num_shards, placement)
        self.num_shards = num_shards
        self.groups: List["BroadcastGroup"] = [cluster.broadcast_group]
        for shard in range(1, num_shards):
            self.groups.append(cluster.new_broadcast_group(
                sequencer_node_id=cluster.nodes[shard % cluster.num_nodes].node_id))
        self.shard_stats: Dict[int, ShardStats] = {
            shard: ShardStats() for shard in range(num_shards)
        }

    # ------------------------------------------------------------------ #

    def shard_of(self, obj_id: int, name: str) -> int:
        return self.policy.shard_of(obj_id, name)

    def group_for(self, shard: int) -> "BroadcastGroup":
        return self.groups[shard]

    def sequencer_nodes(self) -> List[int]:
        """Current sequencer seat of every shard (for tests and reports)."""
        return [group.sequencer_node_id for group in self.groups]

    def summary(self) -> Dict[str, Any]:
        """Compact per-shard digest for benchmark reports."""
        return {
            "num_shards": self.num_shards,
            "sequencer_nodes": self.sequencer_nodes(),
            "per_shard": {
                shard: stats.summary()
                for shard, stats in sorted(self.shard_stats.items())
            },
        }
