"""Sharding the shared-object space over multiple broadcast groups.

The classic broadcast RTS funnels every write through one sequencer, which
makes that machine the system-wide throughput ceiling.  Total order, however,
is only needed *per object* (per shard), not per cluster: this module splits
the object space into N shards, each backed by its own
:class:`~repro.amoeba.broadcast.group.BroadcastGroup` with its own sequencer,
placed round-robin over the machines so the sequencing load spreads.

Placement policies decide which shard an object lives on:

* :class:`HashPlacement` — deterministic hash of the object id (uniform for
  the sequentially assigned ids) or of the object name;
* :class:`ExplicitPlacement` — a name -> shard map with a fallback policy,
  for pinning known-hot objects onto dedicated shards.

:class:`ShardRouter` owns the groups and per-shard counters;
:class:`BatchingParams` configures the per-node write batching that rides on
top (see :mod:`repro.rts.broadcast_rts`), flushing a shard's queued writes
into one ordered broadcast on a size or time threshold.

Placement is **epoch-versioned**: the router records every object's current
shard in an assignment table seeded from the placement policy, and an
explicit override table tracks objects that were *moved* after creation (the
drain-and-switch rebalancing of :class:`~repro.rts.hybrid.HybridRts`).  Every
move — and every live :meth:`ShardRouter.add_shard` — bumps the router's
``placement_epoch``, so reports and tests can pin down exactly which routing
generation a run ended on.  Per-shard *window* counters (writes since the
last :meth:`ShardRouter.reset_window`) are the load signal
:class:`RebalancePlanner` turns into concrete object -> group moves off the
hottest shard; the sequencers' queue depths are exported alongside
(:meth:`ShardRouter.queue_depths` and the per-shard summaries) for
operators, reports, and the batching layer's flow control.
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Mapping, Optional, Set

from ..errors import ConfigurationError
from .stats import ShardStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..amoeba.broadcast.group import BroadcastGroup
    from ..amoeba.cluster import Cluster


@dataclass(frozen=True)
class BatchingParams:
    """Knobs of the per-node, per-shard write batching.

    Attributes
    ----------
    max_batch:
        Size threshold: a batch is flushed as soon as it holds this many
        operations.
    flush_delay:
        Time threshold, in seconds of virtual time.  Zero means "flush
        immediately when no batch is in flight"; writes arriving while a
        batch is on the wire still coalesce into the next one (group-commit
        style), which is what amortises the sequencer round trip under
        contention without adding latency when the node is idle.
    backpressure_depth:
        Flow-control coupling to the sequencer's service queue.  When set, a
        batch is *held back* (kept coalescing) while the shard sequencer's
        queue is at least this deep, so senders back off before the
        send-retry/election path would fire under overload.  The batch still
        flushes unconditionally once it has grown to ``4 * max_batch``
        operations, bounding both memory and the latency of the held writes.
        ``None`` (the default) disables flow control; it is also inert when
        the sequencer is not modelled as a queueing server
        (``cpu.sequencing_cost == 0``), since the queue then never forms.
    """

    max_batch: int = 8
    flush_delay: float = 0.0
    backpressure_depth: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        if self.flush_delay < 0:
            raise ConfigurationError("flush_delay must be non-negative")
        if self.backpressure_depth is not None and self.backpressure_depth < 1:
            raise ConfigurationError(
                "backpressure_depth must be >= 1 (or None to disable)")


@dataclass(frozen=True)
class RebalanceParams:
    """Knobs of the runtime's background shard-rebalancing controller.

    Attributes
    ----------
    interval:
        Virtual seconds between controller rounds.  Each round samples the
        router's load window, plans moves, executes them, and resets the
        window, so the window length *is* the interval.
    imbalance / min_writes / max_moves:
        Passed through to :class:`RebalancePlanner`.
    quiet_rounds:
        The controller exits after this many consecutive rounds with no new
        write anywhere (so a finished workload lets the simulation drain
        instead of ticking forever).
    grow_to:
        When set, the controller adds one broadcast group per active round
        (via the runtime's ``add_shard``) until the cluster runs this many,
        scaling the group set out *live* before spreading objects onto it.
        Growth is additionally capped at the number of live nodes: a shard
        beyond that has no machine left to give its sequencer seat a core of
        its own, so adding it cannot spread the ordering load further.
    shrink_to:
        The symmetric scale-in target: when set, the controller retires the
        coolest active shard (via the runtime's ``remove_shard``) — one per
        round — while more than this many are active *and* that shard's
        window load has fallen to ``shrink_below`` writes or fewer, merging
        idle total orders away so their sequencer seats stop costing
        heartbeats and seat bookkeeping.
    shrink_below:
        Idleness threshold for ``shrink_to``: a shard is only merged away
        when its window counted at most this many writes (default 8), so
        scale-in never steals a group that still carries real traffic.
    cooldown:
        Per-object churn damping, in virtual seconds: an object the
        controller moved less than this long ago is skipped by the next
        plan rounds, so near-balanced load stops shuffling the same object
        back and forth between two groups.
    queue_weight:
        Weight of the sequencers' instantaneous queue depths in the
        planner's per-shard load scores (see :class:`RebalancePlanner`).
    byte_weight:
        Weight of write payload bytes in the planner's load scores; ``0``
        (default) keeps the classic count-only heuristic (see
        :class:`RebalancePlanner`).
    """

    interval: float = 0.005
    imbalance: float = 1.5
    min_writes: int = 32
    max_moves: int = 3
    quiet_rounds: int = 2
    grow_to: Optional[int] = None
    shrink_to: Optional[int] = None
    shrink_below: int = 8
    cooldown: float = 0.02
    queue_weight: float = 1.0
    byte_weight: float = 0.0

    def __post_init__(self) -> None:
        if self.interval <= 0.0:
            raise ConfigurationError("rebalance interval must be positive")
        if self.quiet_rounds < 1:
            raise ConfigurationError("quiet_rounds must be >= 1")
        if self.grow_to is not None and self.grow_to < 1:
            raise ConfigurationError("grow_to must be >= 1 shard")
        if self.shrink_to is not None and self.shrink_to < 1:
            raise ConfigurationError("shrink_to must be >= 1 shard")
        if (self.grow_to is not None and self.shrink_to is not None
                and self.shrink_to > self.grow_to):
            raise ConfigurationError(
                "shrink_to must not exceed grow_to (the controller would "
                "oscillate between growing and merging the same group)")
        if self.shrink_below < 0:
            raise ConfigurationError("shrink_below must be non-negative")
        if self.cooldown < 0.0:
            raise ConfigurationError("cooldown must be non-negative")
        if self.queue_weight < 0.0:
            raise ConfigurationError("queue_weight must be non-negative")
        if self.byte_weight < 0.0:
            raise ConfigurationError("byte_weight must be non-negative")
        # Planner construction re-validates imbalance/min_writes/max_moves.


def rebalance_params(value: Any) -> Optional[RebalanceParams]:
    """Coerce ``value`` (None / bool / dict / params) into rebalance config."""
    if value is None or value is False:
        return None
    if value is True:
        return RebalanceParams()
    if isinstance(value, RebalanceParams):
        return value
    if isinstance(value, Mapping):
        return RebalanceParams(**dict(value))
    raise ConfigurationError(
        f"cannot interpret {value!r} as rebalancing configuration "
        "(use None, True, a dict of fields, or RebalanceParams)")


def batching_params(value: Any) -> Optional[BatchingParams]:
    """Coerce ``value`` (None / bool / dict / params) into batching config."""
    if value is None or value is False:
        return None
    if value is True:
        return BatchingParams()
    if isinstance(value, BatchingParams):
        return value
    if isinstance(value, Mapping):
        return BatchingParams(**dict(value))
    raise ConfigurationError(
        f"cannot interpret {value!r} as batching configuration "
        "(use None, True, a dict of fields, or BatchingParams)")


class ShardingPolicy(ABC):
    """Maps objects to shard indices in ``[0, num_shards)``."""

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ConfigurationError("num_shards must be >= 1")
        self.num_shards = num_shards

    @abstractmethod
    def shard_of(self, obj_id: int, name: str) -> int:
        """The shard holding object ``obj_id`` (named ``name``)."""


class HashPlacement(ShardingPolicy):
    """Deterministic hash placement.

    ``by="id"`` (the default) spreads the sequentially assigned object ids
    uniformly over the shards; ``by="name"`` hashes the stable object name
    with CRC-32, so placement survives id renumbering between runs.
    """

    def __init__(self, num_shards: int, by: str = "id") -> None:
        super().__init__(num_shards)
        if by not in ("id", "name"):
            raise ConfigurationError("HashPlacement by must be 'id' or 'name'")
        self.by = by

    def shard_of(self, obj_id: int, name: str) -> int:
        if self.by == "id":
            return (obj_id - 1) % self.num_shards
        return zlib.crc32(name.encode("utf-8")) % self.num_shards


class ExplicitPlacement(ShardingPolicy):
    """Pin named objects to chosen shards; everything else falls back."""

    def __init__(self, num_shards: int, assignments: Mapping[str, int],
                 fallback: Optional[ShardingPolicy] = None) -> None:
        super().__init__(num_shards)
        for name, shard in assignments.items():
            if not 0 <= shard < num_shards:
                raise ConfigurationError(
                    f"object {name!r} pinned to shard {shard}, but only "
                    f"{num_shards} shards exist")
        self.assignments = dict(assignments)
        self.fallback = fallback or HashPlacement(num_shards)
        if self.fallback.num_shards != num_shards:
            raise ConfigurationError(
                "fallback policy must use the same shard count")

    def shard_of(self, obj_id: int, name: str) -> int:
        shard = self.assignments.get(name)
        if shard is not None:
            return shard
        return self.fallback.shard_of(obj_id, name)


def make_policy(num_shards: int, placement: Any) -> ShardingPolicy:
    """Coerce ``placement`` into a policy for ``num_shards`` shards.

    Accepts a ready policy, the string ``"hash"``, or a name -> shard dict
    (explicit placement with hash fallback).
    """
    if isinstance(placement, ShardingPolicy):
        if placement.num_shards != num_shards:
            raise ConfigurationError(
                f"placement policy is for {placement.num_shards} shards, "
                f"but {num_shards} were requested")
        return placement
    if placement in (None, "hash"):
        return HashPlacement(num_shards)
    if isinstance(placement, Mapping):
        return ExplicitPlacement(num_shards, placement)
    raise ConfigurationError(
        f"cannot interpret {placement!r} as a sharding policy "
        "(use 'hash', a name->shard dict, or a ShardingPolicy)")


class ShardRouter:
    """Owns one broadcast group per shard and routes objects onto them.

    Shard 0 reuses the cluster's classic group (so a one-shard router is
    wire-identical to the unsharded runtime); further shards get fresh
    groups whose initial sequencer seats rotate round-robin over the
    machines, which is what actually spreads the sequencing load.

    The object -> shard mapping is epoch-versioned: initial placement comes
    from the policy and is recorded per object; :meth:`move` rewrites one
    object's route (recording it in the override table) and :meth:`add_shard`
    grows the group set on the live cluster.  Both bump ``placement_epoch``.
    Every write is also counted into a *window* (per shard and per object)
    that :class:`RebalancePlanner` reads and :meth:`reset_window` clears, so
    load decisions see recent traffic, not the whole run — and the counters
    follow the object when it moves.
    """

    def __init__(self, cluster: "Cluster", num_shards: int = 1,
                 placement: Any = None) -> None:
        self.cluster = cluster
        self.policy = make_policy(num_shards, placement)
        self.num_shards = num_shards
        self.groups: List["BroadcastGroup"] = [cluster.broadcast_group]
        for shard in range(1, num_shards):
            self.groups.append(cluster.new_broadcast_group(
                sequencer_node_id=cluster.nodes[shard % cluster.num_nodes].node_id))
        self.shard_stats: Dict[int, ShardStats] = {
            shard: ShardStats() for shard in range(num_shards)
        }
        #: Routing generation: bumped by every move and every added shard.
        self.placement_epoch = 0
        #: Shards whose total order was merged away (``remove_shard``).
        #: Groups are positional in ``self.groups`` and their wire-kind
        #: namespaces stay registered on every node, so a retired shard is
        #: marked, never deleted — its id must not be reused.
        self.retired: Set[int] = set()
        #: obj_id -> current shard (seeded from the policy on first use).
        self._assigned: Dict[int, int] = {}
        #: obj_id -> shard, for objects moved off their creation placement.
        self.overrides: Dict[int, int] = {}
        #: Load window (since the last reset): writes per shard / per object.
        self._window_shard_writes: Dict[int, int] = {
            shard: 0 for shard in range(num_shards)
        }
        self._window_obj_writes: Dict[int, int] = {}
        #: Byte-weighted load window: write payload bytes per shard / object.
        self._window_shard_bytes: Dict[int, int] = {
            shard: 0 for shard in range(num_shards)
        }
        self._window_obj_bytes: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #

    def shard_of(self, obj_id: int, name: str) -> int:
        """The policy's placement for the object (ignores overrides)."""
        return self.policy.shard_of(obj_id, name)

    def assign(self, obj_id: int, name: str) -> int:
        """The object's current shard, seeding the assignment on first use.

        A policy placement that lands on a retired shard is deterministically
        remapped onto the active shard list (the policies are static hash
        functions and know nothing about retirement).
        """
        shard = self._assigned.get(obj_id)
        if shard is None:
            shard = self.policy.shard_of(obj_id, name)
            if shard in self.retired:
                active = self.active_shards()
                shard = active[shard % len(active)]
            self._assigned[obj_id] = shard
        return shard

    def assigned_shard(self, obj_id: int) -> Optional[int]:
        """The object's current shard, or ``None`` if it was never placed."""
        return self._assigned.get(obj_id)

    def move(self, obj_id: int, new_shard: int) -> int:
        """Re-route ``obj_id`` onto ``new_shard``; returns the old shard.

        Pure routing-table surgery: the cross-group drain-and-switch that
        makes a move *safe* for an object with ordered writes in flight is
        the runtime's job (:meth:`repro.rts.hybrid.HybridRts.move_shard`).
        The object's window counters follow it, so load measurements stay
        attributed to where the traffic now lands.
        """
        if not 0 <= new_shard < self.num_shards:
            raise ConfigurationError(
                f"cannot move object {obj_id} to shard {new_shard}: only "
                f"{self.num_shards} shards exist")
        if new_shard in self.retired:
            raise ConfigurationError(
                f"cannot move object {obj_id} to shard {new_shard}: the "
                "shard is retired")
        old = self._assigned.get(obj_id)
        if old is None:
            raise ConfigurationError(
                f"object {obj_id} has no recorded placement to move from")
        if old == new_shard:
            return old
        self._assigned[obj_id] = new_shard
        self.overrides[obj_id] = new_shard
        window = self._window_obj_writes.get(obj_id, 0)
        if window:
            self._window_shard_writes[old] -= window
            self._window_shard_writes[new_shard] += window
        nbytes = self._window_obj_bytes.get(obj_id, 0)
        if nbytes:
            self._window_shard_bytes[old] -= nbytes
            self._window_shard_bytes[new_shard] += nbytes
        self.placement_epoch += 1
        return old

    def add_shard(self, sequencer_node_id: Optional[int] = None) -> int:
        """Add one broadcast group to the live cluster; returns its shard id.

        The new group's members join immediately (its wire-kind namespace is
        registered at construction) and the initial sequencer seat goes to
        the live machine currently hosting the fewest seats, so scale-out
        keeps spreading the ordering work.  Hash placement policies grow to
        include the new shard for objects created *afterwards*; existing
        objects keep their recorded assignment until explicitly moved.
        """
        shard = self.num_shards
        if sequencer_node_id is None:
            seats: Dict[int, int] = {}
            for existing, group in enumerate(self.groups):
                if existing in self.retired:
                    continue  # a retired sequencer seat carries no load
                seats[group.sequencer_node_id] = seats.get(
                    group.sequencer_node_id, 0) + 1
            live = [node.node_id for node in self.cluster.nodes if node.alive]
            if not live:
                raise ConfigurationError("no live node can host the new seat")
            sequencer_node_id = min(
                live, key=lambda nid: (seats.get(nid, 0), nid))
        self.groups.append(self.cluster.new_broadcast_group(
            sequencer_node_id=sequencer_node_id))
        self.num_shards += 1
        self.shard_stats[shard] = ShardStats()
        self._window_shard_writes[shard] = 0
        self._window_shard_bytes[shard] = 0
        if isinstance(self.policy, HashPlacement):
            self.policy = HashPlacement(self.num_shards, by=self.policy.by)
        self.placement_epoch += 1
        return shard

    def retire_shard(self, shard: int) -> None:
        """Mark ``shard`` retired: no placement, moves, or planning reach it.

        Routing-table surgery only, like :meth:`move` — evacuating the
        objects still assigned to the shard and draining/retiring its
        sequencer is the runtime's job
        (:meth:`repro.rts.hybrid.HybridRts.remove_shard`).  The group object
        itself stays in place (its id is positional and its wire-kind
        namespace is registered on every node), it just stops being a
        routing destination.
        """
        if not 0 <= shard < self.num_shards:
            raise ConfigurationError(
                f"cannot retire shard {shard}: only {self.num_shards} "
                "shards exist")
        if shard in self.retired:
            raise ConfigurationError(f"shard {shard} is already retired")
        if self.num_active_shards <= 1:
            raise ConfigurationError(
                "cannot retire the last active shard")
        self.retired.add(shard)
        self.placement_epoch += 1

    def active_shards(self) -> List[int]:
        """Shard ids still accepting placement, in ascending order."""
        return [shard for shard in range(self.num_shards)
                if shard not in self.retired]

    @property
    def num_active_shards(self) -> int:
        return self.num_shards - len(self.retired)

    # ------------------------------------------------------------------ #
    # Load accounting
    # ------------------------------------------------------------------ #

    def note_create(self, obj_id: int, name: str) -> int:
        shard = self.assign(obj_id, name)
        self.shard_stats[shard].note_create()
        return shard

    def note_write(self, obj_id: int, name: str, nbytes: int = 0) -> int:
        """Count one write invocation against the object's *current* shard.

        ``nbytes`` is the write's payload size; it feeds the byte-weighted
        load window (``0`` keeps the windows count-only, which is what
        callers that do not model payload sizes pass).
        """
        shard = self.assign(obj_id, name)
        self.shard_stats[shard].note_write()
        self._window_shard_writes[shard] += 1
        self._window_obj_writes[obj_id] = (
            self._window_obj_writes.get(obj_id, 0) + 1)
        if nbytes:
            self._window_shard_bytes[shard] += nbytes
            self._window_obj_bytes[obj_id] = (
                self._window_obj_bytes.get(obj_id, 0) + nbytes)
        return shard

    def window_loads(self) -> Dict[int, int]:
        """Writes per shard since the last window reset."""
        return dict(self._window_shard_writes)

    def window_byte_loads(self) -> Dict[int, int]:
        """Write payload bytes per shard since the last window reset."""
        return dict(self._window_shard_bytes)

    def window_object_writes(self, shard: Optional[int] = None) -> Dict[int, int]:
        """Writes per object since the last reset (optionally one shard's)."""
        if shard is None:
            return dict(self._window_obj_writes)
        return {obj_id: writes
                for obj_id, writes in self._window_obj_writes.items()
                if self._assigned.get(obj_id) == shard}

    def window_object_bytes(self, shard: Optional[int] = None) -> Dict[int, int]:
        """Payload bytes per object since the last reset (optionally one shard's)."""
        if shard is None:
            return dict(self._window_obj_bytes)
        return {obj_id: nbytes
                for obj_id, nbytes in self._window_obj_bytes.items()
                if self._assigned.get(obj_id) == shard}

    def reset_window(self) -> None:
        """Start a fresh load window (after a plan round or a move)."""
        for shard in self._window_shard_writes:
            self._window_shard_writes[shard] = 0
        self._window_obj_writes.clear()
        for shard in self._window_shard_bytes:
            self._window_shard_bytes[shard] = 0
        self._window_obj_bytes.clear()

    # ------------------------------------------------------------------ #
    # Lookup / reporting
    # ------------------------------------------------------------------ #

    def group_for(self, shard: int) -> "BroadcastGroup":
        return self.groups[shard]

    def sequencer_nodes(self) -> List[int]:
        """Current sequencer seat of every shard (for tests and reports)."""
        return [group.sequencer_node_id for group in self.groups]

    def queue_depths(self) -> Dict[int, int]:
        """Current service-queue depth of every shard's sequencer."""
        return {shard: group.sequencer.queue_depth
                for shard, group in enumerate(self.groups)}

    def summary(self) -> Dict[str, Any]:
        """Compact per-shard digest for benchmark reports."""
        per_shard: Dict[int, Dict[str, Any]] = {}
        for shard, stats in sorted(self.shard_stats.items()):
            digest = stats.summary()
            digest["max_queue_depth"] = self.groups[shard].sequencer.max_queue_depth
            per_shard[shard] = digest
        summary = {
            "num_shards": self.num_shards,
            "sequencer_nodes": self.sequencer_nodes(),
            "placement_epoch": self.placement_epoch,
            "per_shard": per_shard,
        }
        if self.overrides:
            summary["overrides"] = dict(sorted(self.overrides.items()))
        if self.retired:
            summary["retired_shards"] = sorted(self.retired)
            summary["num_active_shards"] = self.num_active_shards
        return summary


@dataclass(frozen=True)
class RebalanceMove:
    """One proposed object relocation between broadcast groups."""

    obj_id: int
    src: int
    dst: int


class RebalancePlanner:
    """Turns the router's load window into object -> group moves.

    The planner is stateless: all measurements live in the router's window
    counters, which the caller resets once it has acted on a plan.  One
    planning round moves traffic from the single hottest shard to the single
    coolest; repeated rounds converge on a balanced placement even when one
    object dominates (the monolith moves whole, in its own round, whenever
    doing so shrinks the hottest bin).

    Parameters
    ----------
    imbalance:
        Hot/cool load-score ratio below which the placement counts as
        balanced and no moves are proposed.
    min_writes:
        Minimum writes in the window before any decision is made (avoids
        reacting to startup noise).
    max_moves:
        Cap on moves per round; rebalancing is cheap but not free (each move
        costs one switch broadcast in two groups).
    queue_weight:
        Cost awareness: each shard's load score is its window writes plus
        ``queue_weight`` times the sequencer's *current* service-queue
        depth.  A backlogged sequencer is hotter than its arrival count
        alone suggests (every queued message is service time not yet paid),
        so the planner drains the shard that is actually melting, not just
        the one that received the most writes.  ``0`` restores the pure
        write-count heuristic.
    byte_weight:
        Payload awareness: adds ``byte_weight`` times the window's write
        payload *bytes* (per shard and per candidate object) to the load
        scores.  Two shards with equal write counts can carry wildly
        unequal byte traffic when value sizes are skewed (see
        ``WorkloadSpec.value_sizes``); a positive weight makes the planner
        move the object that is actually saturating the wire.  ``0``
        (default) ignores payload sizes entirely.
    exclude:
        Optional ``obj_id -> bool`` predicate; candidates for which it
        returns true are skipped.  The runtime's controller passes its
        per-object move-cooldown here to damp churn.
    """

    def __init__(self, router: ShardRouter, imbalance: float = 1.5,
                 min_writes: int = 32, max_moves: int = 3,
                 queue_weight: float = 1.0, byte_weight: float = 0.0,
                 exclude: Optional[Callable[[int], bool]] = None) -> None:
        if imbalance <= 1.0:
            raise ConfigurationError("imbalance threshold must exceed 1.0")
        if min_writes < 1 or max_moves < 1:
            raise ConfigurationError("min_writes and max_moves must be >= 1")
        if queue_weight < 0.0:
            raise ConfigurationError("queue_weight must be non-negative")
        if byte_weight < 0.0:
            raise ConfigurationError("byte_weight must be non-negative")
        self.router = router
        self.imbalance = imbalance
        self.min_writes = min_writes
        self.max_moves = max_moves
        self.queue_weight = queue_weight
        self.byte_weight = byte_weight
        self.exclude = exclude

    def _scores(self, loads: Dict[int, int]) -> Dict[int, float]:
        """Per-shard load scores: writes + weighted queue depth + weighted bytes."""
        scores = {shard: float(load) for shard, load in loads.items()}
        if self.queue_weight:
            depths = self.router.queue_depths()
            for shard in scores:
                scores[shard] += self.queue_weight * depths.get(shard, 0)
        if self.byte_weight:
            byte_loads = self.router.window_byte_loads()
            for shard in scores:
                scores[shard] += self.byte_weight * byte_loads.get(shard, 0)
        return scores

    def _object_weights(self, shard: int) -> Dict[int, float]:
        """Per-object window weights on ``shard``, byte-weighted when enabled."""
        weights = {obj_id: float(writes) for obj_id, writes
                   in self.router.window_object_writes(shard=shard).items()}
        if self.byte_weight:
            for obj_id, nbytes in self.router.window_object_bytes(
                    shard=shard).items():
                weights[obj_id] = (weights.get(obj_id, 0.0)
                                   + self.byte_weight * nbytes)
        return weights

    def _hot_and_cool(self) -> Optional[Any]:
        loads = {shard: load
                 for shard, load in self.router.window_loads().items()
                 if shard not in self.router.retired}
        if len(loads) < 2 or sum(loads.values()) < self.min_writes:
            return None
        scores = self._scores(loads)
        hot = max(scores, key=lambda shard: (scores[shard], -shard))
        cool = min(scores, key=lambda shard: (scores[shard], shard))
        if scores[hot] < self.imbalance * max(1.0, scores[cool]):
            return None
        return scores, hot, cool

    def plan(self) -> List[RebalanceMove]:
        """Moves off the hottest shard that shrink the hot/cool gap.

        Candidates are taken hottest-object-first; an object is skipped when
        moving it would overshoot the balance point (its window weight
        exceeds what is left of the hot-cool deficit after earlier moves),
        or when the ``exclude`` predicate (the controller's move cooldown)
        rules it out.
        """
        view = self._hot_and_cool()
        if view is None:
            return []
        scores, hot, cool = view
        deficit = scores[hot] - scores[cool]
        candidates = sorted(
            self._object_weights(hot).items(),
            key=lambda item: (-item[1], item[0]))
        moves: List[RebalanceMove] = []
        moved = 0.0
        for obj_id, weight in candidates:
            if len(moves) >= self.max_moves or weight <= 0:
                break
            if self.exclude is not None and self.exclude(obj_id):
                continue
            if weight >= deficit - 2 * moved:
                continue  # would make the destination the new hot spot
            moves.append(RebalanceMove(obj_id=obj_id, src=hot, dst=cool))
            moved += weight
        return moves

    def suggest(self, obj_id: int) -> Optional[int]:
        """A destination shard for one object, or ``None`` to stay put.

        The per-object flavour the adaptive controller consults: the object
        must sit on the hottest shard, the imbalance threshold must be met,
        and moving the object must not overshoot the balance point.
        """
        view = self._hot_and_cool()
        if view is None:
            return None
        scores, hot, cool = view
        if self.router.assigned_shard(obj_id) != hot:
            return None
        weight = self._object_weights(hot).get(obj_id, 0.0)
        if weight <= 0 or weight >= scores[hot] - scores[cool]:
            return None
        return cool
