"""Shared data-object runtime systems (the paper's core contribution).

One unified runtime — :class:`~repro.rts.hybrid.HybridRts` — manages shared
objects under per-object, runtime-switchable **management policies** (see
:mod:`repro.rts.policy`):

* ``"broadcast"`` — the object is replicated on every machine; reads are
  purely local; writes are applied everywhere via the totally-ordered
  broadcast layer (operation shipping), which directly yields sequential
  consistency.
* ``"primary-invalidate"`` / ``"primary-update"`` — the object has a primary
  copy and dynamically managed secondary copies; writes go to the primary
  and are propagated by invalidation or by the two-phase update protocol;
  replication decisions are driven by per-machine read/write-ratio
  statistics.
* ``"adaptive"`` — an :class:`~repro.rts.policy.AdaptivePolicy` controller
  watches the object's read/write ratio and migrates it between the fixed
  policies at run time, in the object's broadcast total order.

The classic :class:`~repro.rts.broadcast_rts.BroadcastRts` and
:class:`~repro.rts.p2p.runtime.PointToPointRts` remain available as
deprecated fixed-policy configurations of the unified runtime.  Everything
exposes the same :class:`ObjectHandle`-based interface, so the Orca
programming layer and the applications are agnostic of policy choices.
"""

from .object_model import ObjectSpec, OperationDef, operation
from .manager import ObjectManager, Replica
from .hybrid import HybridRts, MigrationRecord, ShardMoveRecord
from .policy import (
    AdaptiveParams,
    AdaptivePolicy,
    BroadcastReplicated,
    ManagementPolicy,
    PrimaryCopyInvalidate,
    PrimaryCopyUpdate,
    management_policy,
)
from .sharding import (
    BatchingParams,
    ExplicitPlacement,
    HashPlacement,
    RebalanceMove,
    RebalanceParams,
    RebalancePlanner,
    ShardRouter,
    ShardingPolicy,
)
from .stats import AccessStats, ShardStats

__all__ = [
    "ObjectSpec",
    "OperationDef",
    "operation",
    "ObjectManager",
    "Replica",
    "HybridRts",
    "MigrationRecord",
    "ShardMoveRecord",
    "ManagementPolicy",
    "BroadcastReplicated",
    "PrimaryCopyInvalidate",
    "PrimaryCopyUpdate",
    "AdaptivePolicy",
    "AdaptiveParams",
    "management_policy",
    "AccessStats",
    "ShardStats",
    "BatchingParams",
    "ShardingPolicy",
    "HashPlacement",
    "ExplicitPlacement",
    "ShardRouter",
    "RebalanceMove",
    "RebalanceParams",
    "RebalancePlanner",
]
