"""Shared data-object runtime systems (the paper's core contribution).

Two runtime systems manage replicated shared objects:

* :class:`~repro.rts.broadcast_rts.BroadcastRts` — every object is replicated
  on every machine; reads are purely local; writes are applied everywhere via
  the totally-ordered broadcast layer (operation shipping), which directly
  yields sequential consistency.
* :class:`~repro.rts.p2p.runtime.PointToPointRts` — objects have a primary
  copy and dynamically managed secondary copies; writes go to the primary and
  are propagated either by **invalidation** or by a **two-phase update**
  protocol; replication decisions are driven by per-machine read/write-ratio
  statistics.

Both expose the same :class:`ObjectHandle`-based interface, so the Orca
programming layer and the applications are agnostic of which RTS is in use.
"""

from .object_model import ObjectSpec, OperationDef, operation
from .manager import ObjectManager, Replica
from .sharding import (
    BatchingParams,
    ExplicitPlacement,
    HashPlacement,
    ShardRouter,
    ShardingPolicy,
)
from .stats import AccessStats, ShardStats

__all__ = [
    "ObjectSpec",
    "OperationDef",
    "operation",
    "ObjectManager",
    "Replica",
    "AccessStats",
    "ShardStats",
    "BatchingParams",
    "ShardingPolicy",
    "HashPlacement",
    "ExplicitPlacement",
    "ShardRouter",
]
