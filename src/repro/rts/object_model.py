"""The shared data-object model: abstract data types with read/write operations.

A shared object type is declared as a Python class deriving from
:class:`ObjectSpec`; its operations are ordinary methods decorated with
:func:`operation`, which records whether the operation may change the
object's state (a *write*) or not (a *read*).  The distinction is what makes
replication pay off: reads execute locally on any replica, writes go through
the runtime system's coherence protocol.

Operations may declare a *guard* — a predicate over the object state.  A
guarded operation blocks the invoking process until the guard holds (the
classic example is dequeueing from an empty job queue).  Guards are evaluated
atomically with the operation, on every replica, in the same total order, so
all replicas agree on whether an invocation succeeded or must be retried.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple, Type

from ..errors import RtsError, UnknownOperationError


class _RetryType:
    """Sentinel returned by the runtime when a guarded operation must wait."""

    _instance: Optional["_RetryType"] = None

    def __new__(cls) -> "_RetryType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<RETRY>"


#: Singleton marker meaning "guard not satisfied; re-issue when the object changes".
RETRY = _RetryType()


@dataclass(frozen=True)
class OperationDef:
    """Metadata describing one operation of a shared object type."""

    name: str
    func: Callable[..., Any]
    is_write: bool
    guard: Optional[Callable[[Any], bool]] = None
    #: Extra simulated CPU work units charged per invocation (beyond the
    #: runtime's fixed dispatch cost); applications normally account their own
    #: work instead.
    work_units: float = 0.0


def operation(write: bool = False, guard: Optional[Callable[[Any], bool]] = None,
              work_units: float = 0.0) -> Callable[[Callable], Callable]:
    """Mark a method of an :class:`ObjectSpec` subclass as a shared-object operation.

    Parameters
    ----------
    write:
        True if the operation may modify the object state.  Read operations
        are executed locally on a replica without any communication.
    guard:
        Optional predicate ``guard(self, *args, **kwargs) -> bool`` receiving
        the same arguments as the operation; the operation blocks the caller
        until the predicate is true.
    work_units:
        Simulated CPU work charged per invocation.
    """

    def decorate(func: Callable) -> Callable:
        func._op_is_write = write          # type: ignore[attr-defined]
        func._op_guard = guard             # type: ignore[attr-defined]
        func._op_work_units = work_units   # type: ignore[attr-defined]
        return func

    return decorate


class ObjectSpec:
    """Base class for shared abstract data types.

    Subclasses define their state in :meth:`init` (which receives the
    arguments passed at object creation) and their operations as methods
    decorated with :func:`operation`.  Instances must keep all their state in
    instance attributes so the default marshalling (used for replica creation
    and state transfer) works; override :meth:`marshal_state` /
    :meth:`unmarshal_state` for custom layouts.
    """

    #: Populated by ``__init_subclass__``: operation name -> OperationDef.
    _operations: Dict[str, OperationDef] = {}

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        ops: Dict[str, OperationDef] = {}
        # Inherit operations from parent ObjectSpec classes.
        for base in cls.__mro__[1:]:
            if issubclass(base, ObjectSpec) and base is not ObjectSpec:
                ops.update(getattr(base, "_operations", {}))
        for name, attr in cls.__dict__.items():
            if callable(attr) and hasattr(attr, "_op_is_write"):
                ops[name] = OperationDef(
                    name=name,
                    func=attr,
                    is_write=attr._op_is_write,
                    guard=attr._op_guard,
                    work_units=attr._op_work_units,
                )
        cls._operations = ops

    # -- lifecycle -------------------------------------------------------- #

    def init(self, *args: Any, **kwargs: Any) -> None:
        """Initialise the object's state (the Orca object 'constructor')."""

    @classmethod
    def operations(cls) -> Dict[str, OperationDef]:
        """All operations declared by this type (including inherited ones)."""
        return dict(cls._operations)

    @classmethod
    def operation_def(cls, name: str) -> OperationDef:
        try:
            return cls._operations[name]
        except KeyError:
            raise UnknownOperationError(
                f"object type {cls.__name__!r} has no operation {name!r}"
            ) from None

    @classmethod
    def create(
        cls, args: Tuple[Any, ...] = (), kwargs: Optional[Dict[str, Any]] = None
    ) -> "ObjectSpec":
        """Instantiate the type and run its ``init``."""
        instance = cls()
        instance.init(*args, **(kwargs or {}))
        return instance

    # -- state marshalling ------------------------------------------------ #

    def marshal_state(self) -> Dict[str, Any]:
        """Return a deep-copied snapshot of the object's state."""
        return copy.deepcopy(self.__dict__)

    def unmarshal_state(self, state: Dict[str, Any]) -> None:
        """Replace the object's state with a previously marshalled snapshot."""
        self.__dict__.clear()
        self.__dict__.update(copy.deepcopy(state))

    def state_size(self) -> int:
        """Estimated marshalled size of the whole object state, in bytes."""
        from ..amoeba.message import estimate_size

        return max(1, estimate_size(self.__dict__))

    def clone(self) -> "ObjectSpec":
        """Create an independent replica with identical state."""
        replica = type(self)()
        replica.unmarshal_state(self.marshal_state())
        return replica


def execute_operation(instance: ObjectSpec, op: OperationDef,
                      args: Tuple[Any, ...], kwargs: Optional[Dict[str, Any]] = None) -> Any:
    """Run ``op`` against ``instance``, honouring its guard.

    Returns the operation's result, or :data:`RETRY` if the guard is not
    satisfied (in which case the state is guaranteed untouched).
    """
    kwargs = kwargs or {}
    if op.guard is not None and not op.guard(instance, *args, **kwargs):
        return RETRY
    return op.func(instance, *args, **kwargs)


def validate_spec(spec_class: Type[ObjectSpec]) -> None:
    """Sanity-check an object type before it is registered with a runtime."""
    if not (isinstance(spec_class, type) and issubclass(spec_class, ObjectSpec)):
        raise RtsError(f"{spec_class!r} is not an ObjectSpec subclass")
    if not spec_class._operations:
        raise RtsError(
            f"object type {spec_class.__name__!r} declares no operations; "
            "decorate its methods with @operation(...)"
        )
