"""Common interface shared by the runtime systems.

Application code (and the Orca layer on top) manipulates shared objects
through :class:`ObjectHandle` references and a :class:`RuntimeSystem`
implementation.  Handles are location transparent: the same handle works on
every machine, and the runtime decides whether an invocation is a local read,
a broadcast update, or an RPC to a primary copy.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple, Type

from ..errors import RtsError
from .manager import ObjectManager
from .object_model import ObjectSpec, validate_spec
from .stats import LatencyProbe

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..amoeba.cluster import Cluster
    from ..sim.process import SimProcess


@dataclass(frozen=True)
class ObjectHandle:
    """A location-transparent reference to one shared object."""

    obj_id: int
    name: str
    spec_class: Type[ObjectSpec]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ObjectHandle {self.name!r} #{self.obj_id} ({self.spec_class.__name__})>"


@dataclass
class RtsStats:
    """Aggregate invocation statistics for one runtime system."""

    objects_created: int = 0
    local_reads: int = 0
    remote_reads: int = 0
    local_writes: int = 0
    broadcast_writes: int = 0
    #: Ordered broadcasts that carried a write batch (so
    #: ``broadcast_writes / batches_sent`` is the overall batching factor).
    batches_sent: int = 0
    #: Ready batches held back because the shard sequencer's queue exceeded
    #: the flow-control threshold (see BatchingParams.backpressure_depth).
    flow_control_holds: int = 0
    rpc_writes: int = 0
    guard_retries: int = 0
    replicas_created: int = 0
    replicas_dropped: int = 0
    invalidations_sent: int = 0
    updates_sent: int = 0
    #: Policy switches performed by the unified runtime (total and per
    #: direction; protocol-only flips count toward the total only).
    migrations: int = 0
    migrations_to_primary: int = 0
    migrations_to_broadcast: int = 0
    #: Cross-group moves (drain-and-switch), live group additions, and
    #: primary-seat relocations performed by the rebalancing layer.
    shard_moves: int = 0
    shards_added: int = 0
    primary_relocations: int = 0
    #: Primary takeovers after a primary-node crash, and client write
    #: re-issues that the applied-write-id table recognised as duplicates.
    primary_recoveries: int = 0
    deduplicated_writes: int = 0
    #: Elasticity-loop events: completed rejoin catch-ups of recovered
    #: nodes, planned node drains, broadcast groups merged away, and
    #: primary seats handed back to a rejoined heaviest writer.
    node_rejoins: int = 0
    nodes_drained: int = 0
    shards_removed: int = 0
    seats_handed_back: int = 0
    #: Transaction-layer events: committed groups (by path), transactions
    #: surfaced to the caller as aborted, internal attempt retries after a
    #: guard rejection, ordinary writes deferred behind a prepared or
    #: barrier lock, and coordinator-crash recovery passes.
    txn_commits: int = 0
    txn_aborts: int = 0
    txn_retries: int = 0
    txn_same_shard_commits: int = 0
    txn_cross_shard_commits: int = 0
    txn_deferred_writes: int = 0
    txn_recoveries: int = 0
    per_object_reads: Dict[int, int] = field(default_factory=dict)
    per_object_writes: Dict[int, int] = field(default_factory=dict)

    def note_read(self, obj_id: int, local: bool) -> None:
        if local:
            self.local_reads += 1
        else:
            self.remote_reads += 1
        self.per_object_reads[obj_id] = self.per_object_reads.get(obj_id, 0) + 1

    def note_write(self, obj_id: int) -> None:
        self.per_object_writes[obj_id] = self.per_object_writes.get(obj_id, 0) + 1


class RuntimeSystem(ABC):
    """Abstract base of the broadcast and point-to-point runtime systems."""

    #: Human-readable name used in reports.
    name = "abstract-rts"

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster
        self.sim = cluster.sim
        self.cost_model = cluster.cost_model
        self.stats = RtsStats()
        #: Invocation-latency hook; inert until a recorder is attached.
        self.latency_probe = LatencyProbe()
        #: Gateway/session tier, attached lazily by gateway-mode workload
        #: runs (see :mod:`repro.gateway`); ``None`` keeps reports and
        #: fingerprints byte-identical to pre-gateway runs.
        self.gateway_tier: Optional[Any] = None
        self._object_ids = itertools.count(1)
        self._handles: Dict[int, ObjectHandle] = {}
        #: One object manager per machine.
        self.managers: Dict[int, ObjectManager] = {
            node.node_id: ObjectManager(node) for node in cluster.nodes
        }

    # ------------------------------------------------------------------ #
    # Object creation / lookup
    # ------------------------------------------------------------------ #

    def _new_handle(self, spec_class: Type[ObjectSpec], name: Optional[str]) -> ObjectHandle:
        validate_spec(spec_class)
        obj_id = next(self._object_ids)
        handle = ObjectHandle(obj_id=obj_id,
                              name=name or f"{spec_class.__name__}#{obj_id}",
                              spec_class=spec_class)
        self._handles[obj_id] = handle
        self.stats.objects_created += 1
        return handle

    def handle(self, obj_id: int) -> ObjectHandle:
        try:
            return self._handles[obj_id]
        except KeyError:
            raise RtsError(f"unknown object id {obj_id}") from None

    def handles(self) -> List[ObjectHandle]:
        return list(self._handles.values())

    def manager(self, node_id: int) -> ObjectManager:
        return self.managers[node_id]

    # ------------------------------------------------------------------ #
    # Abstract operations
    # ------------------------------------------------------------------ #

    @abstractmethod
    def create_object(self, proc: "SimProcess", spec_class: Type[ObjectSpec],
                      args: Tuple[Any, ...] = (), kwargs: Optional[Dict[str, Any]] = None,
                      name: Optional[str] = None,
                      policy: Any = None) -> ObjectHandle:
        """Create a shared object from the given process; returns its handle.

        ``policy`` names the management policy for the object (see
        :mod:`repro.rts.policy`); runtimes that manage every object one way
        accept and ignore it, so scenarios can pass policies uniformly.
        """

    @abstractmethod
    def _invoke(self, proc: "SimProcess", handle: ObjectHandle, op_name: str,
                args: Tuple[Any, ...] = (), kwargs: Optional[Dict[str, Any]] = None) -> Any:
        """Runtime-specific invocation of an operation on a shared object."""

    def invoke(self, proc: "SimProcess", handle: ObjectHandle, op_name: str,
               args: Tuple[Any, ...] = (), kwargs: Optional[Dict[str, Any]] = None) -> Any:
        """Invoke an operation on a shared object from the given process.

        When a latency recorder is attached to :attr:`latency_probe`, the
        invocation's virtual-time latency (including any blocking on
        broadcasts, RPCs or guards) is recorded under ``"read"`` or
        ``"write"`` according to the operation's declared class.
        """
        probe = self.latency_probe
        if not probe.enabled:
            return self._invoke(proc, handle, op_name, args, kwargs)
        start = probe.start(proc)
        result = self._invoke(proc, handle, op_name, args, kwargs)
        kind = "write" if handle.spec_class.operation_def(op_name).is_write else "read"
        probe.finish(kind, proc, start)
        return result

    def attach_latency_recorder(self, recorder: Any) -> Any:
        """Attach a latency recorder to every subsequent invocation; returns it."""
        self.latency_probe.recorder = recorder
        return recorder

    def downstream_queue_depth(self) -> int:
        """Instantaneous depth of the runtime's deepest service queue.

        This is the congestion signal the gateway tier sheds on: the same
        per-shard sequencer depth that arms the write batcher's
        backpressure, surfaced for admission-time decisions at the client
        edge.  Runtimes without an internal service queue report 0 (never
        congested), so gateways degrade to quota/queue-bound admission
        only.
        """
        return 0

    # ------------------------------------------------------------------ #
    # Helpers shared by implementations
    # ------------------------------------------------------------------ #

    @staticmethod
    def _node_of(proc: "SimProcess"):
        node = getattr(proc, "node", None)
        if node is None:
            raise RtsError(
                "shared-object operations must be invoked from a process created "
                "on a cluster node (kernel.spawn_thread or OrcaProcess.fork)"
            )
        return node

    #: Default policy label reported for objects of single-policy runtimes.
    object_policy_name = "fixed"

    def policy_of(self, handle: ObjectHandle) -> str:
        """Name of the management policy governing ``handle``.

        Single-policy runtimes report their class-level label; the unified
        runtime overrides this with the object's current policy.
        """
        return self.object_policy_name

    def object_summary(self) -> Dict[str, Dict[str, Any]]:
        """Reconciled per-object digest: reads, writes and policy by object.

        This is the single source the shard- and runtime-level counters must
        agree with: reads/writes come from the same per-object dicts that
        feed :attr:`RtsStats`, keyed by the stable object name, with the
        object's management policy alongside.
        """
        summary: Dict[str, Dict[str, Any]] = {}
        for handle in sorted(self.handles(), key=lambda h: h.obj_id):
            summary[handle.name] = {
                "obj_id": handle.obj_id,
                "reads": self.stats.per_object_reads.get(handle.obj_id, 0),
                "writes": self.stats.per_object_writes.get(handle.obj_id, 0),
                "policy": self.policy_of(handle),
            }
        return summary

    def read_write_summary(self) -> Dict[str, Any]:
        """Compact summary used by benchmark reports."""
        summary = {
            "rts": self.name,
            "objects": self.stats.objects_created,
            "local_reads": self.stats.local_reads,
            "remote_reads": self.stats.remote_reads,
            "broadcast_writes": self.stats.broadcast_writes,
            "rpc_writes": self.stats.rpc_writes,
            "guard_retries": self.stats.guard_retries,
            "per_object": self.object_summary(),
        }
        if self.stats.batches_sent:
            summary["batches_sent"] = self.stats.batches_sent
        if self.gateway_tier is not None:
            summary["gateway"] = self.gateway_tier.summary()
        return summary
