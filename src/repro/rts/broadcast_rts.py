"""The classic broadcast runtime system, as a fixed-policy configuration.

.. deprecated::
    :class:`BroadcastRts` is now a thin shim over
    :class:`~repro.rts.hybrid.HybridRts` with every object pinned to the
    ``"broadcast"`` management policy.  Constructing it still works — and
    behaves exactly as before, including sharding and write batching — but
    emits a :class:`DeprecationWarning`; new code should build
    ``HybridRts(cluster, default_policy="broadcast")`` (or pass per-object
    policies) instead.

The broadcast design itself is unchanged: every shared object is replicated
on every machine, reads execute on the local replica with no network
traffic, and writes are broadcast — operation code plus parameters — through
the totally-ordered group layer, which is what makes the replicas
sequentially consistent.  See :mod:`repro.rts.hybrid` for the machinery and
:mod:`repro.rts.sharding` for the sharding/batching scaling levers.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Any

from .hybrid import HybridRts

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..amoeba.cluster import Cluster


class BroadcastRts(HybridRts):
    """Fully replicated shared objects on top of totally-ordered broadcast."""

    name = "broadcast-rts"

    def __init__(self, cluster: "Cluster", record_history: bool = False,
                 num_shards: int = 1, placement: Any = None,
                 batching: Any = None) -> None:
        if type(self) is BroadcastRts:
            warnings.warn(
                "BroadcastRts is deprecated; use HybridRts(cluster, "
                "default_policy='broadcast') — the unified runtime also "
                "accepts per-object policies and live migration",
                DeprecationWarning, stacklevel=2)
        super().__init__(cluster, default_policy="broadcast",
                         record_history=record_history, num_shards=num_shards,
                         placement=placement, batching=batching)
