"""The broadcast runtime system: full replication, writes by ordered broadcast.

Every shared object is replicated on every machine.  Read operations execute
directly on the local replica, bypassing the object manager and generating no
network traffic.  Write operations are broadcast — operation code plus
parameters, not the new value — through the totally-ordered group layer; each
machine's object manager applies incoming writes in strict sequence-number
order, which is exactly what makes the replicas sequentially consistent.

Guarded operations that find their guard false are applied as no-ops
everywhere (all replicas agree, since they evaluate the guard on identical
state) and the invoking process is blocked until its local replica changes,
at which point the operation is re-issued.

Two scaling levers sit on top of the classic design (both off by default, in
which case the runtime is wire-identical to the paper's single-group RTS):

* **Sharding** (``num_shards``) — the object space is split over several
  broadcast groups, each with its own sequencer placed round-robin over the
  machines (see :mod:`repro.rts.sharding`).  Total order, and therefore
  linearizability, holds per object; the cross-object sequential consistency
  of the single-group design weakens to per-shard order, which none of the
  Orca-style guarded objects observe.
* **Write batching** (``batching``) — concurrent writes issued on one node
  for the same shard ride a single ordered broadcast, encoded as a
  ``("batch", [...])`` payload and decoded back into individual operations
  at every member.  Batches are flushed on a size threshold, a time
  threshold, or as soon as the previous batch is delivered (group-commit);
  each node has at most one batch per shard in flight, which preserves
  per-node FIFO write order even across retries.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple, Type

from ..amoeba.broadcast.protocol import DeliveredMessage
from ..amoeba.message import estimate_size
from ..errors import RtsError
from .base import ObjectHandle, RuntimeSystem
from .object_model import RETRY, ObjectSpec
from .consistency import HistoryRecorder
from .sharding import BatchingParams, ShardRouter, batching_params

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..amoeba.broadcast.group import BroadcastGroup
    from ..amoeba.cluster import Cluster
    from ..amoeba.node import Node
    from ..sim.process import SimProcess


@dataclass
class _PendingWrite:
    """A write invocation waiting for its own broadcast to come back."""

    proc: "SimProcess"
    result: Any = None
    resolved: bool = False


class _WriteBatcher:
    """Per-(node, shard) write combining onto the ordered broadcast.

    Writes enqueue here instead of broadcasting individually.  A batch is
    flushed when it reaches ``max_batch`` operations, when ``flush_delay``
    expires, or — with a zero delay — immediately while no batch is in
    flight.  Only one batch per (node, shard) is outstanding at a time:
    writes arriving while it is on the wire coalesce into the next batch,
    which both preserves per-node FIFO order and yields the group-commit
    effect that amortises the sequencer round trip under contention.
    """

    def __init__(self, rts: "BroadcastRts", node: "Node",
                 group: "BroadcastGroup", shard: int,
                 params: BatchingParams) -> None:
        self.rts = rts
        self.node = node
        self.group = group
        self.shard = shard
        self.params = params
        self._entries: List[Tuple[Any, ...]] = []
        self._bytes = 0
        self._in_flight = False
        self._timer: Optional[int] = None

    def enqueue(self, entry: Tuple[Any, ...], size: int) -> None:
        self._entries.append(entry)
        self._bytes += size
        self._maybe_flush()

    def on_batch_delivered(self) -> None:
        self._in_flight = False
        self._maybe_flush()

    def _maybe_flush(self) -> None:
        if self._in_flight or not self._entries:
            return
        if (len(self._entries) >= self.params.max_batch
                or self.params.flush_delay <= 0.0):
            self._flush()
        elif self._timer is None:
            self._timer = self.node.kernel.set_timer(
                self.params.flush_delay, self._on_timer)

    def _on_timer(self) -> None:
        self._timer = None
        if not self._in_flight and self._entries:
            self._flush()

    def _flush(self) -> None:
        if self._timer is not None:
            self.node.kernel.cancel_timer(self._timer)
            self._timer = None
        entries, self._entries = self._entries, []
        size, self._bytes = self._bytes, 0
        self._in_flight = True
        self.rts.stats.batches_sent += 1
        self.rts.router.shard_stats[self.shard].note_batch(len(entries))
        self.group.member(self.node.node_id).broadcast(
            ("batch", entries), size=max(16, size) + 8)


class BroadcastRts(RuntimeSystem):
    """Fully replicated shared objects on top of totally-ordered broadcast."""

    name = "broadcast-rts"

    def __init__(self, cluster: "Cluster", record_history: bool = False,
                 num_shards: int = 1, placement: Any = None,
                 batching: Any = None) -> None:
        super().__init__(cluster)
        self.router = ShardRouter(cluster, num_shards=num_shards,
                                  placement=placement)
        #: Shard-0 group, kept under the classic attribute name.
        self.group = self.router.group_for(0)
        self.batching = batching_params(batching)
        self._batchers: Dict[Tuple[int, int], _WriteBatcher] = {}
        self._invocation_ids = itertools.count(1)
        self._pending: Dict[int, _PendingWrite] = {}
        #: obj_id -> shard, fixed at creation time.
        self._shard_by_obj: Dict[int, int] = {}
        #: Processes waiting for a replica of a given object to appear locally:
        #: (node_id, obj_id) -> [SimProcess, ...]
        self._replica_waiters: Dict[Tuple[int, int], List["SimProcess"]] = {}
        self.history = HistoryRecorder(enabled=record_history)
        for shard, group in enumerate(self.router.groups):
            for node in cluster.nodes:
                group.set_delivery_handler(
                    node.node_id,
                    lambda delivered, nid=node.node_id, s=shard:
                        self._on_deliver(nid, s, delivered),
                )

    # ------------------------------------------------------------------ #
    # Sharding helpers
    # ------------------------------------------------------------------ #

    @property
    def num_shards(self) -> int:
        return self.router.num_shards

    def shard_of(self, handle: ObjectHandle) -> int:
        """The shard (and thus broadcast group) holding ``handle``."""
        shard = self._shard_by_obj.get(handle.obj_id)
        if shard is None:
            shard = self.router.shard_of(handle.obj_id, handle.name)
            self._shard_by_obj[handle.obj_id] = shard
        return shard

    def _batcher(self, node: "Node", shard: int) -> _WriteBatcher:
        key = (node.node_id, shard)
        batcher = self._batchers.get(key)
        if batcher is None:
            batcher = _WriteBatcher(self, node, self.router.group_for(shard),
                                    shard, self.batching)
            self._batchers[key] = batcher
        return batcher

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def create_object(self, proc: "SimProcess", spec_class: Type[ObjectSpec],
                      args: Tuple[Any, ...] = (), kwargs: Optional[Dict[str, Any]] = None,
                      name: Optional[str] = None) -> ObjectHandle:
        """Create a shared object, replicated on every machine."""
        node = self._node_of(proc)
        handle = self._new_handle(spec_class, name)
        shard = self.shard_of(handle)
        self.router.shard_stats[shard].note_create()
        invocation_id = next(self._invocation_ids)
        pending = _PendingWrite(proc=proc)
        self._pending[invocation_id] = pending
        payload = ("create", handle.obj_id, spec_class, args, kwargs or {},
                   invocation_id)
        size = max(32, estimate_size(args) + estimate_size(kwargs or {}))
        proc.advance(self.cost_model.cpu.operation_dispatch_cost)
        proc.absorb_overhead(node.drain_overhead())
        proc.flush()
        self.router.group_for(shard).member(node.node_id).broadcast(
            payload, size=size)
        proc.suspend()
        self._pending.pop(invocation_id, None)
        return handle

    def _invoke(self, proc: "SimProcess", handle: ObjectHandle, op_name: str,
                args: Tuple[Any, ...] = (), kwargs: Optional[Dict[str, Any]] = None) -> Any:
        """Invoke ``op_name`` on the shared object referenced by ``handle``."""
        node = self._node_of(proc)
        op = handle.spec_class.operation_def(op_name)
        cpu = self.cost_model.cpu
        proc.advance(cpu.operation_dispatch_cost)
        if op.work_units:
            proc.compute(op.work_units)
        manager = self.managers[node.node_id]

        if not op.is_write:
            # Reads are purely local: no network traffic, no kernel round trip.
            if not manager.has_valid_copy(handle.obj_id):
                self._await_replica(proc, node.node_id, handle.obj_id)
            proc.absorb_overhead(node.drain_overhead())
            while True:
                result = manager.execute_read(handle.obj_id, op, args, kwargs)
                if result is not RETRY:
                    break
                self.stats.guard_retries += 1
                self._wait_for_change(proc, node.node_id, handle.obj_id)
            self.stats.note_read(handle.obj_id, local=True)
            self.history.record_read(proc.name, node.node_id, handle.obj_id,
                                     op_name, args, result,
                                     manager.get(handle.obj_id).version)
            return result

        # Writes: broadcast the operation (directly, or via the node's batch
        # for the object's shard) and wait for it to be applied locally.
        self.stats.note_write(handle.obj_id)
        shard = self.shard_of(handle)
        group = self.router.group_for(shard)
        while True:
            if not manager.has_valid_copy(handle.obj_id):
                self._await_replica(proc, node.node_id, handle.obj_id)
            invocation_id = next(self._invocation_ids)
            pending = _PendingWrite(proc=proc)
            self._pending[invocation_id] = pending
            size = max(16, estimate_size(args) + estimate_size(kwargs or {}) + 16)
            proc.absorb_overhead(node.drain_overhead())
            proc.flush()
            self.stats.broadcast_writes += 1
            self.router.shard_stats[shard].note_write()
            if self.batching is not None:
                entry = (handle.obj_id, op_name, args, kwargs or {}, invocation_id)
                self._batcher(node, shard).enqueue(entry, size)
            else:
                payload = ("op", handle.obj_id, op_name, args, kwargs or {},
                           invocation_id)
                group.member(node.node_id).broadcast(payload, size=size)
            result = proc.suspend()
            self._pending.pop(invocation_id, None)
            proc.absorb_overhead(node.drain_overhead())
            if result is not RETRY:
                return result
            # Guard rejected the operation everywhere; wait for a change and retry.
            self.stats.guard_retries += 1
            self._wait_for_change(proc, node.node_id, handle.obj_id)

    # ------------------------------------------------------------------ #
    # Delivery handling (runs at every member, in per-shard total order)
    # ------------------------------------------------------------------ #

    def _on_deliver(self, node_id: int, shard: int,
                    delivered: DeliveredMessage) -> None:
        payload = delivered.payload
        kind = payload[0]
        manager = self.managers[node_id]
        node = self.cluster.node(node_id)
        cpu = self.cost_model.cpu
        if kind == "create":
            _, obj_id, spec_class, args, kwargs, invocation_id = payload
            if not manager.has_valid_copy(obj_id):
                instance = spec_class.create(args, kwargs)
                manager.install(obj_id, self.handle(obj_id).name, instance)
                self.stats.replicas_created += 1
            node.charge_overhead(cpu.operation_dispatch_cost)
            self._wake_replica_waiters(node_id, obj_id)
            if delivered.origin == node_id:
                self._resolve(invocation_id, None)
            return
        if kind == "op":
            _, obj_id, op_name, args, kwargs, invocation_id = payload
            self._apply_one(node_id, manager, node, obj_id, op_name, args,
                            kwargs, invocation_id, delivered.origin,
                            delivered.seqno)
            return
        if kind == "batch":
            _, entries = payload
            for obj_id, op_name, args, kwargs, invocation_id in entries:
                self._apply_one(node_id, manager, node, obj_id, op_name, args,
                                kwargs, invocation_id, delivered.origin,
                                delivered.seqno)
            if delivered.origin == node_id:
                batcher = self._batchers.get((node_id, shard))
                if batcher is not None:
                    batcher.on_batch_delivered()
            return
        raise RtsError(f"unknown broadcast RTS payload kind {kind!r}")

    def _apply_one(self, node_id: int, manager, node, obj_id: int,
                   op_name: str, args, kwargs, invocation_id: int,
                   origin: int, seqno: int) -> None:
        """Apply one delivered write (standalone or decoded from a batch)."""
        handle = self.handle(obj_id)
        op = handle.spec_class.operation_def(op_name)
        cpu = self.cost_model.cpu
        if not manager.has_valid_copy(obj_id):
            # Per-shard total order guarantees the create precedes every
            # operation, so a missing replica is a protocol error worth
            # failing on.
            raise RtsError(
                f"node {node_id} received operation {op_name!r} for object "
                f"{obj_id} before its create message"
            )
        result = manager.apply_write(obj_id, op, args, kwargs,
                                     local_origin=origin == node_id)
        # Applying the update costs CPU on every machine that holds a
        # replica: this is the overhead that limits ACP's speedup.
        node.charge_overhead(cpu.operation_dispatch_cost +
                             op.work_units * cpu.work_unit_time)
        if result is not RETRY:
            self.history.record_write(node_id, obj_id, op_name, args, seqno,
                                      manager.get(obj_id).version)
        if origin == node_id:
            self._resolve(invocation_id, result)

    def _resolve(self, invocation_id: int, result: Any) -> None:
        pending = self._pending.get(invocation_id)
        if pending is None or pending.resolved:
            return
        pending.resolved = True
        pending.result = result
        pending.proc.wake(result)

    # ------------------------------------------------------------------ #
    # Blocking helpers
    # ------------------------------------------------------------------ #

    def _await_replica(self, proc: "SimProcess", node_id: int, obj_id: int) -> None:
        """Block until this node holds a replica of ``obj_id``."""
        key = (node_id, obj_id)
        self._replica_waiters.setdefault(key, []).append(proc)
        proc.suspend()

    def _wake_replica_waiters(self, node_id: int, obj_id: int) -> None:
        for proc in self._replica_waiters.pop((node_id, obj_id), []):
            proc.wake()

    def _wait_for_change(self, proc: "SimProcess", node_id: int, obj_id: int) -> None:
        """Block until the local replica of ``obj_id`` is modified."""
        replica = self.managers[node_id].get(obj_id)
        replica.on_next_change(lambda: proc.wake())
        proc.suspend()

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def read_write_summary(self) -> Dict[str, Any]:
        summary = super().read_write_summary()
        if self.num_shards > 1 or self.batching is not None:
            summary["sharding"] = self.router.summary()
            if self.batching is not None:
                summary["batching"] = {
                    "max_batch": self.batching.max_batch,
                    "flush_delay": self.batching.flush_delay,
                }
        return summary
