"""The broadcast runtime system: full replication, writes by ordered broadcast.

Every shared object is replicated on every machine.  Read operations execute
directly on the local replica, bypassing the object manager and generating no
network traffic.  Write operations are broadcast — operation code plus
parameters, not the new value — through the totally-ordered group layer; each
machine's object manager applies incoming writes in strict sequence-number
order, which is exactly what makes the replicas sequentially consistent.

Guarded operations that find their guard false are applied as no-ops
everywhere (all replicas agree, since they evaluate the guard on identical
state) and the invoking process is blocked until its local replica changes,
at which point the operation is re-issued.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple, Type

from ..amoeba.broadcast.protocol import DeliveredMessage
from ..amoeba.message import estimate_size
from ..errors import RtsError
from .base import ObjectHandle, RuntimeSystem
from .object_model import RETRY, ObjectSpec
from .consistency import HistoryRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..amoeba.cluster import Cluster
    from ..sim.process import SimProcess


@dataclass
class _PendingWrite:
    """A write invocation waiting for its own broadcast to come back."""

    proc: "SimProcess"
    result: Any = None
    resolved: bool = False


class BroadcastRts(RuntimeSystem):
    """Fully replicated shared objects on top of totally-ordered broadcast."""

    name = "broadcast-rts"

    def __init__(self, cluster: "Cluster", record_history: bool = False) -> None:
        super().__init__(cluster)
        self.group = cluster.broadcast_group
        self._invocation_ids = itertools.count(1)
        self._pending: Dict[int, _PendingWrite] = {}
        #: Processes waiting for a replica of a given object to appear locally:
        #: (node_id, obj_id) -> [SimProcess, ...]
        self._replica_waiters: Dict[Tuple[int, int], List["SimProcess"]] = {}
        self.history = HistoryRecorder(enabled=record_history)
        for node in cluster.nodes:
            self.group.set_delivery_handler(
                node.node_id,
                lambda delivered, nid=node.node_id: self._on_deliver(nid, delivered),
            )

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def create_object(self, proc: "SimProcess", spec_class: Type[ObjectSpec],
                      args: Tuple[Any, ...] = (), kwargs: Optional[Dict[str, Any]] = None,
                      name: Optional[str] = None) -> ObjectHandle:
        """Create a shared object, replicated on every machine."""
        node = self._node_of(proc)
        handle = self._new_handle(spec_class, name)
        invocation_id = next(self._invocation_ids)
        pending = _PendingWrite(proc=proc)
        self._pending[invocation_id] = pending
        payload = ("create", handle.obj_id, spec_class, args, kwargs or {},
                   invocation_id)
        size = max(32, estimate_size(args) + estimate_size(kwargs or {}))
        proc.advance(self.cost_model.cpu.operation_dispatch_cost)
        proc.absorb_overhead(node.drain_overhead())
        proc.flush()
        self.group.member(node.node_id).broadcast(payload, size=size)
        proc.suspend()
        self._pending.pop(invocation_id, None)
        return handle

    def _invoke(self, proc: "SimProcess", handle: ObjectHandle, op_name: str,
                args: Tuple[Any, ...] = (), kwargs: Optional[Dict[str, Any]] = None) -> Any:
        """Invoke ``op_name`` on the shared object referenced by ``handle``."""
        node = self._node_of(proc)
        op = handle.spec_class.operation_def(op_name)
        cpu = self.cost_model.cpu
        proc.advance(cpu.operation_dispatch_cost)
        if op.work_units:
            proc.compute(op.work_units)
        manager = self.managers[node.node_id]

        if not op.is_write:
            # Reads are purely local: no network traffic, no kernel round trip.
            if not manager.has_valid_copy(handle.obj_id):
                self._await_replica(proc, node.node_id, handle.obj_id)
            proc.absorb_overhead(node.drain_overhead())
            while True:
                result = manager.execute_read(handle.obj_id, op, args, kwargs)
                if result is not RETRY:
                    break
                self.stats.guard_retries += 1
                self._wait_for_change(proc, node.node_id, handle.obj_id)
            self.stats.note_read(handle.obj_id, local=True)
            self.history.record_read(proc.name, node.node_id, handle.obj_id,
                                     op_name, args, result,
                                     manager.get(handle.obj_id).version)
            return result

        # Writes: broadcast the operation and wait for it to be applied locally.
        self.stats.note_write(handle.obj_id)
        while True:
            if not manager.has_valid_copy(handle.obj_id):
                self._await_replica(proc, node.node_id, handle.obj_id)
            invocation_id = next(self._invocation_ids)
            pending = _PendingWrite(proc=proc)
            self._pending[invocation_id] = pending
            payload = ("op", handle.obj_id, op_name, args, kwargs or {}, invocation_id)
            size = max(16, estimate_size(args) + estimate_size(kwargs or {}) + 16)
            proc.absorb_overhead(node.drain_overhead())
            proc.flush()
            self.stats.broadcast_writes += 1
            self.group.member(node.node_id).broadcast(payload, size=size)
            result = proc.suspend()
            self._pending.pop(invocation_id, None)
            proc.absorb_overhead(node.drain_overhead())
            if result is not RETRY:
                return result
            # Guard rejected the operation everywhere; wait for a change and retry.
            self.stats.guard_retries += 1
            self._wait_for_change(proc, node.node_id, handle.obj_id)

    # ------------------------------------------------------------------ #
    # Delivery handling (runs at every member, in total order)
    # ------------------------------------------------------------------ #

    def _on_deliver(self, node_id: int, delivered: DeliveredMessage) -> None:
        payload = delivered.payload
        kind = payload[0]
        manager = self.managers[node_id]
        node = self.cluster.node(node_id)
        cpu = self.cost_model.cpu
        if kind == "create":
            _, obj_id, spec_class, args, kwargs, invocation_id = payload
            if not manager.has_valid_copy(obj_id):
                instance = spec_class.create(args, kwargs)
                manager.install(obj_id, self.handle(obj_id).name, instance)
                self.stats.replicas_created += 1
            node.charge_overhead(cpu.operation_dispatch_cost)
            self._wake_replica_waiters(node_id, obj_id)
            if delivered.origin == node_id:
                self._resolve(invocation_id, None)
            return
        if kind == "op":
            _, obj_id, op_name, args, kwargs, invocation_id = payload
            handle = self.handle(obj_id)
            op = handle.spec_class.operation_def(op_name)
            if not manager.has_valid_copy(obj_id):
                # Total order guarantees the create precedes every operation,
                # so a missing replica is a protocol error worth failing on.
                raise RtsError(
                    f"node {node_id} received operation {op_name!r} for object "
                    f"{obj_id} before its create message"
                )
            result = manager.apply_write(obj_id, op, args, kwargs,
                                         local_origin=delivered.origin == node_id)
            # Applying the update costs CPU on every machine that holds a
            # replica: this is the overhead that limits ACP's speedup.
            node.charge_overhead(cpu.operation_dispatch_cost +
                                 op.work_units * cpu.work_unit_time)
            if result is not RETRY:
                self.history.record_write(node_id, obj_id, op_name, args,
                                          delivered.seqno,
                                          manager.get(obj_id).version)
            if delivered.origin == node_id:
                self._resolve(invocation_id, result)
            return
        raise RtsError(f"unknown broadcast RTS payload kind {kind!r}")

    def _resolve(self, invocation_id: int, result: Any) -> None:
        pending = self._pending.get(invocation_id)
        if pending is None or pending.resolved:
            return
        pending.resolved = True
        pending.result = result
        pending.proc.wake(result)

    # ------------------------------------------------------------------ #
    # Blocking helpers
    # ------------------------------------------------------------------ #

    def _await_replica(self, proc: "SimProcess", node_id: int, obj_id: int) -> None:
        """Block until this node holds a replica of ``obj_id``."""
        key = (node_id, obj_id)
        self._replica_waiters.setdefault(key, []).append(proc)
        proc.suspend()

    def _wake_replica_waiters(self, node_id: int, obj_id: int) -> None:
        for proc in self._replica_waiters.pop((node_id, obj_id), []):
            proc.wake()

    def _wait_for_change(self, proc: "SimProcess", node_id: int, obj_id: int) -> None:
        """Block until the local replica of ``obj_id`` is modified."""
        replica = self.managers[node_id].get(obj_id)
        replica.on_next_change(lambda: proc.wake())
        proc.suspend()
