"""Recording and checking sequential consistency of shared-object histories.

The paper's correctness claim is that shared objects behave as if all
operations were executed in some sequential order that every process agrees
on.  The :class:`HistoryRecorder` captures, per machine, the order in which
write operations were applied and, per process, which replica *version* each
read observed.  The :class:`ConsistencyChecker` then verifies the two
properties that together give sequential consistency in this design:

1. **Write-order agreement** — every machine applied the same sequence of
   writes to every object (same operations, same order).
2. **Per-process monotonicity** — the sequence of replica versions observed
   by any single process (through reads and its own writes) never goes
   backwards; i.e. a process never sees the effect of a write and later reads
   state from before that write.

A third, optional *replay* check re-executes the canonical write order
against a fresh instance and verifies that each recorded read result matches
the state at the version it observed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Type

from ..errors import ConsistencyViolationError
from .object_model import ObjectSpec, execute_operation


@dataclass(frozen=True)
class WriteRecord:
    """One write applied at one machine."""

    seqno: int
    op_name: str
    args: Tuple[Any, ...]
    version_after: int


@dataclass(frozen=True)
class ReadRecord:
    """One read performed by one process."""

    process: str
    node_id: int
    obj_id: int
    op_name: str
    args: Tuple[Any, ...]
    result: Any
    version_observed: int


class HistoryRecorder:
    """Collects operation histories (cheap no-op unless enabled)."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        #: node_id -> obj_id -> [WriteRecord, ...] in application order.
        self.writes: Dict[int, Dict[int, List[WriteRecord]]] = {}
        #: [ReadRecord, ...] in recording order.
        self.reads: List[ReadRecord] = []

    def record_write(self, node_id: int, obj_id: int, op_name: str,
                     args: Tuple[Any, ...], seqno: int, version_after: int) -> None:
        if not self.enabled:
            return
        per_node = self.writes.setdefault(node_id, {})
        per_node.setdefault(obj_id, []).append(
            WriteRecord(seqno, op_name, tuple(args), version_after)
        )

    def record_read(self, process: str, node_id: int, obj_id: int, op_name: str,
                    args: Tuple[Any, ...], result: Any, version_observed: int) -> None:
        if not self.enabled:
            return
        self.reads.append(
            ReadRecord(process, node_id, obj_id, op_name, tuple(args), result,
                       version_observed)
        )


class ConsistencyChecker:
    """Verifies recorded histories against the sequential-consistency criteria."""

    def __init__(self, history: HistoryRecorder) -> None:
        if not history.enabled:
            raise ConsistencyViolationError(
                "history recording was not enabled; nothing to check"
            )
        self.history = history

    # ------------------------------------------------------------------ #
    # Property 1: all machines applied the same writes in the same order
    # ------------------------------------------------------------------ #

    def check_write_order_agreement(self) -> None:
        per_object: Dict[int, List[Tuple[int, List[WriteRecord]]]] = {}
        for node_id, objects in self.history.writes.items():
            for obj_id, records in objects.items():
                per_object.setdefault(obj_id, []).append((node_id, records))
        for obj_id, node_histories in per_object.items():
            reference_node, reference = node_histories[0]
            ref_ops = [(r.seqno, r.op_name, r.args) for r in reference]
            for node_id, records in node_histories[1:]:
                ops = [(r.seqno, r.op_name, r.args) for r in records]
                if ops != ref_ops:
                    raise ConsistencyViolationError(
                        f"object {obj_id}: node {node_id} applied writes {ops[:5]}..., "
                        f"node {reference_node} applied {ref_ops[:5]}..."
                    )

    # ------------------------------------------------------------------ #
    # Property 2: per-process version monotonicity
    # ------------------------------------------------------------------ #

    def check_process_monotonicity(self) -> None:
        last_seen: Dict[Tuple[str, int], int] = {}
        for record in self.history.reads:
            key = (record.process, record.obj_id)
            previous = last_seen.get(key, -1)
            if record.version_observed < previous:
                raise ConsistencyViolationError(
                    f"process {record.process} observed object {record.obj_id} going "
                    f"backwards: version {record.version_observed} after {previous}"
                )
            last_seen[key] = record.version_observed

    # ------------------------------------------------------------------ #
    # Property 3 (optional): replay validation of read results
    # ------------------------------------------------------------------ #

    def check_read_values(self, obj_id: int, spec_class: Type[ObjectSpec],
                          init_args: Tuple[Any, ...] = ()) -> None:
        """Re-execute the canonical write order and validate read results.

        Only reads whose operations are deterministic functions of the object
        state can be validated this way; that covers every object type used
        in the test suite.
        """
        canonical = self._canonical_writes(obj_id)
        # Rebuild object states at every version.
        instance = spec_class.create(init_args)
        states = [instance.marshal_state()]
        for record in canonical:
            op = spec_class.operation_def(record.op_name)
            execute_operation(instance, op, record.args)
            states.append(instance.marshal_state())
        for read in self.history.reads:
            if read.obj_id != obj_id:
                continue
            if read.version_observed >= len(states):
                raise ConsistencyViolationError(
                    f"read observed version {read.version_observed} but only "
                    f"{len(states) - 1} writes were applied to object {obj_id}"
                )
            probe = spec_class.create(init_args)
            probe.unmarshal_state(states[read.version_observed])
            op = spec_class.operation_def(read.op_name)
            expected = execute_operation(probe, op, read.args)
            if expected != read.result:
                raise ConsistencyViolationError(
                    f"read {read.op_name}{read.args} by {read.process} returned "
                    f"{read.result!r} but version {read.version_observed} implies "
                    f"{expected!r}"
                )

    def _canonical_writes(self, obj_id: int) -> List[WriteRecord]:
        best: List[WriteRecord] = []
        for objects in self.history.writes.values():
            records = objects.get(obj_id, [])
            if len(records) > len(best):
                best = records
        return best

    # ------------------------------------------------------------------ #

    def check_all(
        self, replay: Optional[Dict[int, Tuple[Type[ObjectSpec], Tuple[Any, ...]]]] = None
    ) -> None:
        """Run every check; ``replay`` maps object ids to (spec, init args)."""
        self.check_write_order_agreement()
        self.check_process_monotonicity()
        for obj_id, (spec_class, init_args) in (replay or {}).items():
            self.check_read_values(obj_id, spec_class, init_args)
