"""Access statistics driving the dynamic replication policy.

The point-to-point runtime decides *per machine and per object* whether to
keep a local copy, based on the observed ratio of reads to writes.  The
statistics use an exponentially decayed window so the policy adapts when the
access pattern changes phase (e.g. a data-structure that is write-heavy while
being built and read-heavy afterwards).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from ..config import ReplicationParams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.process import SimProcess


class LatencyProbe:
    """Per-runtime hook timing shared-object invocations.

    Every runtime system owns one probe; it is inert (and nearly free) until a
    recorder is attached.  The workload runner attaches a
    :class:`repro.metrics.latency.LatencyRecorder` so that each invocation's
    virtual-time latency is recorded under its operation class (``"read"`` or
    ``"write"``).  The recorder is duck-typed (anything with
    ``record(kind, seconds)``) to keep the rts layer free of a dependency on
    the metrics package.
    """

    __slots__ = ("recorder",)

    def __init__(self, recorder: Optional[Any] = None) -> None:
        self.recorder = recorder

    @property
    def enabled(self) -> bool:
        return self.recorder is not None

    def start(self, proc: "SimProcess") -> float:
        """Timestamp (the process's local virtual time) before an invocation."""
        return proc.local_time

    def finish(self, kind: str, proc: "SimProcess", start: float) -> None:
        """Record the elapsed virtual time for one finished invocation."""
        if self.recorder is not None:
            self.recorder.record(kind, proc.local_time - start)


@dataclass
class ShardStats:
    """Per-shard traffic counters kept by the sharded broadcast runtime.

    ``batches`` counts ordered broadcasts that carried batched writes;
    ``batched_ops`` counts the operations inside them, so
    ``batched_ops / batches`` is the achieved batching factor for the shard.
    """

    creates: int = 0
    #: Write *invocations* routed to the shard (one per invocation, however
    #: many broadcasts guard retries cost — matching the per-object counts).
    writes: int = 0
    batches: int = 0
    batched_ops: int = 0
    max_batch: int = 0
    #: Policy switches ordered through this shard's broadcast group.
    migrations: int = 0

    def note_create(self) -> None:
        self.creates += 1

    def note_write(self) -> None:
        self.writes += 1

    def note_migration(self) -> None:
        self.migrations += 1

    def note_batch(self, ops: int) -> None:
        self.batches += 1
        self.batched_ops += ops
        if ops > self.max_batch:
            self.max_batch = ops

    @property
    def mean_batch(self) -> float:
        return self.batched_ops / self.batches if self.batches else 0.0

    def summary(self) -> Dict[str, Any]:
        digest = {
            "creates": self.creates,
            "writes": self.writes,
            "batches": self.batches,
            "batched_ops": self.batched_ops,
            "max_batch": self.max_batch,
            "mean_batch": round(self.mean_batch, 3),
        }
        if self.migrations:
            digest["migrations"] = self.migrations
        return digest


@dataclass
class AccessStats:
    """Read/write counters for one (object, machine) pair."""

    reads: float = 0.0
    writes: float = 0.0
    total_reads: int = 0
    total_writes: int = 0

    def note_read(self) -> None:
        self.reads += 1.0
        self.total_reads += 1

    def note_write(self) -> None:
        self.writes += 1.0
        self.total_writes += 1

    @property
    def accesses(self) -> float:
        return self.reads + self.writes

    @property
    def ratio(self) -> float:
        """Read/write ratio; all-read windows report infinity."""
        if self.writes == 0.0:
            return float("inf") if self.reads > 0 else 0.0
        return self.reads / self.writes

    def decay(self, factor: float) -> None:
        """Shrink the window so newer accesses dominate older ones."""
        self.reads *= factor
        self.writes *= factor


class ReplicationDecider:
    """Applies the hysteresis thresholds of the dynamic replication policy."""

    def __init__(self, params: ReplicationParams) -> None:
        self.params = params
        self._stats: Dict[Tuple[int, int], AccessStats] = {}
        self.replicate_decisions = 0
        self.drop_decisions = 0

    def stats_for(self, obj_id: int, node_id: int) -> AccessStats:
        key = (obj_id, node_id)
        stats = self._stats.get(key)
        if stats is None:
            stats = AccessStats()
            self._stats[key] = stats
        return stats

    def note_read(self, obj_id: int, node_id: int) -> None:
        self.stats_for(obj_id, node_id).note_read()

    def note_write(self, obj_id: int, node_id: int) -> None:
        self.stats_for(obj_id, node_id).note_write()

    def should_replicate(self, obj_id: int, node_id: int) -> bool:
        """True if a machine *without* a copy should fetch one."""
        stats = self.stats_for(obj_id, node_id)
        if stats.accesses < self.params.min_accesses:
            return False
        decision = stats.ratio > self.params.replicate_threshold
        if decision:
            self.replicate_decisions += 1
            stats.decay(self.params.decay)
        return decision

    def should_drop(self, obj_id: int, node_id: int) -> bool:
        """True if a machine *with* a copy should discard it."""
        stats = self.stats_for(obj_id, node_id)
        if stats.accesses < self.params.min_accesses:
            return False
        decision = stats.ratio < self.params.drop_threshold
        if decision:
            self.drop_decisions += 1
            stats.decay(self.params.decay)
        return decision
