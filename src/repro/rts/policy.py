"""Per-object management policies: the paper's two RTSes as one spectrum.

The broadcast runtime (full replication, writes by ordered broadcast) and the
point-to-point runtime (primary copy, invalidation or two-phase update) are
endpoints of a single object-management spectrum: how many copies exist and
how writes reach them.  This module names the points on that spectrum as
:class:`ManagementPolicy` values that :class:`~repro.rts.hybrid.HybridRts`
applies *per object*:

* :class:`BroadcastReplicated` — a replica on every machine, reads local,
  writes through the totally-ordered broadcast of the object's shard;
* :class:`PrimaryCopyInvalidate` — one primary copy, secondaries discarded
  on write (cheap writes, reads pay an RPC until a copy is re-fetched);
* :class:`PrimaryCopyUpdate` — one primary copy, secondaries refreshed by
  the two-phase update protocol (reads stay local, writes fan out);
* :class:`AdaptivePolicy` — a controller that starts an object on one of the
  fixed points and migrates it at run time when its observed read/write
  ratio (an :class:`~repro.rts.stats.AccessStats` window) says another point
  is cheaper.

Fixed policies are stateless flyweights; :func:`management_policy` coerces
the user-facing spellings (``"broadcast"``, ``"primary-invalidate"``,
``"primary-update"``, ``"adaptive"``, a params mapping, or a ready policy
object) into policy instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional, Union

from ..errors import ConfigurationError
from .stats import AccessStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .sharding import ShardRouter

#: Mechanism labels: which invocation machinery manages an object right now.
MECHANISM_BROADCAST = "broadcast"
MECHANISM_PRIMARY = "primary"

#: How a transaction prepares an object managed under a policy: through an
#: ordered ``txn-prepare`` record in its shard's broadcast order, or by
#: pinning its primary seat (see :mod:`repro.txn`).
PREPARE_ORDER = "order"
PREPARE_SEAT = "seat"


class ManagementPolicy:
    """One point on the object-management spectrum (or a controller on it).

    Fixed policies carry a ``name`` (the user-facing spelling), a
    ``mechanism`` (which runtime machinery serves the object), and — for
    primary-copy policies — the ``protocol`` that propagates writes to
    secondary copies.
    """

    #: User-facing spelling, also used in reports.
    name = "abstract"
    #: ``"broadcast"`` or ``"primary"`` (``None`` for controllers).
    mechanism: Optional[str] = None
    #: Coherence protocol of primary-copy policies (``None`` otherwise).
    protocol: Optional[str] = None
    #: How the transaction layer holds an object under this policy in a
    #: prepared state: :data:`PREPARE_ORDER` (a ``txn-prepare`` record in
    #: the shard order that defers conflicting writes) or
    #: :data:`PREPARE_SEAT` (a lock pinning the primary seat).  ``None``
    #: for controllers — the object's current fixed policy decides.
    prepare_mode: Optional[str] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class BroadcastReplicated(ManagementPolicy):
    """Full replication; writes are operations on the ordered broadcast."""

    name = "broadcast"
    mechanism = MECHANISM_BROADCAST
    prepare_mode = PREPARE_ORDER


class PrimaryCopyInvalidate(ManagementPolicy):
    """Primary copy; writes invalidate (discard) every secondary copy."""

    name = "primary-invalidate"
    mechanism = MECHANISM_PRIMARY
    protocol = "invalidation"
    prepare_mode = PREPARE_SEAT


class PrimaryCopyUpdate(ManagementPolicy):
    """Primary copy; writes refresh secondaries via the two-phase update."""

    name = "primary-update"
    mechanism = MECHANISM_PRIMARY
    protocol = "update"
    prepare_mode = PREPARE_SEAT


#: The fixed policies, as shared flyweights keyed by their spelling.
FIXED_POLICIES = {
    policy.name: policy
    for policy in (BroadcastReplicated(), PrimaryCopyInvalidate(),
                   PrimaryCopyUpdate())
}

#: Runtime-kind spelling -> the default policy that kind configures the
#: unified runtime with.  Shared by every layer that accepts a runtime kind
#: (OrcaProgram's ``rts=``, WorkloadRunner's ``runtime=``) so they cannot
#: drift.  ``"primary"`` resolves to the runtime's configured coherence
#: protocol flavour.
DEFAULT_POLICY_FOR_KIND = {
    "broadcast": "broadcast",
    "p2p": "primary",
    "adaptive": "adaptive",
}


@dataclass(frozen=True)
class AdaptiveParams:
    """Thresholds of the statistics-driven migration controller.

    Attributes
    ----------
    broadcast_ratio:
        Read/write ratio at or above which an object should be broadcast
        replicated (reads dominate: local reads everywhere pay off).
    primary_ratio:
        Ratio at or below which an object should move to a primary copy
        (writes dominate: interrupting every machine per write does not).
    min_accesses:
        Accesses (in the decayed window) an object must accumulate before
        the controller makes any decision.
    check_interval:
        Evaluate the controller every this-many accesses to the object.
    decay:
        Window shrink factor applied after a migration, so the decision that
        triggered it must re-earn itself before the object moves again.
    primary_policy:
        Which primary-copy flavour write-heavy objects migrate to.
    initial:
        The fixed policy an adaptive object starts under.
    rebalance_shards:
        Let the controller also recommend *shard* moves: a broadcast-managed
        object sitting on the hottest broadcast group is relocated to the
        coolest one when the groups' recent write loads diverge by more than
        ``shard_imbalance``.  Policy moves answer "how should this object be
        managed"; shard moves answer "which total order should serialise it"
        — the second lever of the same controller.
    shard_imbalance:
        Hot/cool window-write ratio that triggers a shard recommendation.
    min_shard_writes:
        Minimum cluster-wide writes in the router's load window before any
        shard recommendation is made.
    """

    broadcast_ratio: float = 3.0
    primary_ratio: float = 1.0
    min_accesses: int = 24
    check_interval: int = 8
    decay: float = 0.25
    primary_policy: str = "primary-invalidate"
    initial: str = "broadcast"
    rebalance_shards: bool = False
    shard_imbalance: float = 2.0
    min_shard_writes: int = 32

    def __post_init__(self) -> None:
        if self.shard_imbalance <= 1.0:
            raise ConfigurationError("shard_imbalance must exceed 1.0")
        if self.min_shard_writes < 1:
            raise ConfigurationError("min_shard_writes must be >= 1")
        if self.primary_ratio > self.broadcast_ratio:
            raise ConfigurationError(
                "primary_ratio must not exceed broadcast_ratio "
                f"(got {self.primary_ratio} > {self.broadcast_ratio})")
        if self.min_accesses < 1 or self.check_interval < 1:
            raise ConfigurationError(
                "min_accesses and check_interval must be >= 1")
        if not 0.0 <= self.decay <= 1.0:
            raise ConfigurationError("decay must be in [0, 1]")
        for field_name in ("primary_policy", "initial"):
            value = getattr(self, field_name)
            if value not in FIXED_POLICIES:
                raise ConfigurationError(
                    f"{field_name} must be one of {sorted(FIXED_POLICIES)}, "
                    f"got {value!r}")
        if FIXED_POLICIES[self.primary_policy].mechanism != MECHANISM_PRIMARY:
            raise ConfigurationError(
                f"primary_policy must be a primary-copy policy, "
                f"got {self.primary_policy!r}")


class AdaptivePolicy(ManagementPolicy):
    """Statistics-driven controller migrating an object along the spectrum."""

    name = "adaptive"
    mechanism = None

    def __init__(self, params: Optional[AdaptiveParams] = None) -> None:
        self.params = params or AdaptiveParams()

    @property
    def initial(self) -> str:
        """Name of the fixed policy an object starts under."""
        return self.params.initial

    def due(self, stats: AccessStats) -> bool:
        """Is a controller evaluation due at this access count?"""
        total = stats.total_reads + stats.total_writes
        return total % self.params.check_interval == 0

    def desired(self, stats: AccessStats, current: str) -> Optional[str]:
        """The fixed policy this object should run under, or ``None``.

        ``current`` is the object's present fixed policy; the hysteresis gap
        between the two thresholds keeps objects whose mix sits in between
        wherever they already are.
        """
        params = self.params
        if stats.accesses < params.min_accesses:
            return None
        ratio = stats.ratio
        if ratio >= params.broadcast_ratio and current != "broadcast":
            return "broadcast"
        if (ratio <= params.primary_ratio
                and current != params.primary_policy):
            return params.primary_policy
        return None

    def desired_shard(self, router: Optional["ShardRouter"],
                      obj_id: int) -> Optional[int]:
        """The broadcast group this object should move to, or ``None``.

        Only meaningful for broadcast-managed objects (primary-copy writes
        never touch a sequencer); the runtime guards that.  Delegates the
        load reading to a :class:`~repro.rts.sharding.RebalancePlanner` over
        the router's write window, so the controller's shard decisions and
        the cluster-level rebalancer agree on what "hot" means.
        """
        if not self.params.rebalance_shards or router is None:
            return None
        from .sharding import RebalancePlanner  # deferred: avoid cycle

        planner = RebalancePlanner(router,
                                   imbalance=self.params.shard_imbalance,
                                   min_writes=self.params.min_shard_writes,
                                   max_moves=1)
        return planner.suggest(obj_id)


PolicyLike = Union[None, str, Mapping, AdaptiveParams, ManagementPolicy]


def management_policy(value: PolicyLike,
                      default: Optional[ManagementPolicy] = None) -> ManagementPolicy:
    """Coerce ``value`` into a :class:`ManagementPolicy`.

    Accepts ``None`` (falls back to ``default``), a policy name, an
    :class:`AdaptiveParams` (or a mapping of its fields), or a ready policy
    instance.
    """
    if value is None:
        if default is None:
            raise ConfigurationError("no management policy given")
        return default
    if isinstance(value, ManagementPolicy):
        return value
    if isinstance(value, AdaptiveParams):
        return AdaptivePolicy(value)
    if isinstance(value, str):
        if value in FIXED_POLICIES:
            return FIXED_POLICIES[value]
        if value == "adaptive":
            return AdaptivePolicy()
        raise ConfigurationError(
            f"unknown management policy {value!r} "
            f"(use one of {sorted(FIXED_POLICIES) + ['adaptive']})")
    if isinstance(value, Mapping):
        return AdaptivePolicy(AdaptiveParams(**dict(value)))
    raise ConfigurationError(
        f"cannot interpret {value!r} as a management policy "
        "(use a name, AdaptiveParams, a dict of its fields, or a policy)")
