"""The per-machine object manager.

Every machine runs an object manager holding the replicas stored on that
machine.  Reads bypass the manager (they execute directly on the local
replica); writes and incoming protocol messages go through the manager, which
applies them one at a time, in order, while the replica is briefly locked —
mirroring the structure the paper describes for the broadcast RTS.

The manager also provides the *change notification* hook used to implement
guarded (blocking) operations: processes waiting for an object's state to
change register a callback that fires after the next applied write.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from ..errors import RtsError, UnknownObjectError
from .object_model import RETRY, ObjectSpec, OperationDef, execute_operation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..amoeba.node import Node


@dataclass
class Replica:
    """One machine's copy of a shared object."""

    obj_id: int
    name: str
    instance: ObjectSpec
    is_primary: bool = False
    valid: bool = True
    locked: bool = False
    #: Number of write operations applied to this replica.
    version: int = 0
    #: Callbacks to invoke after the next state change (guard retries).
    _change_waiters: List[Callable[[], None]] = field(default_factory=list)

    def on_next_change(self, callback: Callable[[], None]) -> None:
        self._change_waiters.append(callback)

    def notify_changed(self) -> None:
        waiters, self._change_waiters = self._change_waiters, []
        for callback in waiters:
            callback()


@dataclass
class ManagerStats:
    """Operation counts seen by one object manager."""

    local_reads: int = 0
    local_writes_applied: int = 0
    remote_updates_applied: int = 0
    invalidations: int = 0
    guard_retries: int = 0


class ObjectManager:
    """Holds and updates the replicas resident on one machine."""

    def __init__(self, node: "Node") -> None:
        self.node = node
        self.node_id = node.node_id
        self.replicas: Dict[int, Replica] = {}
        self.stats = ManagerStats()

    # ------------------------------------------------------------------ #
    # Replica lifecycle
    # ------------------------------------------------------------------ #

    def install(self, obj_id: int, name: str, instance: ObjectSpec,
                is_primary: bool = False, version: int = 0) -> Replica:
        """Install a replica of an object on this machine."""
        if obj_id in self.replicas and self.replicas[obj_id].valid:
            raise RtsError(
                f"object {name!r} (id {obj_id}) already present on node {self.node_id}"
            )
        replica = Replica(obj_id=obj_id, name=name, instance=instance,
                          is_primary=is_primary, version=version)
        self.replicas[obj_id] = replica
        return replica

    def discard(self, obj_id: int) -> None:
        """Drop this machine's replica (dynamic replication / invalidation)."""
        self.replicas.pop(obj_id, None)

    def invalidate(self, obj_id: int) -> None:
        """Mark the local copy invalid without forgetting the waiters."""
        replica = self.replicas.get(obj_id)
        if replica is not None:
            replica.valid = False
            self.stats.invalidations += 1

    def has_valid_copy(self, obj_id: int) -> bool:
        replica = self.replicas.get(obj_id)
        return replica is not None and replica.valid

    def get(self, obj_id: int) -> Replica:
        replica = self.replicas.get(obj_id)
        if replica is None:
            raise UnknownObjectError(
                f"node {self.node_id} holds no replica of object id {obj_id}"
            )
        return replica

    # ------------------------------------------------------------------ #
    # Operation execution
    # ------------------------------------------------------------------ #

    def execute_read(self, obj_id: int, op: OperationDef, args: Tuple[Any, ...],
                     kwargs: Optional[Dict[str, Any]] = None) -> Any:
        """Execute a read operation directly against the local replica."""
        replica = self.get(obj_id)
        if not replica.valid:
            raise RtsError(
                f"read of invalidated replica of {replica.name!r} on node {self.node_id}"
            )
        self.stats.local_reads += 1
        return execute_operation(replica.instance, op, args, kwargs)

    def apply_write(self, obj_id: int, op: OperationDef, args: Tuple[Any, ...],
                    kwargs: Optional[Dict[str, Any]] = None,
                    local_origin: bool = False) -> Any:
        """Apply a write operation to the local replica (in protocol order).

        The replica is locked for the duration of the operation, the version
        counter is bumped, and change waiters are notified.  Returns the
        operation result or :data:`RETRY` when the guard rejected it.
        """
        replica = self.get(obj_id)
        replica.locked = True
        try:
            result = execute_operation(replica.instance, op, args, kwargs)
        finally:
            replica.locked = False
        if result is RETRY:
            self.stats.guard_retries += 1
            return RETRY
        replica.version += 1
        if local_origin:
            self.stats.local_writes_applied += 1
        else:
            self.stats.remote_updates_applied += 1
        replica.notify_changed()
        return result

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def object_ids(self) -> List[int]:
        return sorted(self.replicas)

    def __len__(self) -> int:
        return len(self.replicas)
