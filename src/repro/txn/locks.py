"""Lock state of the transaction layer.

Two very different tables live here:

``MemberLockTable``
    Per-*(member node, object)* lock entries for broadcast-managed
    participants ("order" prepare mode).  Every lock transition is driven
    by a record delivered through the object's shard order, so at any
    order position every member's table agrees — there is no distributed
    lock protocol, just the same deterministic decision replayed at each
    member.  An entry defers (never rejects) conflicting work into a FIFO
    queue of *data* items — plain tuples, so a rejoin seed can ship a
    donor's queue to a recovering member byte-for-byte.

``SeatLockTable``
    Global, coordinator-side locks on primary-copy participants ("seat"
    prepare mode).  The primary's seat already serialises ordinary writes;
    a transaction additionally pins the seat so nothing interleaves
    between its guard evaluation and its commit apply.  Coordinators
    acquire seats in ascending object-id order, interleaved with the
    ordered prepares, so the combined acquisition order is a single global
    resource order: no deadlock is possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from collections import deque

#: Queue item replaying an ordinary (non-transactional) delivered write:
#: ``("write", op_name, args, kwargs, invocation_id, epoch, origin, seqno)``.
ITEM_WRITE = "write"
#: Queue item replaying a full txn record: ``("record", payload, origin,
#: seqno)``.
ITEM_RECORD = "record"

#: Entry holds a voted-ready prepare's stashed sub-operations.
MODE_PREPARED = "prepared"
#: Entry is an epoch barrier: a multi-object record was deferred because
#: one of its objects ran ahead of this member's epoch, and all its
#: objects must queue subsequent work until the record replays.
MODE_BARRIER = "barrier"


@dataclass
class LockEntry:
    """Lock on one (member node, object) pair."""

    owner: int  # txn id
    mode: str  # MODE_PREPARED | MODE_BARRIER
    #: Sub-operations stashed by a ready prepare, applied at commit:
    #: tuples of ``(index, op_name, args, kwargs)``.
    stash: Tuple[Tuple[Any, ...], ...] = ()
    #: Deferred work, replayed FIFO when the entry releases.
    queue: Deque[Tuple[Any, ...]] = field(default_factory=deque)


class MemberLockTable:
    """Deterministic per-member lock entries for broadcast participants."""

    def __init__(self) -> None:
        self._entries: Dict[Tuple[int, int], LockEntry] = {}
        #: (node, txn, obj) triples whose outcome already landed at that
        #: member — lets an outcome sequenced *before* a slow prepare in
        #: the same shard order turn that prepare into a no-op
        #: ("tombstone").  Per *object*, not per transaction: a member may
        #: process one shard's outcome before another shard's prepare of
        #: the same transaction, and that interleaving is member-local —
        #: only the within-shard order may decide a record's fate.
        self._outcome_done: Dict[Tuple[int, int, int], str] = {}

    # -- entries -------------------------------------------------------

    def get(self, node_id: int, obj_id: int) -> Optional[LockEntry]:
        return self._entries.get((node_id, obj_id))

    def lock(
        self,
        node_id: int,
        obj_id: int,
        owner: int,
        mode: str,
        stash: Tuple[Tuple[Any, ...], ...] = (),
    ) -> LockEntry:
        entry = LockEntry(owner=owner, mode=mode, stash=stash)
        self._entries[(node_id, obj_id)] = entry
        return entry

    def unlock(self, node_id: int, obj_id: int) -> Optional[LockEntry]:
        return self._entries.pop((node_id, obj_id), None)

    def enqueue(self, node_id: int, obj_id: int, item: Tuple[Any, ...]) -> None:
        self._entries[(node_id, obj_id)].queue.append(item)

    # -- per-member txn progress --------------------------------------

    def mark_outcome(self, node_id: int, txn_id: int, objs,
                     outcome: str) -> None:
        for obj_id in objs:
            self._outcome_done.setdefault((node_id, txn_id, obj_id), outcome)

    def outcome_at(self, node_id: int, txn_id: int,
                   obj_id: int) -> Optional[str]:
        return self._outcome_done.get((node_id, txn_id, obj_id))

    # -- lifecycle -----------------------------------------------------

    def forget_txn(self, txn_id: int) -> None:
        """Drop completed-transaction bookkeeping (keeps tables bounded).

        Lock entries are *not* dropped here — they release strictly via
        the ordered outcome records so every member replays its queues at
        the same order position.
        """
        self._outcome_done = {
            key: val for key, val in self._outcome_done.items() if key[1] != txn_id
        }

    def wipe_node(self, node_id: int) -> None:
        """Forget everything a member knew (crash/recover wipe).

        A recovering member is re-seeded from a donor before it resumes
        delivery, exactly like replica state.
        """
        self._entries = {
            key: val for key, val in self._entries.items() if key[0] != node_id
        }
        self._outcome_done = {
            key: val for key, val in self._outcome_done.items() if key[0] != node_id
        }

    # -- rejoin seeds --------------------------------------------------

    def seed_state(self, donor: int, obj_ids) -> Dict[str, Any]:
        """Snapshot the donor member's txn state for a shard's objects."""
        entries = []
        for obj_id in obj_ids:
            entry = self._entries.get((donor, obj_id))
            if entry is None:
                continue
            entries.append(
                (
                    obj_id,
                    entry.owner,
                    entry.mode,
                    tuple(entry.stash),
                    tuple(entry.queue),
                )
            )
        outcomes = [
            (txn_id, obj_id, outcome)
            for (nid, txn_id, obj_id), outcome in sorted(
                self._outcome_done.items())
            if nid == donor and obj_id in obj_ids
        ]
        return {"entries": entries, "outcomes": outcomes}

    def install_seed(self, node_id: int, state: Dict[str, Any]) -> None:
        """Install a donor snapshot as the rejoining member's state."""
        for obj_id, owner, mode, stash, queue in state.get("entries", ()):
            entry = self.lock(node_id, obj_id, owner, mode, tuple(stash))
            entry.queue.extend(tuple(item) for item in queue)
        for txn_id, obj_id, outcome in state.get("outcomes", ()):
            self.mark_outcome(node_id, txn_id, (obj_id,), outcome)


class SeatLockTable:
    """Coordinator-side locks pinning primary seats during a transaction."""

    def __init__(self) -> None:
        self._owners: Dict[int, int] = {}  # obj_id -> txn_id
        self._waiters: Dict[int, Deque[Any]] = {}  # obj_id -> procs

    def owner(self, obj_id: int) -> Optional[int]:
        return self._owners.get(obj_id)

    def try_acquire(self, obj_id: int, txn_id: int) -> bool:
        holder = self._owners.get(obj_id)
        if holder is None or holder == txn_id:
            self._owners[obj_id] = txn_id
            return True
        return False

    def wait(self, obj_id: int, proc) -> None:
        self._waiters.setdefault(obj_id, deque()).append(proc)

    def release(self, obj_id: int, txn_id: int) -> List[Any]:
        """Release and return the procs to wake (FIFO, wake-all-recheck)."""
        if self._owners.get(obj_id) != txn_id:
            return []
        del self._owners[obj_id]
        woken = list(self._waiters.pop(obj_id, ()))
        return woken
