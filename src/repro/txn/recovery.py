"""Deterministic transaction recovery after a coordinator-node crash.

Prepared participants never time out on their own: they hold their locks
until an outcome record arrives in their shard's order.  When the node
running a coordinator dies, the lowest live node takes over each of its
unfinished transactions (one daemon thread per transaction — two orphans
may be queued behind each other's locks, so recovery must not serialise
them) and drives the descriptor to completion under **presumed abort**:

* an abort ``txn-decide`` is broadcast into the decision shard; the
  *first* decide record in that order wins, so a commit decide the dead
  coordinator managed to sequence before crashing beats the recovery
  abort — and vice versa — identically at every member;
* the winning outcome is then propagated to every other shard that may
  carry a prepare (idempotent per member), seat-managed sub-operations
  are (re-)applied under their stable write ids when the outcome is
  commit, and the seats release.

A second crash that kills the recovery node simply reassigns the pass —
every step above is a no-op when it already happened.
"""

from __future__ import annotations

from ..errors import RtsError
from ..rts.object_model import RETRY
from .coordinator import CONTROL_RECORD_SIZE
from .records import (
    KIND_DECIDE,
    KIND_OUTCOME,
    OUTCOME_ABORT,
    OUTCOME_COMMIT,
    txn_wid,
)


def schedule_recoveries(layer, crashed: int) -> None:
    """Start a recovery thread for every orphaned transaction.

    Runs inside the node-crash listener, after the runtime's own crash
    handling: a transaction is orphaned when its coordinator node is dead
    and no live recovery pass owns it yet.
    """
    rts = layer.rts
    live = sorted(node.node_id for node in rts.cluster.nodes if node.alive)
    if not live:
        return
    runner = live[0]
    for txn_id in sorted(layer.descs):
        desc = layer.descs[txn_id]
        if desc.done:
            continue
        if rts.cluster.node(desc.coordinator_node).alive:
            continue
        if (desc.recovery_node is not None
                and rts.cluster.node(desc.recovery_node).alive):
            continue  # a live pass already owns it
        desc.recovery_node = runner
        rts.cluster.node(runner).kernel.spawn_thread(
            _recovery_body, layer, desc,
            name=f"txn-recover:{txn_id}", daemon=True)


def _recovery_body(layer, desc) -> None:
    rts = layer.rts
    proc = rts.sim.current_process
    node = rts.cluster.node(desc.recovery_node)
    if desc.done:
        return
    from .coordinator import TxnCoordinator

    coordinator: TxnCoordinator = layer.coordinator
    if desc.outcome is None:
        if desc.decision_shard is not None:
            # Arbitrate through the decision order: our abort against any
            # commit decide the dead coordinator still has in flight.
            objs = desc.prepared_shards.get(desc.decision_shard, ())
            coordinator._broadcast_record(
                proc, node, rts.router.group_for(desc.decision_shard),
                (KIND_DECIDE, desc.txn_id, OUTCOME_ABORT, objs),
                size=CONTROL_RECORD_SIZE)
            desc.outcome_sent.add(desc.decision_shard)
            if desc.outcome is None:  # no prepare reached the order either
                desc.outcome = OUTCOME_ABORT
        else:
            # No broadcast participant ever prepared: the descriptor is
            # the commit point and it was never reached.  Presume abort.
            desc.outcome = OUTCOME_ABORT
    for shard in sorted(desc.prepared_shards):
        if shard in desc.outcome_sent:
            continue
        objs = desc.prepared_shards[shard]
        coordinator._broadcast_record(
            proc, node, rts.router.group_for(shard),
            (KIND_OUTCOME, desc.txn_id, desc.outcome, objs),
            size=CONTROL_RECORD_SIZE)
        desc.outcome_sent.add(shard)
    if desc.outcome == OUTCOME_COMMIT:
        for index, obj_id, op_name, args, kwargs in desc.primary_ops:
            handle = rts.handle(obj_id)
            op = handle.spec_class.operation_def(op_name)
            result = rts._primary_write(
                proc, node.node_id, handle, op, args, kwargs,
                wid=txn_wid(desc.txn_id, index, obj_id))
            if result is RETRY:  # pragma: no cover - protocol invariant
                raise RtsError(
                    f"transaction {desc.txn_id}: recovery re-apply of "
                    f"{op_name!r} on object {obj_id} was rejected")
            desc.results.setdefault(index, result)
    for obj_id in list(desc.seats_held):
        for waiter in layer.seats.release(obj_id, desc.txn_id):
            waiter.wake()
    desc.seats_held = []
    rts.stats.txn_recoveries += 1
    layer.complete(desc, committed=desc.outcome == OUTCOME_COMMIT,
                   same_shard=False)
