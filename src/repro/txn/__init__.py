"""Cross-object atomic transactions over the hybrid runtime.

``rts.transact([(obj, op, args), ...])`` executes a group of operations on
multiple shared objects with all-or-nothing semantics and serializability:

* participants all broadcast-managed on **one shard** commit lock-free as
  a single ordered record carrying every sub-operation (the same-shard
  fast path — total order *is* atomicity);
* everything else runs an **ordered 2PC**: per-object ``txn-prepare``
  records sequenced through each broadcast participant's shard order plus
  seat locks on primary-copy participants, acquired in ascending
  object-id order (deadlock-free), with the commit point being the first
  ``txn-decide`` record in the decision shard's order.

Prepared objects *defer* conflicting writes into per-member FIFO queues
instead of rejecting them, so per-client FIFO holds; coordinator crashes
are resolved by a deterministic presumed-abort recovery pass that loses
to (or confirms) any decide record already in the order.  The layer is
created lazily on the first ``transact()`` call — runs that never
transact execute byte-identically to a runtime without it.

Isolation caveat: *writes* are serializable, but plain reads taken
between a cross-shard commit's per-shard outcome applies can observe
read skew — see :meth:`repro.rts.hybrid.HybridRts.transact` for the
full statement and the workaround (read through a transaction).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List

from .coordinator import TxnCoordinator
from .locks import MemberLockTable, SeatLockTable
from .participant import TxnParticipant
from .records import TXN_KINDS, TxnDescriptor
from . import recovery as _recovery

__all__ = [
    "TXN_KINDS",
    "TransactionLayer",
    "TxnCoordinator",
    "TxnDescriptor",
    "TxnParticipant",
]


class TransactionLayer:
    """Facade wiring coordinator, participant, locks and recovery to a
    :class:`~repro.rts.hybrid.HybridRts`."""

    def __init__(self, rts) -> None:
        self.rts = rts
        self.locks = MemberLockTable()
        self.seats = SeatLockTable()
        self.descs: Dict[int, TxnDescriptor] = {}
        self.txn_ids = itertools.count(1)
        #: obj_id -> number of live transactions naming it (pins() input).
        self._pinned: Dict[int, int] = {}
        self.participant = TxnParticipant(self)
        self.coordinator = TxnCoordinator(self)
        # A pure-broadcast cluster never installs the primary-copy crash
        # services, so the layer listens for crashes itself.  Where the
        # runtime's own crash handler also runs (and calls on_node_crash
        # first), the second call is a no-op: every orphan already has a
        # live recovery owner by then.
        for node in rts.cluster.nodes:
            node.on_crash(lambda n=node.node_id: self.on_node_crash(n))

    # -- client surface -------------------------------------------------

    def transact(self, proc, ops, on_guard: str = "retry") -> List[Any]:
        return self.coordinator.transact(proc, ops, on_guard=on_guard)

    # -- hooks called from HybridRts ------------------------------------

    def on_deliver(self, node_id: int, payload, origin: int,
                   seqno: int) -> None:
        self.participant.process(node_id, payload, origin, seqno)

    def defer_write(self, node_id: int, obj_id: int, entry) -> bool:
        return self.participant.defer_write(node_id, obj_id, entry)

    def seat_gate(self, proc, obj_id: int, wid) -> None:
        """Hold an ordinary primary write while a transaction pins the
        seat (the transaction's own applies pass through)."""
        while True:
            owner = self.seats.owner(obj_id)
            if owner is None:
                return
            if (wid is not None and isinstance(wid[0], str)
                    and wid[0].startswith(f"txn:{owner}#")):
                return
            self.seats.wait(obj_id, proc)
            proc.suspend()

    def pins(self, obj_id: int) -> bool:
        """Is the object a participant of any live transaction?  Policy
        migrations, shard moves and seat relocations refuse while true
        (their callers already retry)."""
        return self._pinned.get(obj_id, 0) > 0

    def on_switch_delivered(self, node_id: int, obj_id: int) -> None:
        self.participant.on_switch_delivered(node_id, obj_id)

    def on_node_crash(self, crashed: int) -> None:
        _recovery.schedule_recoveries(self, crashed)

    def on_node_recover(self, recovered: int) -> None:
        self.locks.wipe_node(recovered)

    def seed_state(self, donor: int, obj_ids) -> Dict[str, Any]:
        return self.locks.seed_state(donor, set(obj_ids))

    def install_seed(self, node_id: int, state: Dict[str, Any]) -> None:
        self.locks.install_seed(node_id, state)

    # -- descriptor lifecycle -------------------------------------------

    def register(self, desc: TxnDescriptor) -> None:
        self.descs[desc.txn_id] = desc
        for obj_id in desc.participants:
            self._pinned[obj_id] = self._pinned.get(obj_id, 0) + 1

    def complete(self, desc: TxnDescriptor, committed: bool,
                 same_shard: bool = False) -> None:
        if desc.done:
            return
        desc.done = True
        rts = self.rts
        for obj_id in desc.participants:
            remaining = self._pinned.get(obj_id, 0) - 1
            if remaining > 0:
                self._pinned[obj_id] = remaining
            else:
                self._pinned.pop(obj_id, None)
        if desc.recovery_node is None:
            # Normal completion: no record of this transaction can still
            # be in flight (every prepare precedes its outcome in its
            # shard's order), so the tombstones are dead weight.  After a
            # *recovery* completion the dead coordinator's prepare may
            # still be sequenced behind the recovery abort at some member
            # — those tombstones must outlive the descriptor.
            self.locks.forget_txn(desc.txn_id)
        # Prune the transaction's entries from the primary dedup tables
        # (each sub-operation used a unique origin, so unlike client
        # writes they would otherwise accumulate forever).
        for index, obj_id, _op, _args, _kwargs in desc.primary_ops:
            origin = f"txn:{desc.txn_id}#{index}"
            primary = rts.directory.primary_of(obj_id)
            if primary is not None:
                rts._applied_table(primary, obj_id).pop(origin, None)
            committed_record = rts._last_committed.get(obj_id)
            if committed_record is not None:
                committed_record[2].pop(origin, None)
        if committed:
            rts.stats.txn_commits += 1
            if same_shard:
                rts.stats.txn_same_shard_commits += 1
            else:
                rts.stats.txn_cross_shard_commits += 1
