"""Coordinator side of a transaction: grouping, prepares, decide, apply.

One ``transact()`` call runs entirely on the invoking client's process.
Participants are acquired in **ascending object-id order** — ordered
prepares through each broadcast participant's shard and seat locks on each
primary-copy participant, interleaved in the same global order — so every
concurrent coordinator walks the one resource order and deadlock is
structurally impossible.

The commit point is the first ``txn-decide`` record in the decision
shard's total order (the shard of the lowest broadcast participant); with
no broadcast participant at all, it is the durable descriptor's outcome
assignment.  Everything after the commit point is replay-safe: outcome
records are idempotent per member and primary applies carry stable write
ids, which is exactly what lets the crash-recovery pass finish the job
when the coordinator's node dies mid-protocol.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..amoeba.message import estimate_size
from ..errors import ConfigurationError, RtsError, TransactionAborted
from ..rts.object_model import RETRY
from ..rts.policy import FIXED_POLICIES, MECHANISM_BROADCAST, PREPARE_ORDER
from .records import (
    KIND_ATOMIC,
    KIND_DECIDE,
    KIND_OUTCOME,
    KIND_PREPARE,
    OUTCOME_ABORT,
    OUTCOME_COMMIT,
    TxnDescriptor,
    VOTE_READY,
    VOTE_RETRY,
    txn_wid,
)

#: Attempt results (internal to this module).
_COMMITTED = "committed"
_MIGRATED = "migrated"
_GUARD = "guard"
_RACED = "raced"


class TxnCoordinator:
    """Runs the commit protocol for one ``HybridRts``."""

    def __init__(self, layer) -> None:
        self.layer = layer

    # -- public entry ---------------------------------------------------

    def transact(self, proc, ops, on_guard: str = "retry") -> List[Any]:
        rts = self.layer.rts
        if on_guard not in ("retry", "abort"):
            raise ConfigurationError(
                f"on_guard must be 'retry' or 'abort', not {on_guard!r}")
        node = rts._node_of(proc)
        normalized = self._normalize(ops)
        while True:
            status, detail = self._attempt(proc, node, normalized)
            if status == _COMMITTED:
                return detail
            if status in (_MIGRATED, _RACED):
                # Routing moved under the attempt (or a recovery pass for a
                # presumed-dead coordinator raced it): re-resolve and retry.
                continue
            # A guard rejected the group everywhere (all-or-nothing: no
            # participant applied anything).
            if on_guard == "abort":
                rts.stats.txn_aborts += 1
                raise TransactionAborted(
                    f"transaction aborted: guard rejected operation on "
                    f"object {detail}")
            rts.stats.txn_retries += 1
            if (detail is not None
                    and rts._mechanism_of(detail) == MECHANISM_BROADCAST
                    and rts.managers[node.node_id].has_valid_copy(detail)):
                rts._wait_for_change(proc, node.node_id, detail)
            else:
                proc.hold(rts.cost_model.cpu.protocol_cost * 4)

    # -- one attempt ----------------------------------------------------

    def _normalize(self, ops) -> List[Tuple[int, str, Tuple[Any, ...],
                                            Dict[str, Any]]]:
        rts = self.layer.rts
        if not ops:
            raise ConfigurationError("transact() needs at least one operation")
        normalized = []
        for entry in ops:
            if len(entry) == 2:
                handle, op_name = entry
                args, kwargs = (), {}
            elif len(entry) == 3:
                handle, op_name, args = entry
                kwargs = {}
            elif len(entry) == 4:
                handle, op_name, args, kwargs = entry
            else:
                raise ConfigurationError(
                    "transact() entries are (obj, op[, args[, kwargs]]) "
                    f"tuples, got {entry!r}")
            target = getattr(handle, "handle", handle)  # unwrap BoundObject
            obj_id = getattr(target, "obj_id", target)
            # Validate eagerly: an unknown operation must fail the call,
            # not poison a broadcast record.
            rts.handle(obj_id).spec_class.operation_def(op_name)
            normalized.append((obj_id, op_name, tuple(args), dict(kwargs or {})))
        return normalized

    def _attempt(self, proc, node, ops) -> Tuple[str, Any]:
        rts = self.layer.rts
        txn_id = next(self.layer.txn_ids)
        by_obj: Dict[int, List[Tuple[Any, ...]]] = {}
        for index, (obj_id, op_name, args, kwargs) in enumerate(ops):
            by_obj.setdefault(obj_id, []).append((index, op_name, args, kwargs))
        desc = TxnDescriptor(txn_id=txn_id, coordinator_node=node.node_id,
                             op_count=len(ops),
                             participants=tuple(sorted(by_obj)))
        self.layer.register(desc)

        # Snapshot each participant's prepare mode (its policy's answer to
        # "how is this object held prepared"); objects migrating under a
        # snapshot are caught by the epoch stamps / seat re-checks below
        # and bounce the attempt (pins() stops *new* reconfigurations the
        # moment the descriptor registered).
        order_objs = []
        seat_objs = []
        for obj_id in desc.participants:
            policy = FIXED_POLICIES[rts._policy_by_obj[obj_id]]
            if policy.prepare_mode == PREPARE_ORDER:
                order_objs.append(obj_id)
            else:
                seat_objs.append(obj_id)
                for index, op_name, args, kwargs in by_obj[obj_id]:
                    desc.primary_ops.append((index, obj_id, op_name, args,
                                             kwargs))

        if not seat_objs:
            shards = {rts.shard_of(rts.handle(obj_id)) for obj_id in order_objs}
            if len(shards) == 1:
                return self._attempt_atomic(proc, node, desc, by_obj,
                                            order_objs, shards.pop())
        return self._attempt_two_phase(proc, node, desc, by_obj, order_objs,
                                       seat_objs)

    # -- same-shard fast path -------------------------------------------

    def _attempt_atomic(self, proc, node, desc: TxnDescriptor, by_obj,
                        order_objs, shard: int) -> Tuple[str, Any]:
        """All participants broadcast-managed on one shard: a single
        ordered record carries every sub-operation, lock-free."""
        rts = self.layer.rts
        entries = []
        nbytes = 16
        stale = False
        for obj_id in order_objs:
            epoch = rts._epoch_by_obj.get(obj_id, 0)
            if rts._mechanism_of(obj_id) != MECHANISM_BROADCAST:
                stale = True
                break
            if rts.shard_of(rts.handle(obj_id)) != shard:
                stale = True
                break
            for index, op_name, args, kwargs in by_obj[obj_id]:
                entries.append((index, obj_id, op_name, args, kwargs, epoch))
                nbytes += estimate_size(args) + estimate_size(kwargs)
        if stale:
            self.layer.complete(desc, committed=False)
            return (_MIGRATED, None)
        entries.sort()
        group = rts.router.group_for(shard)
        first_obj = order_objs[0]
        vote = self._broadcast_record(
            proc, node, group,
            (KIND_ATOMIC, desc.txn_id, tuple(entries)),
            size=max(16, nbytes), obj_id=first_obj,
            epoch=rts._epoch_by_obj.get(first_obj, 0))
        if not isinstance(vote, tuple):
            # MIGRATED: a switch was sequenced ahead of the record.
            self.layer.complete(desc, committed=False)
            return (_MIGRATED, None)
        if vote[0] == VOTE_RETRY:
            self.layer.complete(desc, committed=False)
            return (_GUARD, vote[1])
        desc.outcome = OUTCOME_COMMIT
        results = vote[1]
        self.layer.complete(desc, committed=True, same_shard=True)
        return (_COMMITTED, [results[i] for i in range(desc.op_count)])

    # -- cross-shard / mixed-mechanism 2PC ------------------------------

    def _attempt_two_phase(self, proc, node, desc: TxnDescriptor, by_obj,
                           order_objs, seat_objs) -> Tuple[str, Any]:
        rts = self.layer.rts
        for obj_id in desc.participants:
            if obj_id in seat_objs:
                self._acquire_seat(proc, desc, obj_id)
                vote = self._eval_primary(proc, desc, obj_id, by_obj[obj_id])
            else:
                vote = self._broadcast_prepare(proc, node, desc, obj_id,
                                               by_obj[obj_id])
            if not isinstance(vote, tuple):
                self._abort_attempt(proc, node, desc)
                return (_MIGRATED, None)
            if vote[0] == VOTE_RETRY:
                self._abort_attempt(proc, node, desc)
                return (_GUARD, vote[1])

        # Every participant voted ready: commit.  The decide record in the
        # decision shard's order is the commit point; with no broadcast
        # participant the descriptor itself is (it models the coordinator's
        # durable log).
        if desc.decision_shard is not None:
            objs = desc.prepared_shards[desc.decision_shard]
            self._broadcast_record(
                proc, node, rts.router.group_for(desc.decision_shard),
                (KIND_DECIDE, desc.txn_id, OUTCOME_COMMIT, objs),
                size=CONTROL_RECORD_SIZE)
            desc.outcome_sent.add(desc.decision_shard)
            if desc.outcome != OUTCOME_COMMIT:
                # A recovery pass for this (falsely presumed dead)
                # coordinator won the decision order with an abort; the
                # attempt applied nothing.  The recovery pass owns the
                # outcome propagation and descriptor completion — release
                # only the seats and retry from scratch.
                self._release_seats(desc)
                return (_RACED, None)
        else:
            desc.outcome = OUTCOME_COMMIT

        self._propagate_outcome(proc, node, desc)
        self._apply_primary_ops(proc, node, desc)
        self._release_seats(desc)
        results = [desc.results[i] for i in range(desc.op_count)]
        self.layer.complete(desc, committed=True, same_shard=False)
        return (_COMMITTED, results)

    def _abort_attempt(self, proc, node, desc: TxnDescriptor) -> None:
        """Abort before the commit point: release everything acquired.

        Every shard that may carry a prepare gets an abort outcome record
        (sequenced behind the prepare in the same order, so locks release
        at the same position everywhere); seats release directly.
        """
        rts = self.layer.rts
        desc.outcome = OUTCOME_ABORT
        for shard in sorted(desc.prepared_shards):
            objs = desc.prepared_shards[shard]
            self._broadcast_record(
                proc, node, rts.router.group_for(shard),
                (KIND_OUTCOME, desc.txn_id, OUTCOME_ABORT, objs),
                size=CONTROL_RECORD_SIZE)
            desc.outcome_sent.add(shard)
        self._release_seats(desc)
        self.layer.complete(desc, committed=False)

    def _propagate_outcome(self, proc, node, desc: TxnDescriptor) -> None:
        rts = self.layer.rts
        for shard in sorted(desc.prepared_shards):
            if shard in desc.outcome_sent:
                continue
            objs = desc.prepared_shards[shard]
            self._broadcast_record(
                proc, node, rts.router.group_for(shard),
                (KIND_OUTCOME, desc.txn_id, desc.outcome, objs),
                size=CONTROL_RECORD_SIZE)
            desc.outcome_sent.add(shard)

    def _apply_primary_ops(self, proc, node, desc: TxnDescriptor) -> None:
        """Apply seat-managed sub-operations after the commit point.

        Reuses the ordinary primary-write path under a transaction write
        id, inheriting its exactly-once behaviour across primary takeovers
        and seat relocations; the guard was validated under the seat lock,
        so a rejection here means protocol breakage, not contention.
        """
        rts = self.layer.rts
        for index, obj_id, op_name, args, kwargs in desc.primary_ops:
            handle = rts.handle(obj_id)
            op = handle.spec_class.operation_def(op_name)
            result = rts._primary_write(
                proc, node.node_id, handle, op, args, kwargs,
                wid=txn_wid(desc.txn_id, index, obj_id))
            if result is RETRY:
                raise RtsError(
                    f"transaction {desc.txn_id}: guard of {op_name!r} on "
                    f"object {obj_id} failed at commit despite a ready vote")
            desc.results[index] = result

    # -- broadcast participants -----------------------------------------

    def _broadcast_prepare(self, proc, node, desc: TxnDescriptor, obj_id: int,
                           sub_ops) -> Any:
        """One ordered prepare per broadcast participant.

        Epoch and shard are stamped back to back (no suspension between
        them, same discipline as ``_broadcast_write``), so a record always
        rides the group matching its stamp; a move sequenced ahead of it
        stales the record identically everywhere and the vote comes back
        MIGRATED.
        """
        rts = self.layer.rts
        epoch = rts._epoch_by_obj.get(obj_id, 0)
        if rts._mechanism_of(obj_id) != MECHANISM_BROADCAST:
            from ..rts.hybrid import MIGRATED

            return MIGRATED
        shard = rts.shard_of(rts.handle(obj_id))
        group = rts.router.group_for(shard)
        if desc.decision_shard is None:
            desc.decision_shard = shard
        desc.prepared_shards[shard] = (desc.prepared_shards.get(shard, ())
                                       + (obj_id,))
        payload_ops = tuple(sub_ops)
        nbytes = 16
        for _index, _op_name, args, kwargs in payload_ops:
            nbytes += estimate_size(args) + estimate_size(kwargs)
        return self._broadcast_record(
            proc, node, group,
            (KIND_PREPARE, desc.txn_id, obj_id, epoch, payload_ops),
            size=max(16, nbytes), obj_id=obj_id, epoch=epoch)

    def _broadcast_record(self, proc, node, group, payload, size: int,
                          obj_id=None, epoch: int = 0) -> Any:
        """Broadcast one txn record and await its local delivery result."""
        rts = self.layer.rts
        from ..rts.hybrid import _PendingWrite

        invocation_id = next(rts._invocation_ids)
        proc.absorb_overhead(node.drain_overhead())
        proc.flush()
        pending = _PendingWrite(proc=proc, obj_id=obj_id,
                                origin=node.node_id, epoch=epoch)
        rts._pending[invocation_id] = pending
        group.member(node.node_id).broadcast(payload + (invocation_id,),
                                             size=size)
        result = proc.suspend()
        rts._pending.pop(invocation_id, None)
        proc.absorb_overhead(node.drain_overhead())
        return result

    # -- primary-copy participants --------------------------------------

    def _acquire_seat(self, proc, desc: TxnDescriptor, obj_id: int) -> None:
        """Pin a primary participant's seat and drain in-flight commits."""
        rts = self.layer.rts
        while not self.layer.seats.try_acquire(obj_id, desc.txn_id):
            self.layer.seats.wait(obj_id, proc)
            proc.suspend()
        desc.seats_held.append(obj_id)
        while True:
            # Wait out any reconfiguration that slipped past pins() before
            # this descriptor registered; none can start afterwards.
            if (obj_id in rts._migrate_in_progress
                    or (obj_id in rts._migrating
                        and not rts._migration_settled(obj_id))
                    or obj_id in rts._frozen):
                proc.hold(rts.cost_model.cpu.protocol_cost)
                continue
            primary = rts.directory.primary_of(obj_id)
            if not rts.cluster.node(primary).alive:
                rts._await_recovery(proc, obj_id)
                continue
            if rts._inflight_writes.get((primary, obj_id)):
                proc.hold(rts.cost_model.cpu.protocol_cost)
                continue
            manager = rts.managers[primary]
            if manager.has_valid_copy(obj_id) and manager.get(obj_id).locked:
                replica = manager.get(obj_id)
                replica.on_next_change(lambda p=proc: p.wake())
                proc.suspend()
                continue
            return

    def _eval_primary(self, proc, desc: TxnDescriptor, obj_id: int,
                      sub_ops) -> Any:
        """Validate a seat participant's guards against the primary state.

        Runs with the seat pinned and in-flight commits drained: between
        this evaluation and the post-commit apply nothing else can touch
        the primary copy, so a passing guard here still passes there.
        """
        rts = self.layer.rts
        from ..rts.hybrid import MIGRATED
        from ..rts.object_model import execute_operation
        from ..rts.policy import MECHANISM_PRIMARY

        while True:
            if rts._mechanism_of(obj_id) != MECHANISM_PRIMARY:
                return MIGRATED
            primary = rts.directory.primary_of(obj_id)
            if not rts.cluster.node(primary).alive:
                rts._await_recovery(proc, obj_id)
                continue
            manager = rts.managers[primary]
            if not manager.has_valid_copy(obj_id):
                proc.hold(rts.cost_model.cpu.protocol_cost)
                continue
            proc.advance(rts.cost_model.cpu.protocol_cost)
            handle = rts.handle(obj_id)
            clone = manager.get(obj_id).instance.clone()
            for _index, op_name, args, kwargs in sub_ops:
                op = handle.spec_class.operation_def(op_name)
                if execute_operation(clone, op, args, kwargs) is RETRY:
                    return (VOTE_RETRY, obj_id)
            return (VOTE_READY, obj_id)

    def _release_seats(self, desc: TxnDescriptor) -> None:
        for obj_id in desc.seats_held:
            for waiter in self.layer.seats.release(obj_id, desc.txn_id):
                waiter.wake()
        desc.seats_held = []


#: Decide/outcome records carry object ids only.
CONTROL_RECORD_SIZE = 24
