"""Delivery-side transaction record processing (runs at every member).

Every ``txn-*`` record rides a shard's totally-ordered broadcast, so this
code runs at each member *at the same position of the same order* — every
decision below is either a pure function of (record, member-local lock
table, epoch cursor) whose inputs are themselves order-determined, or a
member-local deferral that replays in a position-preserving way:

* a record touching a **locked** object is deferred into that lock's FIFO
  queue; all lock transitions for an object ride its single shard order,
  so every member defers the same records at the same positions;
* a record stamped with an **epoch this member has not delivered yet**
  (it outran a shard move's switch, exactly like PR 4's future writes) is
  deferred under a *barrier* lock on every object it touches, so writes
  delivered behind it queue in FIFO and replay in delivery order when the
  local switch lands — members that never lagged applied the identical
  sequence inline.

Deferred work is stored as plain data tuples (never closures) so a rejoin
seed can ship a donor member's queues to a recovering machine.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from ..errors import RtsError
from ..rts.object_model import RETRY, execute_operation
from .locks import (
    ITEM_RECORD,
    ITEM_WRITE,
    MODE_BARRIER,
    MODE_PREPARED,
)
from .records import (
    KIND_ATOMIC,
    KIND_DECIDE,
    KIND_OUTCOME,
    KIND_PREPARE,
    OUTCOME_COMMIT,
    VOTE_READY,
    VOTE_RETRY,
)


class TxnParticipant:
    """Processes delivered ``txn-*`` records at one member."""

    def __init__(self, layer) -> None:
        self.layer = layer

    # -- entry points ---------------------------------------------------

    def process(self, node_id: int, payload: Tuple[Any, ...], origin: int,
                seqno: int) -> None:
        kind = payload[0]
        if kind == KIND_ATOMIC:
            self._on_atomic(node_id, payload, origin, seqno)
        elif kind == KIND_PREPARE:
            self._on_prepare(node_id, payload, origin, seqno)
        elif kind in (KIND_DECIDE, KIND_OUTCOME):
            self._on_outcome(node_id, payload, origin, seqno)
        else:  # pragma: no cover - routing bug
            raise RtsError(f"unknown transaction record kind {payload[0]!r}")

    def defer_write(self, node_id: int, obj_id: int,
                    entry: Tuple[Any, ...]) -> bool:
        """Queue an ordinary delivered write behind a lock, if one exists.

        Called from ``_apply_one`` *before* its epoch checks: once a lock
        (prepared or barrier) exists on a member's object, everything
        delivered later for that object must replay after it, in FIFO
        order, regardless of its epoch stamp.
        """
        if self.layer.locks.get(node_id, obj_id) is None:
            return False
        self.layer.locks.enqueue(node_id, obj_id, (ITEM_WRITE,) + tuple(entry))
        self.layer.rts.stats.txn_deferred_writes += 1
        return True

    def on_switch_delivered(self, node_id: int, obj_id: int) -> None:
        """Replay an epoch barrier once the member delivered the switch."""
        entry = self.layer.locks.get(node_id, obj_id)
        if entry is None or entry.mode != MODE_BARRIER:
            return
        self.layer.locks.unlock(node_id, obj_id)
        self._replay(node_id, obj_id, list(entry.queue))

    # -- atomic fast path ----------------------------------------------

    def _on_atomic(self, node_id: int, payload: Tuple[Any, ...], origin: int,
                   seqno: int) -> None:
        _, txn_id, entries, invocation_id = payload
        rts = self.layer.rts
        locks = self.layer.locks
        # Deferred behind any foreign lock: FIFO into the first locked
        # object's queue (lock state is order-determined, so every member
        # picks the same queue at the same position).
        for _index, obj_id, _op, _args, _kwargs, _epoch in entries:
            entry = locks.get(node_id, obj_id)
            if entry is None:
                continue
            if entry.mode == MODE_BARRIER and entry.owner == txn_id:
                continue  # this record's own epoch barrier
            locks.enqueue(node_id, obj_id, (ITEM_RECORD, payload, origin, seqno))
            return
        future_obj = None
        for _index, obj_id, _op, _args, _kwargs, epoch in entries:
            gate = rts._node_epoch.get((node_id, obj_id), 0)
            if epoch < gate:
                # Sequenced after a switch it predates: dropped identically
                # at every member; the origin re-groups and re-issues.
                self._drop_own_barriers(node_id, txn_id, entries)
                if origin == node_id:
                    from ..rts.hybrid import MIGRATED

                    rts._resolve(invocation_id, MIGRATED)
                return
            if epoch > gate and future_obj is None:
                future_obj = obj_id
        if future_obj is not None:
            self._defer_future(node_id, txn_id, future_obj,
                               [e[1] for e in entries], payload, origin, seqno)
            return
        manager = rts.managers[node_id]
        node = rts.cluster.node(node_id)
        cpu = rts.cost_model.cpu
        # All-or-nothing: validate every guard on clones first, touch the
        # real replicas only when the whole group passes.
        clones = {}
        failed = None
        for _index, obj_id, op_name, args, kwargs, _epoch in entries:
            handle = rts.handle(obj_id)
            op = handle.spec_class.operation_def(op_name)
            if not manager.has_valid_copy(obj_id):
                raise RtsError(
                    f"node {node_id} received transaction {txn_id} for object "
                    f"{obj_id} before its create message"
                )
            clone = clones.get(obj_id)
            if clone is None:
                clone = clones[obj_id] = manager.get(obj_id).instance.clone()
            if execute_operation(clone, op, args, kwargs) is RETRY:
                failed = obj_id
                break
        if failed is not None:
            node.charge_overhead(cpu.operation_dispatch_cost)
            self._drop_own_barriers(node_id, txn_id, entries)
            if origin == node_id:
                rts._resolve(invocation_id, (VOTE_RETRY, failed))
            return
        results = {}
        for index, obj_id, op_name, args, kwargs, _epoch in entries:
            op = rts.handle(obj_id).spec_class.operation_def(op_name)
            result = manager.apply_write(obj_id, op, args, kwargs,
                                         local_origin=origin == node_id)
            node.charge_overhead(cpu.operation_dispatch_cost
                                 + op.work_units * cpu.work_unit_time)
            rts.history.record_write(node_id, obj_id, op_name, args, seqno,
                                     manager.get(obj_id).version)
            results[index] = result
        # Own epoch barriers release only now: their queued work was
        # delivered after this record, so it replays after the applies.
        self._drop_own_barriers(node_id, txn_id, entries)
        if origin == node_id:
            rts._resolve(invocation_id, (VOTE_READY, results))

    # -- 2PC prepare ----------------------------------------------------

    def _on_prepare(self, node_id: int, payload: Tuple[Any, ...], origin: int,
                    seqno: int) -> None:
        _, txn_id, obj_id, epoch, sub_ops, invocation_id = payload
        rts = self.layer.rts
        locks = self.layer.locks
        if locks.outcome_at(node_id, txn_id, obj_id) is not None:
            # An outcome naming this object was sequenced ahead of this
            # prepare in the same shard order (the coordinator died with
            # the prepare in flight): it is void everywhere.
            return
        entry = locks.get(node_id, obj_id)
        if entry is not None and not (entry.mode == MODE_BARRIER
                                      and entry.owner == txn_id):
            locks.enqueue(node_id, obj_id, (ITEM_RECORD, payload, origin, seqno))
            return
        gate = rts._node_epoch.get((node_id, obj_id), 0)
        if epoch < gate:
            self._drop_own_barrier(node_id, txn_id, obj_id)
            if origin == node_id:
                from ..rts.hybrid import MIGRATED

                rts._resolve(invocation_id, MIGRATED)
            return
        if epoch > gate:
            self._defer_future(node_id, txn_id, obj_id, [obj_id], payload,
                               origin, seqno)
            return
        self._drop_own_barrier(node_id, txn_id, obj_id)
        manager = rts.managers[node_id]
        node = rts.cluster.node(node_id)
        cpu = rts.cost_model.cpu
        if not manager.has_valid_copy(obj_id):
            raise RtsError(
                f"node {node_id} received prepare of transaction {txn_id} for "
                f"object {obj_id} before its create message"
            )
        handle = rts.handle(obj_id)
        clone = manager.get(obj_id).instance.clone()
        ready = True
        for _index, op_name, args, kwargs in sub_ops:
            op = handle.spec_class.operation_def(op_name)
            if execute_operation(clone, op, args, kwargs) is RETRY:
                ready = False
                break
        node.charge_overhead(cpu.operation_dispatch_cost)
        if ready:
            # Stash the sub-operations under the lock; they apply when the
            # outcome record releases it.  Conflicting work delivered in
            # the meantime defers into the lock's queue (never rejected),
            # so per-client FIFO holds across the prepared window.
            locks.lock(node_id, obj_id, txn_id, MODE_PREPARED,
                       stash=tuple(sub_ops))
        if origin == node_id:
            rts._resolve(invocation_id,
                         (VOTE_READY if ready else VOTE_RETRY, obj_id))

    # -- 2PC decide / outcome -------------------------------------------

    def _on_outcome(self, node_id: int, payload: Tuple[Any, ...], origin: int,
                    seqno: int) -> None:
        kind, txn_id, outcome, objs, invocation_id = payload
        rts = self.layer.rts
        locks = self.layer.locks
        # No early dedup return: a transaction's outcome reaches each of
        # its shards in a separate record, and each must run the apply
        # loop for its own objects.  Duplicates *within* a shard (the
        # coordinator and a recovery pass racing) are harmless — the
        # per-object lock entry is gone after the first one, and
        # ``mark_outcome`` keeps the first outcome for the tombstone check.
        # An outcome must not overtake a *foreign* lock (its own prepare
        # may be queued inside) or its own epoch barrier (its own prepare
        # definitely is): queue it behind them, in the same FIFO.  A lock
        # this transaction holds prepared is the one this outcome is here
        # to release — never defer behind that.
        for obj_id in objs:
            entry = locks.get(node_id, obj_id)
            if entry is not None and (entry.owner != txn_id
                                      or entry.mode == MODE_BARRIER):
                locks.enqueue(node_id, obj_id,
                              (ITEM_RECORD, payload, origin, seqno))
                return
        desc = self.layer.descs.get(txn_id)
        if kind == KIND_DECIDE and desc is not None and desc.outcome is None:
            # First decide record in the decision shard's order wins —
            # identical at every member, because this assignment happens at
            # the same order position everywhere.
            desc.outcome = outcome
        final = desc.outcome if (kind == KIND_DECIDE
                                 and desc is not None
                                 and desc.outcome is not None) else outcome
        locks.mark_outcome(node_id, txn_id, objs, final)
        manager = rts.managers[node_id]
        node = rts.cluster.node(node_id)
        cpu = rts.cost_model.cpu
        node.charge_overhead(cpu.operation_dispatch_cost)
        for obj_id in objs:
            entry = locks.get(node_id, obj_id)
            if entry is None or entry.owner != txn_id:
                continue  # voted retry here: nothing stashed, nothing held
            locks.unlock(node_id, obj_id)
            if final == OUTCOME_COMMIT:
                for index, op_name, args, kwargs in entry.stash:
                    op = rts.handle(obj_id).spec_class.operation_def(op_name)
                    result = manager.apply_write(
                        obj_id, op, args, kwargs,
                        local_origin=origin == node_id)
                    node.charge_overhead(cpu.operation_dispatch_cost
                                         + op.work_units * cpu.work_unit_time)
                    rts.history.record_write(node_id, obj_id, op_name, args,
                                             seqno,
                                             manager.get(obj_id).version)
                    if desc is not None:
                        desc.results[index] = result
            self._replay(node_id, obj_id, list(entry.queue))
        if origin == node_id:
            rts._resolve(invocation_id, None)

    # -- deferral machinery ---------------------------------------------

    def _defer_future(self, node_id: int, txn_id: int, future_obj: int,
                      obj_ids: List[int], payload: Tuple[Any, ...],
                      origin: int, seqno: int) -> None:
        """Barrier a record that outran this member's epoch.

        A barrier lock lands on *every* object of the record (members that
        never lagged interleave later deliveries after the record, so the
        lagging member must queue them too), earlier future-deferred
        ordinary writes are absorbed ahead of the record, and the record
        itself queues on the object whose switch it awaits.
        """
        rts = self.layer.rts
        locks = self.layer.locks
        for obj_id in obj_ids:
            if locks.get(node_id, obj_id) is not None:
                continue  # already barriered by an earlier deferral
            entry = locks.lock(node_id, obj_id, txn_id, MODE_BARRIER)
            for write in rts._future_writes.pop((node_id, obj_id), []):
                entry.queue.append((ITEM_WRITE,) + tuple(write))
        locks.enqueue(node_id, future_obj, (ITEM_RECORD, payload, origin, seqno))
        rts._arm_lag_probe(node_id, future_obj)

    def _drop_own_barrier(self, node_id: int, txn_id: int, obj_id: int) -> None:
        locks = self.layer.locks
        entry = locks.get(node_id, obj_id)
        if (entry is not None and entry.owner == txn_id
                and entry.mode == MODE_BARRIER):
            locks.unlock(node_id, obj_id)
            self._replay(node_id, obj_id, list(entry.queue))

    def _drop_own_barriers(self, node_id: int, txn_id: int, entries) -> None:
        for _index, obj_id, _op, _args, _kwargs, _epoch in entries:
            self._drop_own_barrier(node_id, txn_id, obj_id)

    def _replay(self, node_id: int, obj_id: int,
                items: List[Tuple[Any, ...]]) -> None:
        """Replay a released lock's FIFO queue in delivery order.

        Every item goes back through its normal dispatch path: a replayed
        record may re-lock the object (a queued prepare voting ready, or a
        re-deferral), and each later item then makes its own deferral
        decision against the new lock — exactly as if it were delivered
        fresh.  Blanket-migrating the rest of the queue would be wrong:
        the new lock's own outcome record may be among the remaining
        items, and it must release that lock, not queue behind it.
        """
        rts = self.layer.rts
        for item in items:
            if item[0] == ITEM_WRITE:
                (op_name, args, kwargs, invocation_id, epoch, origin,
                 seqno) = item[1:]
                rts._apply_one(node_id, rts.managers[node_id],
                               rts.cluster.node(node_id), obj_id, op_name,
                               args, kwargs, invocation_id, epoch, origin,
                               seqno)
            else:
                _, payload, origin, seqno = item
                self.process(node_id, payload, origin, seqno)
