"""Wire-record kinds and bookkeeping records of the transaction layer.

A transaction's protocol state rides the shard broadcasts as ``txn-*``
records (see :mod:`repro.txn.participant` for the delivery-side handling);
everything here is the *bookkeeping* side: the record kinds, the
per-transaction descriptor the coordinator and the crash-recovery pass
share, and the payload shapes.

Like the runtime's directory and commit records, descriptors are global
simulator bookkeeping: they model durable coordinator state (a
transaction-manager log) and charge no communication.  All ordering
effects come from the broadcast records themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

#: Same-shard fast path: one ordered record carrying every sub-operation.
KIND_ATOMIC = "txn-atomic"
#: Cross-shard 2PC: one prepare per participant object, sequenced through
#: that object's shard order.
KIND_PREPARE = "txn-prepare"
#: The commit/abort decision, sequenced through the *decision shard* (the
#: shard of the lowest-id broadcast participant).  The first decide record
#: in that order fixes the outcome — which is what arbitrates a recovery
#: abort racing a crashed coordinator's in-flight commit.
KIND_DECIDE = "txn-decide"
#: The fixed outcome carried into every other participant shard.
KIND_OUTCOME = "txn-outcome"

#: Every payload kind the transaction layer routes on delivery.
TXN_KINDS = frozenset({KIND_ATOMIC, KIND_PREPARE, KIND_DECIDE, KIND_OUTCOME})

OUTCOME_COMMIT = "commit"
OUTCOME_ABORT = "abort"

#: Votes a prepare (or atomic) record resolves at its origin member.
VOTE_READY = "ready"
VOTE_RETRY = "retry"


def txn_wid(txn_id: int, index: int, obj_id: int) -> Tuple[str, int]:
    """The stable write id of one primary-managed sub-operation.

    The origin string is unique per (transaction, sub-operation), so the
    primary's newest-only dedup table keeps every sub-operation's entry,
    and a recovery re-apply after a coordinator crash (or a client retry
    across a takeover) is recognised exactly like an ordinary re-issued
    primary write.
    """
    return (f"txn:{txn_id}#{index}", obj_id)


@dataclass
class TxnDescriptor:
    """Durable bookkeeping for one transaction (the coordinator's log).

    The crash-recovery pass reads it to finish or abort a transaction
    whose coordinator node died: ``prepared_shards`` names every shard a
    prepare was broadcast into (whether or not its vote was ever read),
    ``outcome_sent`` which shards already carry the outcome, and
    ``primary_ops`` the seat-managed sub-operations to (re-)apply under
    their stable write ids.
    """

    txn_id: int
    coordinator_node: int
    op_count: int
    #: Participant object ids, ascending — the global acquisition order.
    participants: Tuple[int, ...] = ()
    outcome: Optional[str] = None
    #: Shard whose order arbitrates the decision (None: no broadcast
    #: participants; the descriptor itself is the commit point).
    decision_shard: Optional[int] = None
    decision_objs: Tuple[int, ...] = ()
    #: shard -> broadcast participant obj_ids whose prepare went there.
    prepared_shards: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    outcome_sent: Set[int] = field(default_factory=set)
    #: (index, obj_id, op_name, args, kwargs) per primary-managed sub-op.
    primary_ops: List[Tuple[int, int, str, Tuple[Any, ...], Dict[str, Any]]] = field(
        default_factory=list
    )
    #: Seat locks this transaction still holds (released at completion).
    seats_held: List[int] = field(default_factory=list)
    #: Sub-operation results by original position, filled at apply time.
    results: Dict[int, Any] = field(default_factory=dict)
    #: Node running the recovery pass for this transaction, if any.
    recovery_node: Optional[int] = None
    done: bool = False

    @property
    def needs_recovery(self) -> bool:
        return not self.done
