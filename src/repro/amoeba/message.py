"""Messages exchanged over the simulated network.

A :class:`Message` is a logical unit (an RPC request, a broadcast data
message, a protocol acknowledgement).  The network layer fragments messages
larger than one packet and reassembles them at the receiving NIC, exactly so
that the PB/BB protocol choice ("one packet or less" versus "more than one
packet") can be made the way the paper describes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

_msg_counter = itertools.count(1)

#: Broadcast destination marker.
BROADCAST = None


def estimate_size(value: Any) -> int:
    """Estimate the marshalled size, in bytes, of a Python value.

    The simulation does not serialise payloads for real; instead it charges
    network time according to this estimate.  The rules are deliberately
    simple and deterministic:

    * ``None``/booleans: 1 byte; integers and floats: 8 bytes;
    * strings and byte strings: their length;
    * lists, tuples, sets: 8 bytes of framing plus the sum of their elements;
    * dicts: 8 bytes of framing plus keys and values;
    * objects exposing ``marshal_size()``: whatever that reports;
    * anything else: 64 bytes (a conservative default for small records).
    """
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, (str, bytes, bytearray)):
        return max(1, len(value))
    if isinstance(value, (list, tuple, set, frozenset)):
        return 8 + sum(estimate_size(item) for item in value)
    if isinstance(value, dict):
        return 8 + sum(estimate_size(k) + estimate_size(v) for k, v in value.items())
    marshal_size = getattr(value, "marshal_size", None)
    if callable(marshal_size):
        return int(marshal_size())
    return 64


@dataclass
class Message:
    """A logical message travelling between nodes.

    Attributes
    ----------
    src:
        Sending node id.
    dst:
        Destination node id, or ``None`` for a hardware broadcast.
    kind:
        Port / message-type string used for dispatch at the receiver.
    payload:
        Arbitrary Python payload (never copied; the simulation relies on
        senders not mutating payloads after sending).
    size:
        Payload size in bytes used for network cost accounting.  If zero, it
        is estimated from the payload at construction time.
    headers:
        Optional protocol metadata (sequence numbers, message ids, ...).
    """

    src: int
    dst: Optional[int]
    kind: str
    payload: Any = None
    size: int = 0
    headers: Dict[str, Any] = field(default_factory=dict)
    msg_id: int = field(default_factory=lambda: next(_msg_counter))

    def __post_init__(self) -> None:
        if self.size <= 0:
            self.size = max(1, estimate_size(self.payload))

    @property
    def is_broadcast(self) -> bool:
        return self.dst is BROADCAST

    def reply_to(self, kind: str, payload: Any = None, size: int = 0, **headers: Any) -> "Message":
        """Build a unicast message back to this message's sender."""
        merged = {"in_reply_to": self.msg_id}
        merged.update(headers)
        return Message(
            src=self.dst if self.dst is not None else -1,
            dst=self.src,
            kind=kind,
            payload=payload,
            size=size,
            headers=merged,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dst = "ALL" if self.is_broadcast else self.dst
        return f"<Message #{self.msg_id} {self.kind} {self.src}->{dst} {self.size}B>"
