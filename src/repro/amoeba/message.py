"""Messages exchanged over the simulated network.

A :class:`Message` is a logical unit (an RPC request, a broadcast data
message, a protocol acknowledgement).  The network layer fragments messages
larger than one packet and reassembles them at the receiving NIC, exactly so
that the PB/BB protocol choice ("one packet or less" versus "more than one
packet") can be made the way the paper describes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

_msg_counter = itertools.count(1)

#: Broadcast destination marker.
BROADCAST = None


#: Keys-portion sizes for dict payloads keyed by their tuple of (all-``str``)
#: keys: protocol payloads reuse a handful of header shapes with interned key
#: strings, so the keys' contribution is computed once per shape.  Restricted
#: to exact-``str`` keys because only their size is a pure function of
#: equality (an object with a custom ``__eq__``/``marshal_size`` is not).
_DICT_SHAPE_SIZES: Dict[tuple, int] = {}
_DICT_SHAPE_CACHE_LIMIT = 4096


def estimate_size(value: Any) -> int:
    """Estimate the marshalled size, in bytes, of a Python value.

    The simulation does not serialise payloads for real; instead it charges
    network time according to this estimate.  The rules are deliberately
    simple and deterministic:

    * ``None``/booleans: 1 byte; integers and floats: 8 bytes;
    * strings and byte strings: their length;
    * lists, tuples, sets: 8 bytes of framing plus the sum of their elements;
    * dicts: 8 bytes of framing plus keys and values;
    * objects exposing ``marshal_size()``: whatever that reports;
    * anything else: 64 bytes (a conservative default for small records).

    The scalar cases are answered with exact-type checks (``bool`` first:
    it is an ``int`` subclass); everything else goes through an iterative
    walk, so arbitrarily deep payloads cannot hit the recursion limit.
    """
    if value is None or value is True or value is False:
        return 1
    t = type(value)
    if t is int or t is float:
        return 8
    if t is str or t is bytes:
        length = len(value)
        return length if length > 0 else 1
    return _estimate_structured(value)


def _estimate_structured(value: Any) -> int:
    """The non-scalar (or subclassed-scalar) cases of :func:`estimate_size`.

    An explicit stack replaces recursion.  Element order never matters —
    integer addition commutes — so set/dict iteration order is irrelevant.
    """
    total = 0
    stack = [value]
    pop = stack.pop
    while stack:
        v = pop()
        if v is None or isinstance(v, bool):
            total += 1
        elif isinstance(v, (int, float)):
            total += 8
        elif isinstance(v, (str, bytes, bytearray)):
            total += max(1, len(v))
        elif isinstance(v, (list, tuple, set, frozenset)):
            total += 8
            stack.extend(v)
        elif isinstance(v, dict):
            total += 8
            if v:
                keys = tuple(v)
                if all(type(k) is str for k in keys):
                    keys_size = _DICT_SHAPE_SIZES.get(keys)
                    if keys_size is None:
                        keys_size = sum(max(1, len(k)) for k in keys)
                        if len(_DICT_SHAPE_SIZES) < _DICT_SHAPE_CACHE_LIMIT:
                            _DICT_SHAPE_SIZES[keys] = keys_size
                    total += keys_size
                else:
                    stack.extend(keys)
                stack.extend(v.values())
        else:
            marshal_size = getattr(v, "marshal_size", None)
            if callable(marshal_size):
                total += int(marshal_size())
            else:
                total += 64
    return total


@dataclass
class Message:
    """A logical message travelling between nodes.

    Attributes
    ----------
    src:
        Sending node id.
    dst:
        Destination node id, or ``None`` for a hardware broadcast.
    kind:
        Port / message-type string used for dispatch at the receiver.
    payload:
        Arbitrary Python payload (never copied; the simulation relies on
        senders not mutating payloads after sending).
    size:
        Payload size in bytes used for network cost accounting.  If zero, it
        is estimated from the payload at construction time.
    headers:
        Optional protocol metadata (sequence numbers, message ids, ...).
    """

    src: int
    dst: Optional[int]
    kind: str
    payload: Any = None
    size: int = 0
    headers: Dict[str, Any] = field(default_factory=dict)
    msg_id: int = field(default_factory=lambda: next(_msg_counter))

    def __post_init__(self) -> None:
        if self.size <= 0:
            self.size = max(1, estimate_size(self.payload))

    @property
    def is_broadcast(self) -> bool:
        return self.dst is BROADCAST

    def reply_to(self, kind: str, payload: Any = None, size: int = 0, **headers: Any) -> "Message":
        """Build a unicast message back to this message's sender.

        A reply that echoes this message's payload object reuses this
        message's (already computed or caller-supplied) size instead of
        walking the payload a second time.
        """
        if size <= 0 and payload is not None and payload is self.payload:
            size = self.size
        merged = {"in_reply_to": self.msg_id}
        merged.update(headers)
        return Message(
            src=self.dst if self.dst is not None else -1,
            dst=self.src,
            kind=kind,
            payload=payload,
            size=size,
            headers=merged,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dst = "ALL" if self.is_broadcast else self.dst
        return f"<Message #{self.msg_id} {self.kind} {self.src}->{dst} {self.size}B>"
