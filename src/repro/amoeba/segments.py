"""Memory segments — the Amoeba microkernel's low-level memory management.

Threads allocate and free blocks of memory called *segments*, which can be
mapped into and out of an address space.  The shared-object runtime uses
segments as marshalling buffers; the model here is bookkeeping (sizes,
mapping state, capacity limits) rather than byte-level storage, which is all
the higher layers need.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import SimulationError


@dataclass
class Segment:
    """A contiguous block of memory-resident storage."""

    segment_id: int
    size: int
    owner_thread: Optional[str] = None
    mapped: bool = False
    data: dict = field(default_factory=dict)

    def write(self, key: str, value) -> None:
        """Store a value under ``key`` (the model does not track raw bytes)."""
        if not self.mapped:
            raise SimulationError(f"segment {self.segment_id} written while unmapped")
        self.data[key] = value

    def read(self, key: str):
        if not self.mapped:
            raise SimulationError(f"segment {self.segment_id} read while unmapped")
        return self.data[key]


class SegmentManager:
    """Per-node segment allocator with a fixed physical-memory budget."""

    def __init__(self, capacity_bytes: int = 64 * 1024 * 1024) -> None:
        self.capacity_bytes = capacity_bytes
        self.used_bytes = 0
        self._segments: Dict[int, Segment] = {}
        self._ids = itertools.count(1)

    def allocate(self, size: int, owner_thread: Optional[str] = None) -> Segment:
        """Allocate a segment of ``size`` bytes.

        Raises
        ------
        SimulationError
            If the node's memory budget would be exceeded (all Amoeba
            segments are memory resident).
        """
        if size <= 0:
            raise SimulationError("segment size must be positive")
        if self.used_bytes + size > self.capacity_bytes:
            raise SimulationError(
                f"out of segment memory: requested {size}, "
                f"free {self.capacity_bytes - self.used_bytes}"
            )
        segment = Segment(next(self._ids), size, owner_thread)
        self._segments[segment.segment_id] = segment
        self.used_bytes += size
        return segment

    def free(self, segment: Segment) -> None:
        """Release a segment back to the pool."""
        stored = self._segments.pop(segment.segment_id, None)
        if stored is None:
            raise SimulationError(f"segment {segment.segment_id} already freed")
        self.used_bytes -= stored.size

    def map(self, segment: Segment) -> Segment:
        """Map a segment into the caller's address space."""
        if segment.segment_id not in self._segments:
            raise SimulationError(f"cannot map freed segment {segment.segment_id}")
        segment.mapped = True
        return segment

    def unmap(self, segment: Segment) -> None:
        segment.mapped = False

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def __len__(self) -> int:
        return len(self._segments)
