"""The backend-agnostic transport seam.

Everything above the interconnect — the PB/BB broadcast protocol, RPC, the
runtime systems — talks to the network through the narrow surface defined
here, so the *same* protocol code can run on two very different backends:

* the deterministic simulated interconnects of
  :mod:`repro.amoeba.network` (``EthernetNetwork`` / ``SwitchedNetwork``),
  where "time" is virtual and every run is byte-reproducible; and
* the real-process backend of :mod:`repro.net`, where each node is an OS
  process and messages travel as length-prefixed JSON datagrams over
  asyncio UDP sockets (:class:`repro.net.udp.UdpTransport`).

A transport moves whole :class:`~repro.amoeba.message.Message` values between
*attached endpoints* addressed by integer node id.  ``dst=None`` (the
:data:`~repro.amoeba.message.BROADCAST` marker) fans the message out to every
attached endpoint except the sender — hardware broadcast on the simulated
Ethernet, a configurable loopback fan-out on the UDP backend.  Delivery is
asynchronous and may fail silently (packet loss); reliability is the
protocol layers' job, which is exactly why they port across backends.

The simulated backend keeps its historical entry points (``Cluster`` builds
``BaseNetwork`` subclasses directly); this module only *names* the contract
so that tests can assert both backends honour it and new code can be written
against the seam instead of a concrete network class.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .message import Message


class TransportEndpoint(ABC):
    """The receive side of one attached node.

    The simulated :class:`~repro.amoeba.nic.NetworkInterface` implements this
    by reassembling packets and charging receive-interrupt cost before
    dispatching; the UDP backend decodes one datagram per message and
    dispatches directly.
    """

    #: Address of this endpoint on its transport.
    node_id: int

    @abstractmethod
    def deliver(self, msg: "Message") -> None:
        """Hand one fully received message to the node's dispatcher."""


class Transport(ABC):
    """One interconnect instance moving messages between attached endpoints.

    Implementations: :class:`repro.amoeba.network.BaseNetwork` (simulated,
    virtual-time) and :class:`repro.net.udp.UdpTransport` (real asyncio UDP
    sockets).  The contract both must honour:

    * :meth:`send` is asynchronous: it queues ``msg`` and returns; delivery
      happens later (virtual-time events or real datagrams).
    * ``msg.dst is None`` is a broadcast to every attached endpoint except
      the sender; a unicast destination must be attached (misrouting fails
      loudly at send time).
    * Messages may be lost; duplicate delivery never happens spontaneously
      (retransmission-induced duplicates are the protocols' to handle).
    * :meth:`peer_alive` is the failure-detection primitive protocol layers
      consult before blocking on a reply.
    """

    @abstractmethod
    def send(self, msg: "Message", on_sent: Optional[Callable[["Message"], None]] = None) -> None:
        """Queue ``msg`` for transmission.

        ``on_sent`` fires once the message has left the sender (after the
        wire time on the simulated backend; immediately after the datagrams
        are handed to the socket on the UDP backend).
        """

    @abstractmethod
    def peer_alive(self, node_id: int) -> bool:
        """Is the machine behind ``node_id`` believed to be up?"""

    @property
    @abstractmethod
    def node_ids(self) -> List[int]:
        """Sorted ids of every endpoint attached to this transport."""
