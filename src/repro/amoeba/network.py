"""Simulated interconnects.

Two network models are provided:

* :class:`EthernetNetwork` — the paper's setting: a single shared 10 Mb/s
  medium on which only one packet is in flight at a time and every attached
  NIC sees broadcast packets.  Contention for the medium is modelled with a
  FIFO resource, so heavy communication naturally flattens speedup curves.
* :class:`SwitchedNetwork` — a point-to-point network without hardware
  broadcast (each source serialises its own transmissions but different
  sources do not contend).  This is the substrate for the point-to-point
  runtime system.

Both models fragment messages into packets, apply per-packet latency, support
probabilistic packet loss for failure-injection tests, and keep detailed
traffic statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from ..config import NetworkParams
from ..errors import NetworkError, RoutingError
from ..sim.resources import FifoResource
from .message import Message
from .transport import Transport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.kernel import Simulator
    from .nic import NetworkInterface


@dataclass
class Packet:
    """One fragment of a :class:`Message` on the wire."""

    message: Message
    index: int
    count: int
    payload_bytes: int

    @property
    def is_last(self) -> bool:
        return self.index == self.count - 1


@dataclass
class NetworkStats:
    """Aggregate traffic statistics for one network instance."""

    messages_sent: int = 0
    unicast_messages: int = 0
    broadcast_messages: int = 0
    packets_sent: int = 0
    payload_bytes: int = 0
    wire_bytes: int = 0
    packets_dropped: int = 0
    deliveries: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    bytes_by_kind: Dict[str, int] = field(default_factory=dict)

    def note_message(self, msg: Message) -> None:
        self.messages_sent += 1
        if msg.is_broadcast:
            self.broadcast_messages += 1
        else:
            self.unicast_messages += 1
        self.payload_bytes += msg.size
        self.by_kind[msg.kind] = self.by_kind.get(msg.kind, 0) + 1
        self.bytes_by_kind[msg.kind] = self.bytes_by_kind.get(msg.kind, 0) + msg.size


class BaseNetwork(Transport):
    """Common functionality shared by the network models.

    This is the *simulated* implementation of the
    :class:`~repro.amoeba.transport.Transport` seam: delivery happens through
    virtual-time events, messages fragment into packets, and loss is injected
    deterministically from a named rng stream.  The real-process backend
    implements the same seam over asyncio UDP sockets
    (:class:`repro.net.udp.UdpTransport`).
    """

    supports_broadcast = False

    def __init__(
        self, sim: "Simulator", params: Optional[NetworkParams] = None, name: str = "net"
    ) -> None:
        self.sim = sim
        self.params = params or NetworkParams()
        self.name = name
        self.stats = NetworkStats()
        self._nics: Dict[int, "NetworkInterface"] = {}
        #: Sorted node ids, rebuilt on attach: the broadcast fan-out walks
        #: this every packet, and nodes only ever attach (never detach).
        self._node_order: List[int] = []
        self._loss_rng = sim.rng.stream(f"{name}.loss")

    # -- attachment ------------------------------------------------------ #

    def attach(self, nic: "NetworkInterface") -> None:
        """Attach a NIC; its ``node_id`` becomes addressable on this network."""
        if nic.node_id in self._nics:
            raise NetworkError(f"node {nic.node_id} already attached to {self.name}")
        self._nics[nic.node_id] = nic
        self._node_order = sorted(self._nics)
        nic.network = self

    def nic_for(self, node_id: int) -> "NetworkInterface":
        try:
            return self._nics[node_id]
        except KeyError:
            raise RoutingError(f"no node {node_id} attached to network {self.name!r}") from None

    @property
    def node_ids(self) -> List[int]:
        return list(self._node_order)

    def peer_alive(self, node_id: int) -> bool:
        """Is the machine behind ``node_id`` up?

        The failure-detection primitive the RPC layer consults before
        blocking on a reply: talking to a machine already known dead fails
        fast instead of waiting on a reply that cannot come.
        """
        nic = self._nics.get(node_id)
        return nic is not None and nic.node.alive

    # -- sending ---------------------------------------------------------- #

    def send(self, msg: Message, on_sent: Optional[Callable[[Message], None]] = None) -> None:
        """Queue ``msg`` for transmission.

        ``on_sent`` is invoked (in kernel context) once the final packet of
        the message has left the sender.
        """
        if msg.is_broadcast and not self.supports_broadcast:
            raise NetworkError(f"network {self.name!r} does not support hardware broadcast")
        if not msg.is_broadcast:
            # Validate the destination eagerly so misrouting fails loudly.
            self.nic_for(msg.dst)
        self.stats.note_message(msg)
        packets = self._fragment(msg)
        self._transmit_packets(msg, packets, on_sent)

    def _fragment(self, msg: Message) -> List[Packet]:
        count = self.params.packets_for(msg.size)
        packets = []
        remaining = msg.size
        for index in range(count):
            chunk = min(self.params.packet_size, remaining)
            remaining -= chunk
            packets.append(Packet(msg, index, count, max(1, chunk)))
        return packets

    def _transmit_packets(
        self, msg: Message, packets: List[Packet], on_sent: Optional[Callable[[Message], None]]
    ) -> None:
        raise NotImplementedError

    # -- delivery --------------------------------------------------------- #

    def _deliver_packet(self, packet: Packet, dst: int) -> None:
        """Deliver one packet to one destination after the propagation latency."""
        nic = self._nics.get(dst)
        if nic is None:
            return
        if self.params.loss_rate > 0.0 and self._loss_rng.random() < self.params.loss_rate:
            self.stats.packets_dropped += 1
            return
        self.sim.schedule(self.params.latency, nic.receive_packet, packet)

    def _broadcast_packet(self, packet: Packet) -> None:
        """Fan one packet out to every attached NIC except the sender.

        All copies share the same propagation latency, so instead of one
        scheduled event per member (the O(members) hot spot at 64+ nodes)
        the surviving destinations are delivered by **one** event that calls
        each NIC in ascending node-id order.  The per-destination events
        would have been scheduled back to back with consecutive sequence
        numbers — nothing could interleave between them — so firing them
        inside one callback, in the same order, is exactly equivalent.
        Loss draws happen here, per destination in ascending id order, to
        keep the rng stream's draw sequence identical to the per-event
        implementation.
        """
        sender = packet.message.src
        nics = self._nics
        loss_rate = self.params.loss_rate
        if loss_rate > 0.0:
            rng = self._loss_rng
            targets = []
            for node_id in self._node_order:
                if node_id == sender:
                    continue
                if rng.random() < loss_rate:
                    self.stats.packets_dropped += 1
                else:
                    targets.append(nics[node_id])
        else:
            targets = [nics[nid] for nid in self._node_order if nid != sender]
        if targets:
            self.sim.schedule(self.params.latency, self._deliver_broadcast, packet, targets)

    def _deliver_broadcast(self, packet: Packet, targets: List["NetworkInterface"]) -> None:
        for nic in targets:
            nic.receive_packet(packet)


class EthernetNetwork(BaseNetwork):
    """A shared-medium broadcast network (one transmission at a time)."""

    supports_broadcast = True

    def __init__(
        self, sim: "Simulator", params: Optional[NetworkParams] = None, name: str = "ethernet"
    ) -> None:
        super().__init__(sim, params, name)
        self.medium = FifoResource(sim, capacity=1, name=f"{name}.medium")

    def _transmit_packets(
        self, msg: Message, packets: List[Packet], on_sent: Optional[Callable[[Message], None]]
    ) -> None:
        for packet in packets:
            duration = self.params.transmit_time(packet.payload_bytes)

            def _on_wire_done(pkt: Packet = packet) -> None:
                self.stats.packets_sent += 1
                self.stats.wire_bytes += pkt.payload_bytes + self.params.packet_overhead_bytes
                if pkt.message.is_broadcast:
                    self._broadcast_packet(pkt)
                else:
                    self._deliver_packet(pkt, pkt.message.dst)
                if pkt.is_last and on_sent is not None:
                    on_sent(pkt.message)

            self.medium.use(duration, _on_wire_done)

    def utilization(self) -> float:
        """Fraction of elapsed virtual time during which the medium was busy."""
        return self.medium.utilization()


class SwitchedNetwork(BaseNetwork):
    """A switched point-to-point network without hardware broadcast.

    Each source node owns an output link modelled as a FIFO resource, so a
    node's transmissions are serialised but different nodes transmit
    concurrently (as in a full-duplex switch).
    """

    supports_broadcast = False

    def __init__(
        self, sim: "Simulator", params: Optional[NetworkParams] = None, name: str = "switch"
    ) -> None:
        if params is None:
            params = NetworkParams(supports_broadcast=False)
        super().__init__(sim, params, name)
        self._links: Dict[int, FifoResource] = {}

    def attach(self, nic: "NetworkInterface") -> None:
        super().attach(nic)
        self._links[nic.node_id] = FifoResource(
            self.sim, capacity=1, name=f"{self.name}.link{nic.node_id}"
        )

    def _transmit_packets(
        self, msg: Message, packets: List[Packet], on_sent: Optional[Callable[[Message], None]]
    ) -> None:
        link = self._links[msg.src]
        for packet in packets:
            duration = self.params.transmit_time(packet.payload_bytes)

            def _on_wire_done(pkt: Packet = packet) -> None:
                self.stats.packets_sent += 1
                self.stats.wire_bytes += pkt.payload_bytes + self.params.packet_overhead_bytes
                self._deliver_packet(pkt, pkt.message.dst)
                if pkt.is_last and on_sent is not None:
                    on_sent(pkt.message)

            link.use(duration, _on_wire_done)

    def link_utilization(self, node_id: int) -> float:
        """Utilization of one node's output link."""
        return self._links[node_id].utilization()
