"""Ports and capabilities — Amoeba-style service naming.

Amoeba names services by *ports* and protects objects with sparse
*capabilities*.  The reproduction only needs enough of this to give RPC
services and shared objects unforgeable, collision-free names, so a port is a
derived 48-bit identifier and a capability pairs a port with an object number
and a rights mask.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass

_port_counter = itertools.count(1)


@dataclass(frozen=True)
class Port:
    """A service port: the get-port (private) and put-port (public) pair."""

    name: str
    private: int
    public: int

    def __str__(self) -> str:
        return f"port:{self.name}:{self.public:012x}"


def _one_way(value: int) -> int:
    """The one-way function mapping a get-port to its put-port."""
    digest = hashlib.sha256(value.to_bytes(8, "big")).digest()
    return int.from_bytes(digest[:6], "big")


def new_port(name: str, seed: int = 0) -> Port:
    """Create a fresh port for the service ``name``.

    Ports are deterministic given (name, seed, creation order), which keeps
    simulation runs reproducible.
    """
    counter = next(_port_counter)
    private_digest = hashlib.sha256(f"{seed}:{name}:{counter}".encode()).digest()
    private = int.from_bytes(private_digest[:6], "big")
    return Port(name=name, private=private, public=_one_way(private))


@dataclass(frozen=True)
class Capability:
    """A capability granting ``rights`` on object ``obj_number`` of a service."""

    port: Port
    obj_number: int
    rights: int = 0xFF

    RIGHT_READ = 0x01
    RIGHT_WRITE = 0x02
    RIGHT_DESTROY = 0x04

    def restrict(self, rights: int) -> "Capability":
        """Return a capability with a subset of this capability's rights."""
        return Capability(self.port, self.obj_number, self.rights & rights)

    def allows(self, rights: int) -> bool:
        """True if every right in ``rights`` is present in this capability."""
        return (self.rights & rights) == rights
