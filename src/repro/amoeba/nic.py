"""Per-node network interfaces.

The NIC receives packets from the network, charges the node for the receive
interrupt, reassembles fragmented messages, charges protocol-processing time
for each complete message, and finally hands the message to the node's
dispatcher.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional

from .message import Message
from .network import Packet
from .transport import TransportEndpoint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .network import BaseNetwork
    from .node import Node


@dataclass
class NicStats:
    """Receive-side statistics for one NIC."""

    interrupts: int = 0
    packets_received: int = 0
    messages_received: int = 0
    bytes_received: int = 0
    packets_discarded: int = 0


class NetworkInterface(TransportEndpoint):
    """Receive-side model of a node's network adapter.

    This is the simulated backend's :class:`TransportEndpoint`: packets are
    reassembled and the receive-interrupt/protocol CPU cost is charged before
    the complete message reaches the node's dispatcher via :meth:`deliver`.
    """

    def __init__(self, node: "Node") -> None:
        self.node = node
        self.node_id = node.node_id
        self.network: Optional["BaseNetwork"] = None
        self.stats = NicStats()
        #: Partially reassembled messages keyed by message id.
        self._partial: Dict[int, int] = {}
        #: Failure-injection hook: when set, packets for which it returns
        #: True are silently dropped before reaching the node (targeted loss,
        #: unlike the network's probabilistic ``loss_rate``).
        self.drop_filter: Optional[Callable[[Packet], bool]] = None

    def receive_packet(self, packet: Packet) -> None:
        """Handle one packet arriving from the network (kernel context)."""
        node = self.node
        if not node.alive:
            self.stats.packets_discarded += 1
            return
        if self.drop_filter is not None and self.drop_filter(packet):
            self.stats.packets_discarded += 1
            return
        cpu = node.cost_model.cpu
        # Every packet interrupts the receiving CPU.
        self.stats.interrupts += 1
        self.stats.packets_received += 1
        self.stats.bytes_received += packet.payload_bytes
        node.charge_overhead(cpu.interrupt_cost)

        if packet.count == 1:
            self._complete(packet.message)
            return
        received = self._partial.get(packet.message.msg_id, 0) + 1
        if received >= packet.count:
            self._partial.pop(packet.message.msg_id, None)
            self._complete(packet.message)
        else:
            self._partial[packet.message.msg_id] = received

    def _complete(self, msg: Message) -> None:
        node = self.node
        self.stats.messages_received += 1
        node.charge_overhead(node.cost_model.cpu.protocol_cost)
        if node.sim.tracer.enabled:
            # Guarded: the f-string below is per-delivery hot-path work.
            node.sim.trace(
                "net.deliver",
                f"node {node.node_id} received {msg.kind}",
                msg_id=msg.msg_id,
                src=msg.src,
                size=msg.size,
            )
        node.dispatch(msg)

    def deliver(self, msg: Message) -> None:
        """Transport-seam entry: hand one complete message to the node."""
        self._complete(msg)

    def drop_partial_state(self) -> None:
        """Forget all partially reassembled messages (used on node crash)."""
        self._partial.clear()
