"""Remote procedure call between threads on different nodes.

The Amoeba microkernel lets any thread communicate transparently with any
other thread through RPC.  The reproduction models the standard
request/processing/reply cycle:

* the client thread flushes its pending compute time, sends a request
  message and blocks;
* the server node receives the request (paying interrupt and protocol
  costs), runs the registered handler — either directly in event context for
  non-blocking handlers or in a freshly spawned server thread when the
  handler may block — and sends the reply;
* the client absorbs its node's accumulated overhead and resumes with the
  reply value.

Handlers receive an :class:`RpcRequest` and return the reply payload (or a
``(payload, size)`` tuple to override the reply's size estimate).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple

from ..errors import RpcError, RpcPeerDeadError, RpcTimeoutError
from .message import Message, estimate_size

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.process import SimProcess
    from .node import Node

_rpc_ids = itertools.count(1)

REQUEST_KIND = "rpc.request"
REPLY_KIND = "rpc.reply"


@dataclass
class RpcRequest:
    """What a service handler sees for one incoming call."""

    rpc_id: int
    port: str
    client_node: int
    server_node: int
    payload: Any
    size: int


@dataclass
class RpcReply:
    """Wrapper a handler may return to control the reply's simulated size."""

    payload: Any
    size: int


@dataclass
class _PendingCall:
    process: "SimProcess"
    server_node: int = -1
    timeout_timer: Optional[int] = None
    reply: Any = None
    completed: bool = False
    timed_out: bool = False
    peer_dead: bool = False


class RpcEndpoint:
    """Per-node RPC engine: client stubs plus the service dispatch table."""

    def __init__(self, node: "Node") -> None:
        self.node = node
        self.sim = node.sim
        self._services: Dict[str, Tuple[Callable[[RpcRequest], Any], bool, float]] = {}
        self._pending: Dict[int, _PendingCall] = {}
        self.calls_made = 0
        self.calls_served = 0
        node.register_handler(REQUEST_KIND, self._on_request)
        node.register_handler(REPLY_KIND, self._on_reply)

    # ------------------------------------------------------------------ #
    # Server side
    # ------------------------------------------------------------------ #

    def register_service(
        self,
        port: str,
        handler: Callable[[RpcRequest], Any],
        may_block: bool = False,
        service_cost: float = 0.0,
    ) -> None:
        """Register ``handler`` for calls addressed to ``port`` on this node.

        ``may_block`` selects whether the handler runs in a dedicated server
        thread (allowing it to use blocking primitives) or directly in event
        context.  ``service_cost`` is CPU time charged to the node per call.
        """
        if port in self._services:
            raise RpcError(f"node {self.node.node_id} already serves port {port!r}")
        self._services[port] = (handler, may_block, service_cost)

    def unregister_service(self, port: str) -> None:
        self._services.pop(port, None)

    def _on_request(self, msg: Message) -> None:
        port = msg.headers["port"]
        entry = self._services.get(port)
        if entry is None:
            self._send_reply(msg, error=f"no service {port!r} on node {self.node.node_id}")
            return
        handler, may_block, service_cost = entry
        request = RpcRequest(
            rpc_id=msg.headers["rpc_id"],
            port=port,
            client_node=msg.src,
            server_node=self.node.node_id,
            payload=msg.payload,
            size=msg.size,
        )
        if service_cost:
            self.node.charge_overhead(service_cost)
        self.calls_served += 1
        if may_block:
            self.node.kernel.spawn_thread(
                self._run_handler_blocking,
                handler,
                request,
                msg,
                name=f"rpc:{port}",
                daemon=True,
            )
        else:
            self._run_handler_inline(handler, request, msg)

    def _run_handler_inline(
        self, handler: Callable[[RpcRequest], Any], request: RpcRequest, msg: Message
    ) -> None:
        try:
            result = handler(request)
        except Exception as exc:  # noqa: BLE001 - surfaced to the caller
            self._send_reply(msg, error=f"{type(exc).__name__}: {exc}")
            return
        self._send_reply(msg, result=result)

    def _run_handler_blocking(
        self, handler: Callable[[RpcRequest], Any], request: RpcRequest, msg: Message
    ) -> None:
        try:
            result = handler(request)
        except Exception as exc:  # noqa: BLE001 - surfaced to the caller
            self._send_reply(msg, error=f"{type(exc).__name__}: {exc}")
            return
        self._send_reply(msg, result=result)

    def _send_reply(
        self, request_msg: Message, result: Any = None, error: Optional[str] = None
    ) -> None:
        payload, size = result, 0
        if isinstance(result, RpcReply):
            payload, size = result.payload, result.size
        reply = Message(
            src=self.node.node_id,
            dst=request_msg.src,
            kind=REPLY_KIND,
            payload=payload,
            size=size if size > 0 else max(1, estimate_size(payload)),
            headers={"rpc_id": request_msg.headers["rpc_id"], "error": error,},
        )
        self.node.send(reply)

    # ------------------------------------------------------------------ #
    # Client side
    # ------------------------------------------------------------------ #

    def call(
        self,
        proc: "SimProcess",
        server_node: int,
        port: str,
        payload: Any = None,
        size: int = 0,
        timeout: Optional[float] = None,
    ) -> Any:
        """Perform a blocking RPC from ``proc`` to ``port`` on ``server_node``.

        Local calls (``server_node`` equal to this node) still pay the
        operation dispatch cost but skip the network entirely.
        """
        rpc_id = next(_rpc_ids)
        self.calls_made += 1
        cpu = self.node.cost_model.cpu

        if server_node == self.node.node_id:
            # Local fast path: no network, just dispatch cost.
            entry = self._services.get(port)
            if entry is None:
                raise RpcError(f"no service {port!r} on node {self.node.node_id}")
            handler, _may_block, service_cost = entry
            proc.advance(cpu.operation_dispatch_cost + service_cost)
            request = RpcRequest(
                rpc_id,
                port,
                self.node.node_id,
                self.node.node_id,
                payload,
                size or max(1, estimate_size(payload)),
            )
            result = handler(request)
            if isinstance(result, RpcReply):
                return result.payload
            return result

        if self.node.network is not None and not self.node.network.peer_alive(server_node):
            # The failure detector already knows the server is down: fail
            # fast instead of parking on a reply that cannot come.
            raise RpcPeerDeadError(
                f"RPC {port!r} from node {self.node.node_id} refused: "
                f"node {server_node} is crashed"
            )
        pending = _PendingCall(process=proc, server_node=server_node)
        self._pending[rpc_id] = pending
        request = Message(
            src=self.node.node_id,
            dst=server_node,
            kind=REQUEST_KIND,
            payload=payload,
            size=size,
            headers={"rpc_id": rpc_id, "port": port},
        )
        proc.advance(cpu.operation_dispatch_cost)
        proc.absorb_overhead(self.node.drain_overhead())
        proc.flush()
        if timeout is not None:
            pending.timeout_timer = self.node.kernel.set_timer(timeout, self._on_timeout, rpc_id)
        self.node.send(request)
        proc.suspend()
        self._pending.pop(rpc_id, None)
        if pending.timed_out:
            raise RpcTimeoutError(
                f"RPC {port!r} from node {self.node.node_id} to node {server_node} timed out"
            )
        if pending.peer_dead:
            raise RpcPeerDeadError(
                f"RPC {port!r} from node {self.node.node_id} failed: " f"node {server_node} crashed"
            )
        proc.absorb_overhead(self.node.drain_overhead())
        error = pending.reply.headers.get("error")
        if error:
            raise RpcError(error)
        return pending.reply.payload

    def _on_reply(self, msg: Message) -> None:
        pending = self._pending.get(msg.headers["rpc_id"])
        if pending is None or pending.completed:
            return
        pending.completed = True
        pending.reply = msg
        if pending.timeout_timer is not None:
            self.node.kernel.cancel_timer(pending.timeout_timer)
        pending.process.wake()

    def _on_timeout(self, rpc_id: int) -> None:
        pending = self._pending.get(rpc_id)
        if pending is None or pending.completed:
            return
        pending.completed = True
        pending.timed_out = True
        pending.process.wake()

    def pending_to(self, server_node: int) -> int:
        """Outstanding calls from this endpoint addressed to ``server_node``.

        A planned drain waits for this to reach zero everywhere before
        retiring the machine, so no client ever sees a dead-peer failure.
        """
        return sum(
            1
            for pending in self._pending.values()
            if pending.server_node == server_node and not pending.completed
        )

    def fail_pending_to(self, server_node: int) -> None:
        """Fail every outstanding call addressed to a crashed server.

        The cluster invokes this from its node-crash listeners, acting as
        the failure detector: a blocked client is woken and its ``call``
        raises :class:`~repro.errors.RpcPeerDeadError`, so protocol layers
        can re-route the request (e.g. to a recovered primary copy) instead
        of waiting forever on a machine that will never reply.
        """
        if not self.node.alive:
            # This endpoint's own machine is dead: its parked processes
            # died with it and must not be resurrected by another node's
            # crash notification.
            return
        for pending in list(self._pending.values()):
            if pending.server_node != server_node or pending.completed:
                continue
            pending.completed = True
            pending.peer_dead = True
            if pending.timeout_timer is not None:
                self.node.kernel.cancel_timer(pending.timeout_timer)
            pending.process.wake()
