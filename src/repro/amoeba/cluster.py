"""Cluster assembly: simulator + network + nodes + communication services.

:class:`Cluster` is the convenience object the runtime systems, applications
and benchmarks build on.  It wires together a simulator, an interconnect, the
requested number of processor-pool nodes (each with its RPC endpoint), and —
when the interconnect supports it — one totally-ordered broadcast group
spanning all nodes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..config import ClusterConfig
from ..errors import ConfigurationError
from ..sim.kernel import Simulator
from .network import BaseNetwork, EthernetNetwork, SwitchedNetwork
from .node import Node
from .rpc import RpcEndpoint


class Cluster:
    """A simulated Amoeba processor pool.

    Parameters
    ----------
    config:
        The cluster configuration (node count, cost model, seed, tracing).
    network_type:
        ``"ethernet"`` (shared medium with hardware broadcast — the paper's
        testbed) or ``"switched"`` (point-to-point only).
    """

    def __init__(
        self, config: Optional[ClusterConfig] = None, network_type: str = "ethernet"
    ) -> None:
        self.config = config or ClusterConfig()
        self.cost_model = self.config.cost_model
        self.sim = Simulator(
            seed=self.config.seed,
            trace=self.config.trace,
            work_unit_time=self.cost_model.cpu.work_unit_time,
        )
        self.network = self._build_network(network_type)
        self.nodes: List[Node] = [
            Node(self.sim, node_id, self.cost_model, network=self.network)
            for node_id in range(self.config.num_nodes)
        ]
        self.rpc: Dict[int, RpcEndpoint] = {node.node_id: RpcEndpoint(node) for node in self.nodes}
        # Failure detection: a node crash fails every RPC still waiting on
        # that machine, cluster-wide, so callers observe the death instead
        # of blocking on a reply that cannot come.  (The stand-in for the
        # failure-detector service a real cluster membership layer runs.)
        for node in self.nodes:
            node.on_crash(lambda nid=node.node_id: self._on_node_crash(nid))
        #: Every broadcast group created on this cluster, by group id.  Group
        #: 0 is the classic cluster-wide group; the sharding layer adds more.
        self.broadcast_groups: Dict[int, Any] = {}

    def _on_node_crash(self, crashed: int) -> None:
        for endpoint in self.rpc.values():
            endpoint.fail_pending_to(crashed)

    def _build_network(self, network_type: str) -> BaseNetwork:
        if network_type == "ethernet":
            return EthernetNetwork(self.sim, self.cost_model.network)
        if network_type == "switched":
            return SwitchedNetwork(self.sim, self.cost_model.network)
        raise ConfigurationError(f"unknown network type {network_type!r}")

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def rpc_for(self, node_id: int) -> RpcEndpoint:
        return self.rpc[node_id]

    @property
    def broadcast_group(self):
        """The cluster-wide totally-ordered broadcast group (created lazily)."""
        if 0 not in self.broadcast_groups:
            self.new_broadcast_group()
        return self.broadcast_groups[0]

    def new_broadcast_group(self, sequencer_node_id: Optional[int] = None, params: Any = None):
        """Create an additional totally-ordered broadcast group.

        Each group gets the next free group id; its wire traffic is
        namespaced by that id, so groups order, recover and elect
        independently.  ``sequencer_node_id`` picks the initial sequencer
        seat (the sharding layer spreads seats round-robin over the nodes).

        Groups can be added while the cluster runs: every node's member
        endpoint joins (and registers the group's wire-kind namespace)
        immediately, so live scale-out of the shard set needs no restart.
        The only requirement is a live machine for the initial seat.
        """
        from .broadcast.group import BroadcastGroup  # deferred import

        seat = self.nodes[0].node_id if sequencer_node_id is None else sequencer_node_id
        if not 0 <= seat < len(self.nodes):
            raise ConfigurationError(f"node {seat} does not exist; cannot host a sequencer seat")
        if not self.nodes[seat].alive:
            raise ConfigurationError(f"node {seat} is crashed and cannot host a new sequencer seat")
        group_id = len(self.broadcast_groups)
        group = BroadcastGroup(self, params=params, group_id=group_id, sequencer_node_id=seat)
        self.broadcast_groups[group_id] = group
        return group

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #

    def run(self, **kwargs: Any) -> float:
        """Run the cluster's simulator until its event queue drains."""
        return self.sim.run(**kwargs)

    def shutdown(self) -> None:
        """Kill remaining processes and reclaim their threads."""
        self.sim.shutdown()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    def total_interrupts(self) -> int:
        """Sum of receive interrupts over all nodes."""
        return sum(node.nic.stats.interrupts for node in self.nodes)

    def total_overhead_time(self) -> float:
        """Sum of protocol-processing CPU time charged across all nodes."""
        return sum(node.stats.overhead_time for node in self.nodes)

    def network_summary(self) -> Dict[str, Any]:
        """A compact dictionary of traffic statistics for reports."""
        stats = self.network.stats
        return {
            "messages": stats.messages_sent,
            "broadcasts": stats.broadcast_messages,
            "unicasts": stats.unicast_messages,
            "packets": stats.packets_sent,
            "payload_bytes": stats.payload_bytes,
            "wire_bytes": stats.wire_bytes,
            "dropped_packets": stats.packets_dropped,
            "interrupts": self.total_interrupts(),
        }
