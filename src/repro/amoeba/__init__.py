"""The Amoeba-like distributed substrate.

This package simulates the parts of the Amoeba microkernel that the shared
data-object runtime systems rely on:

* :mod:`repro.amoeba.network` — the interconnect (a shared-medium Ethernet
  model with hardware broadcast, and a switched point-to-point variant);
* :mod:`repro.amoeba.nic` — per-node network interfaces with interrupt and
  protocol-processing costs;
* :mod:`repro.amoeba.node` / :mod:`repro.amoeba.kernel` — processor-pool
  nodes running a per-node microkernel (threads, segments, ports);
* :mod:`repro.amoeba.rpc` — transparent remote procedure call;
* :mod:`repro.amoeba.broadcast` — the PB/BB totally-ordered reliable
  broadcast protocols built around a sequencer.
"""

from .cluster import Cluster
from .message import Message, estimate_size
from .network import EthernetNetwork, SwitchedNetwork
from .node import Node

__all__ = [
    "Cluster",
    "Message",
    "estimate_size",
    "EthernetNetwork",
    "SwitchedNetwork",
    "Node",
]
