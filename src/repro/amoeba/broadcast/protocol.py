"""Protocol-independent pieces of the group-communication layer.

This module holds the wire-format constants, the per-member
:class:`OrderingEngine` that turns an unordered stream of sequenced messages
into in-order deliveries (buffering out-of-order arrivals and reporting
gaps), and the bookkeeping records for in-flight sends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

# Message kinds used on the wire -------------------------------------------------

#: PB: sender -> sequencer, full data.
KIND_REQUEST = "grp.request"
#: Sequencer -> all, full data with assigned sequence number (PB path,
#: retransmissions, and new-sequencer announcements of reordered data).
KIND_DATA = "grp.data"
#: BB: sender -> all, full data without a sequence number yet.
KIND_BB_DATA = "grp.bbdata"
#: Sequencer -> all, short accept assigning a sequence number to a BB message.
KIND_ACCEPT = "grp.accept"
#: Member -> sequencer, request retransmission of a missing sequence number.
KIND_RETRANSMIT_REQ = "grp.retransmit_req"
#: Sequencer -> member, retransmitted data (unicast).
KIND_RETRANSMIT = "grp.retransmit"
#: Sequencer -> all, short idle-time heartbeat carrying the highest assigned
#: sequence number so members can detect a lost tail message.
KIND_SYNC = "grp.sync"
#: Election: candidate announcement.
KIND_ELECTION = "grp.election"
#: Election: the winner announces itself as the new sequencer.
KIND_COORDINATOR = "grp.coordinator"

#: Size, in bytes, of the short control messages (Accept, retransmit request,
#: election traffic).  The paper calls the Accept "a very short message".
CONTROL_MESSAGE_SIZE = 32


@dataclass(frozen=True)
class MessageId:
    """Globally unique id of one application broadcast: (origin node, counter)."""

    origin: int
    counter: int


@dataclass
class SendRecord:
    """Book-keeping for one broadcast this member has initiated."""

    uid: MessageId
    payload: Any
    size: int
    method: str  # "pb" or "bb"
    attempts: int = 0
    delivered: bool = False
    retry_timer: Optional[int] = None
    on_delivered: Optional[Callable[[int], None]] = None


@dataclass(frozen=True)
class DeliveredMessage:
    """One message as handed to the application delivery handler."""

    seqno: int
    origin: int
    uid: MessageId
    payload: Any
    size: int


@dataclass
class OrderingEngine:
    """Turns sequenced-but-unordered arrivals into strict in-order delivery.

    The engine is purely local state: it never touches the network.  The
    owning :class:`~repro.amoeba.broadcast.group.GroupMember` feeds it with
    ``offer`` (data carrying a sequence number) and ``offer_accept`` /
    ``offer_bb_data`` (for the BB path where data and ordering arrive
    separately), and asks for deliverable messages plus the set of missing
    sequence numbers it should re-request.
    """

    #: Next sequence number to deliver to the application.
    next_expected: int = 1
    #: Sequenced messages waiting for their predecessors.
    _ordered_buffer: Dict[int, DeliveredMessage] = field(default_factory=dict)
    #: BB data received but not yet sequenced, keyed by uid.
    _unordered_data: Dict[MessageId, Tuple[Any, int]] = field(default_factory=dict)
    #: Accepts received whose data has not arrived yet: seqno -> uid.
    _pending_accepts: Dict[int, MessageId] = field(default_factory=dict)
    #: Sequence numbers already delivered (for duplicate suppression).
    delivered_count: int = 0
    #: Duplicates discarded.
    duplicates: int = 0
    #: Highest sequence number announced by the sequencer (sync heartbeats),
    #: which may exceed anything received so far if the tail was lost.
    announced_highest: int = 0

    # -- feeding ----------------------------------------------------------- #

    def offer(self, seqno: int, origin: int, uid: MessageId, payload: Any, size: int) -> None:
        """Offer a fully sequenced data message (PB data or a retransmission)."""
        if seqno < self.next_expected or seqno in self._ordered_buffer:
            self.duplicates += 1
            return
        self._ordered_buffer[seqno] = DeliveredMessage(seqno, origin, uid, payload, size)
        self._pending_accepts.pop(seqno, None)

    def offer_bb_data(self, origin: int, uid: MessageId, payload: Any, size: int) -> None:
        """Offer BB data that does not carry a sequence number yet."""
        # If the accept already arrived, the seqno is known; promote directly.
        for seqno, pending_uid in list(self._pending_accepts.items()):
            if pending_uid == uid:
                del self._pending_accepts[seqno]
                self.offer(seqno, origin, uid, payload, size)
                return
        if uid not in self._unordered_data:
            self._unordered_data[uid] = (payload, size)
        else:
            self.duplicates += 1

    def offer_accept(self, seqno: int, origin: int, uid: MessageId) -> bool:
        """Offer an Accept for a BB message.

        Returns True if the corresponding data was already present (so the
        message is now sequenced), False if the data is still missing.
        """
        if seqno < self.next_expected or seqno in self._ordered_buffer:
            self.duplicates += 1
            return True
        if uid in self._unordered_data:
            payload, size = self._unordered_data.pop(uid)
            self.offer(seqno, origin, uid, payload, size)
            return True
        self._pending_accepts[seqno] = uid
        return False

    # -- draining ---------------------------------------------------------- #

    def pop_deliverable(self) -> List[DeliveredMessage]:
        """Remove and return every message that can now be delivered in order."""
        out: List[DeliveredMessage] = []
        while self.next_expected in self._ordered_buffer:
            msg = self._ordered_buffer.pop(self.next_expected)
            out.append(msg)
            self.next_expected += 1
            self.delivered_count += 1
        return out

    def fast_forward(self, seqno: int) -> None:
        """Skip delivery forward so ``seqno`` is the next message delivered.

        Used by the rejoin catch-up: a recovered member is seeded with a
        state snapshot that already covers everything sequenced before its
        rejoin anchor, so the history before the anchor must never be
        delivered (it would double-apply against the snapshot).
        """
        if seqno <= self.next_expected:
            return
        for buffered in [s for s in self._ordered_buffer if s < seqno]:
            del self._ordered_buffer[buffered]
        for pending in [s for s in self._pending_accepts if s < seqno]:
            del self._pending_accepts[pending]
        self.next_expected = seqno

    def note_highest(self, seqno: int) -> None:
        """Record that sequence numbers up to ``seqno`` exist (sync heartbeat)."""
        if seqno > self.announced_highest:
            self.announced_highest = seqno

    def missing_seqnos(self) -> List[int]:
        """Sequence numbers up to the highest known that have not arrived."""
        highest = self.highest_known_seqno
        if highest < self.next_expected:
            return []
        return [
            seqno
            for seqno in range(self.next_expected, highest + 1)
            if seqno not in self._ordered_buffer
        ]

    @property
    def highest_known_seqno(self) -> int:
        """The largest sequence number this member has evidence of."""
        candidates = [self.next_expected - 1, self.announced_highest]
        if self._ordered_buffer:
            candidates.append(max(self._ordered_buffer))
        if self._pending_accepts:
            candidates.append(max(self._pending_accepts))
        return max(candidates)

    @property
    def buffered_count(self) -> int:
        return len(self._ordered_buffer)

    def buffered_messages(self) -> List[DeliveredMessage]:
        """Sequenced-but-undelivered messages (used for sequencer recovery)."""
        return list(self._ordered_buffer.values())
