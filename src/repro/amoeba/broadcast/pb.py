"""The PB (Point-to-point, then Broadcast) send path.

The sender ships the full message to the sequencer as a point-to-point
message; the sequencer assigns the next sequence number and broadcasts the
data.  The message therefore consumes roughly ``2·m`` bytes of network
bandwidth, but each user machine is interrupted only once (for the ordered
broadcast).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .protocol import KIND_REQUEST, SendRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .group import GroupMember


class PBStrategy:
    """Send-side behaviour of the PB protocol."""

    name = "pb"

    def send(self, member: "GroupMember", record: SendRecord) -> bool:
        """Transmit ``record`` toward the sequencer.

        Returns True when the retry timer will be armed by the network's
        ``on_sent`` callback (i.e. once the request has left the wire), False
        when the caller must arm it itself.
        """
        record.attempts += 1
        group = member.group
        sequencer_node = group.sequencer_node_id
        if member.node_id == sequencer_node:
            # The sender *is* the sequencer: skip the network hop entirely.
            group.sequencer.handle_pb_request(
                member.node_id, record.uid, record.payload, record.size
            )
            return False
        msg = member.node.make_message(
            sequencer_node,
            group.wire_kind(KIND_REQUEST),
            payload=record.payload,
            size=record.size,
            uid=(record.uid.origin, record.uid.counter),
        )
        member.node.send(msg, on_sent=lambda _msg: member._arm_retry(record))
        return True
