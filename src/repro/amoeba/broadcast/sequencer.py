"""The sequencer: assigns the global total order and answers retransmissions.

One node of the broadcast group acts as the sequencer ("like a committee
electing a chairman").  For the PB protocol it receives the full data from
the sender and broadcasts it with the next sequence number; for the BB
protocol it observes the sender's own broadcast and broadcasts a short
Accept.  All sequenced messages are retained in a bounded *history buffer*
from which missing messages are retransmitted point-to-point on request.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Deque, Dict, Optional, Tuple

from .protocol import (
    CONTROL_MESSAGE_SIZE,
    KIND_ACCEPT,
    KIND_DATA,
    KIND_RETRANSMIT,
    KIND_SYNC,
    MessageId,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..node import Node
    from .group import BroadcastGroup


@dataclass
class HistoryEntry:
    """One sequenced message retained for retransmission."""

    seqno: int
    origin: int
    uid: MessageId
    payload: Any
    size: int


class Sequencer:
    """Sequencer state machine, hosted on one node of the group."""

    def __init__(self, group: "BroadcastGroup", node: "Node") -> None:
        self.group = group
        self.node = node
        self.next_seq = 1
        self.history_size = group.params.history_size
        self._history: "OrderedDict[int, HistoryEntry]" = OrderedDict()
        #: uid -> seqno, for duplicate suppression when senders retry.
        self._assigned: Dict[MessageId, int] = {}
        self.requests_handled = 0
        self.retransmissions = 0
        self.duplicates_suppressed = 0
        self.sync_broadcasts = 0
        #: FIFO of sequenced messages awaiting their ordered (re)broadcast:
        #: the sequencer is a queueing server with ``sequencing_cost`` service
        #: time per message, which is what gives a lone sequencer a hard
        #: throughput ceiling (and sharding something real to break).
        self._service_queue: Deque[Tuple[HistoryEntry, bool]] = deque()
        self._service_timer: Optional[int] = None
        self.max_queue_depth = 0
        self._sync_timer: Optional[int] = None
        self._sync_remaining = 0
        #: Number of idle-time sync heartbeats sent after the last sequenced
        #: message (bounded so the simulation's event queue can drain).
        self.sync_repeats = 5

    # ------------------------------------------------------------------ #
    # Sequencing
    # ------------------------------------------------------------------ #

    def handle_pb_request(self, origin: int, uid: MessageId, payload: Any, size: int) -> None:
        """PB path: sender shipped us the data point-to-point; order and broadcast it."""
        self.requests_handled += 1
        existing = self._assigned.get(uid)
        if existing is not None:
            # A retry of a message we already sequenced: rebroadcast the data
            # so whoever missed it (including possibly the sender) catches up.
            self.duplicates_suppressed += 1
            entry = self._history.get(existing)
            if entry is not None:
                self._dispatch_broadcast(entry, accept=False)
            return
        entry = self._record(origin, uid, payload, size)
        self._dispatch_broadcast(entry, accept=False)

    def handle_bb_data(self, origin: int, uid: MessageId, payload: Any, size: int) -> None:
        """BB path: the data was broadcast by the sender; assign a number and Accept it."""
        self.requests_handled += 1
        existing = self._assigned.get(uid)
        if existing is not None:
            self.duplicates_suppressed += 1
            entry = self._history.get(existing)
            if entry is not None:
                self._dispatch_broadcast(entry, accept=True)
            return
        entry = self._record(origin, uid, payload, size)
        self._dispatch_broadcast(entry, accept=True)

    # ------------------------------------------------------------------ #
    # Service queue (the sequencer's own processing capacity)
    # ------------------------------------------------------------------ #

    def _dispatch_broadcast(self, entry: HistoryEntry, accept: bool) -> None:
        """Send — or queue — the ordered (re)broadcast of ``entry``.

        With ``sequencing_cost`` at 0 (the calibrated default) the broadcast
        leaves immediately.  Otherwise sequence numbers are still assigned
        at arrival (the order is fixed), but the broadcast leaves only
        after the sequencer has *worked* on the message for
        ``sequencing_cost`` virtual seconds; messages arriving faster than
        that rate queue up — the single-sequencer throughput ceiling the
        sharding layer exists to break.

        The same ``sequencing_cost`` is also charged to the node as CPU
        overhead (see :meth:`_record`): one unit of ordering work both
        delays the message pipeline *and* steals CPU from co-located
        application processes.  That approximates a single CPU shared by
        the protocol and the applications without a full scheduler model;
        it is applied identically at every shard count, so cross-shard
        comparisons remain apples-to-apples.
        """
        if self.node.cost_model.cpu.sequencing_cost <= 0.0:
            if accept:
                self._broadcast_accept(entry)
            else:
                self._broadcast_data(entry)
            return
        self._service_queue.append((entry, accept))
        depth = len(self._service_queue)
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth
        if self._service_timer is None:
            self._service_timer = self.node.kernel.set_timer(
                self.node.cost_model.cpu.sequencing_cost, self._serve_next
            )

    def retire(self) -> None:
        """Stop serving: another sequencer has taken over this group.

        A dethroned-but-alive sequencer must not keep broadcasting queued
        entries — their sequence numbers get reassigned by the successor,
        and two payloads under one seqno would break total order.  Senders
        whose messages die with the queue recover through their own
        retries against the new sequencer.
        """
        if self._service_timer is not None:
            self.node.kernel.cancel_timer(self._service_timer)
            self._service_timer = None
        self._service_queue.clear()
        if self._sync_timer is not None:
            self.node.kernel.cancel_timer(self._sync_timer)
            self._sync_timer = None

    def _serve_next(self) -> None:
        self._service_timer = None
        if self.group.sequencer is not self:
            # Superseded while the timer was in flight.
            self._service_queue.clear()
            return
        if self._service_queue:
            entry, accept = self._service_queue.popleft()
            if accept:
                self._broadcast_accept(entry)
            else:
                self._broadcast_data(entry)
        # The broadcast's local delivery can re-enter _enqueue_broadcast
        # (e.g. a batcher flushing on delivery), which may have re-armed the
        # service timer already.
        if self._service_queue and self._service_timer is None:
            self._service_timer = self.node.kernel.set_timer(
                self.node.cost_model.cpu.sequencing_cost, self._serve_next
            )

    def _record(self, origin: int, uid: MessageId, payload: Any, size: int) -> HistoryEntry:
        seqno = self.next_seq
        self.next_seq += 1
        entry = HistoryEntry(seqno, origin, uid, payload, size)
        self._assigned[uid] = seqno
        self._history[seqno] = entry
        while len(self._history) > self.history_size:
            old_seq, old_entry = self._history.popitem(last=False)
            self._assigned.pop(old_entry.uid, None)
        # Charge the sequencer CPU for ordering work beyond the plain receive:
        # number assignment, history-buffer retention, flow control.  Under
        # the queueing model (sequencing_cost > 0) this is the service time
        # that makes a lone sequencer the cluster-wide write ceiling (and
        # what sharding over several groups spreads out).
        cpu = self.node.cost_model.cpu
        self.node.charge_overhead(
            cpu.sequencing_cost if cpu.sequencing_cost > 0.0 else cpu.operation_dispatch_cost
        )
        self._arm_sync()
        return entry

    # ------------------------------------------------------------------ #
    # Idle-time sync heartbeats (tail-loss recovery)
    # ------------------------------------------------------------------ #

    def _arm_sync(self) -> None:
        """(Re)start the bounded heartbeat sequence after sequencing activity.

        Heartbeats exist only to heal *tail* losses (a member missing the very
        last broadcast would otherwise never learn about it), so they are
        suppressed entirely on loss-free networks — this keeps the PB/BB
        bandwidth and interrupt counts exactly as the paper describes them.
        """
        if self.group.cluster.cost_model.network.loss_rate <= 0.0:
            return
        self._sync_remaining = self.sync_repeats
        if self._sync_timer is not None:
            self.node.kernel.cancel_timer(self._sync_timer)
        self._sync_timer = self.node.kernel.set_timer(self.group.retry_timeout, self._send_sync)

    def _send_sync(self) -> None:
        self._sync_timer = None
        if self.highest_assigned <= 0 or self.group.sequencer is not self:
            return
        self.sync_broadcasts += 1
        msg = self.node.make_message(
            None,
            self.group.wire_kind(KIND_SYNC),
            size=CONTROL_MESSAGE_SIZE,
            seqno=self.highest_assigned,
        )
        self.node.send(msg)
        self._sync_remaining -= 1
        if self._sync_remaining > 0:
            self._sync_timer = self.node.kernel.set_timer(self.group.retry_timeout, self._send_sync)

    # ------------------------------------------------------------------ #
    # Outgoing traffic
    # ------------------------------------------------------------------ #

    def _broadcast_data(self, entry: HistoryEntry) -> None:
        msg = self.node.make_message(
            None,
            self.group.wire_kind(KIND_DATA),
            payload=entry.payload,
            size=entry.size,
            seqno=entry.seqno,
            origin=entry.origin,
            uid=(entry.uid.origin, entry.uid.counter),
        )
        self.node.send(msg)
        # Hardware broadcast does not loop back; deliver to the local member directly.
        self.group.member(self.node.node_id).local_sequenced_data(entry)

    def _broadcast_accept(self, entry: HistoryEntry) -> None:
        msg = self.node.make_message(
            None,
            self.group.wire_kind(KIND_ACCEPT),
            payload=None,
            size=CONTROL_MESSAGE_SIZE,
            seqno=entry.seqno,
            origin=entry.origin,
            uid=(entry.uid.origin, entry.uid.counter),
        )
        self.node.send(msg)
        self.group.member(self.node.node_id).local_sequenced_data(entry)

    def handle_retransmit_request(self, requester: int, seqno: int) -> bool:
        """Unicast a missing message back to the member that asked for it.

        Returns True when the request was served from the history buffer,
        False when the message fell outside the (bounded) window — in which
        case a broadcast gap request can still be answered by an ordinary
        member's delivered history.
        """
        entry = self._history.get(seqno)
        if entry is None:
            # Outside the history window; nothing *we* can do (the paper's
            # protocol bounds the window by flow control).
            return False
        # Someone is lagging: keep heartbeating so further tail losses heal.
        self._arm_sync()
        self.retransmissions += 1
        msg = self.node.make_message(
            requester,
            self.group.wire_kind(KIND_RETRANSMIT),
            payload=entry.payload,
            size=entry.size,
            seqno=entry.seqno,
            origin=entry.origin,
            uid=(entry.uid.origin, entry.uid.counter),
        )
        self.node.send(msg)
        return True

    # ------------------------------------------------------------------ #
    # Election support
    # ------------------------------------------------------------------ #

    def adopt_state(self, next_seq: int) -> None:
        """Called on a newly elected sequencer to continue the numbering."""
        self.next_seq = max(self.next_seq, next_seq)

    def adopt_history(self, entries) -> None:
        """Seed the history buffer from the winning member's local state.

        Installed after an election so retransmit requests for messages the
        *old* sequencer ordered can still be answered.  Also re-primes
        duplicate suppression: a sender retrying a message that was already
        sequenced gets the original sequence number rebroadcast instead of a
        second one.
        """
        for entry in sorted(entries, key=lambda e: e.seqno):
            self._history[entry.seqno] = entry
            self._assigned[entry.uid] = entry.seqno
            self.next_seq = max(self.next_seq, entry.seqno + 1)
        while len(self._history) > self.history_size:
            _, old_entry = self._history.popitem(last=False)
            self._assigned.pop(old_entry.uid, None)
        if self._history:
            self._arm_sync()

    @property
    def queue_depth(self) -> int:
        """Messages currently waiting for ordering service.

        Exported (with :attr:`max_queue_depth`, the high-water mark) as the
        load signal that batch-aware flow control and the shard-rebalancing
        planner read: a deep queue means this sequencer is the shard the
        senders should back off from — and the shard the rebalancer should
        move objects away from.
        """
        return len(self._service_queue)

    @property
    def highest_assigned(self) -> int:
        return self.next_seq - 1

    def history_entries(self) -> Dict[int, HistoryEntry]:
        """A copy of the current history (used by tests and state transfer)."""
        return dict(self._history)
