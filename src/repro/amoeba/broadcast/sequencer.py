"""The sequencer: assigns the global total order and answers retransmissions.

One node of the broadcast group acts as the sequencer ("like a committee
electing a chairman").  For the PB protocol it receives the full data from
the sender and broadcasts it with the next sequence number; for the BB
protocol it observes the sender's own broadcast and broadcasts a short
Accept.  All sequenced messages are retained in a bounded *history buffer*
from which missing messages are retransmitted point-to-point on request.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional

from .protocol import (
    CONTROL_MESSAGE_SIZE,
    KIND_ACCEPT,
    KIND_DATA,
    KIND_RETRANSMIT,
    KIND_SYNC,
    MessageId,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..node import Node
    from .group import BroadcastGroup


@dataclass
class HistoryEntry:
    """One sequenced message retained for retransmission."""

    seqno: int
    origin: int
    uid: MessageId
    payload: Any
    size: int


class Sequencer:
    """Sequencer state machine, hosted on one node of the group."""

    def __init__(self, group: "BroadcastGroup", node: "Node") -> None:
        self.group = group
        self.node = node
        self.next_seq = 1
        self.history_size = group.params.history_size
        self._history: "OrderedDict[int, HistoryEntry]" = OrderedDict()
        #: uid -> seqno, for duplicate suppression when senders retry.
        self._assigned: Dict[MessageId, int] = {}
        self.requests_handled = 0
        self.retransmissions = 0
        self.duplicates_suppressed = 0
        self.sync_broadcasts = 0
        self._sync_timer: Optional[int] = None
        self._sync_remaining = 0
        #: Number of idle-time sync heartbeats sent after the last sequenced
        #: message (bounded so the simulation's event queue can drain).
        self.sync_repeats = 5

    # ------------------------------------------------------------------ #
    # Sequencing
    # ------------------------------------------------------------------ #

    def handle_pb_request(self, origin: int, uid: MessageId, payload: Any, size: int) -> None:
        """PB path: sender shipped us the data point-to-point; order and broadcast it."""
        self.requests_handled += 1
        existing = self._assigned.get(uid)
        if existing is not None:
            # A retry of a message we already sequenced: rebroadcast the data
            # so whoever missed it (including possibly the sender) catches up.
            self.duplicates_suppressed += 1
            entry = self._history.get(existing)
            if entry is not None:
                self._broadcast_data(entry)
            return
        entry = self._record(origin, uid, payload, size)
        self._broadcast_data(entry)

    def handle_bb_data(self, origin: int, uid: MessageId, payload: Any, size: int) -> None:
        """BB path: the data was broadcast by the sender; assign a number and Accept it."""
        self.requests_handled += 1
        existing = self._assigned.get(uid)
        if existing is not None:
            self.duplicates_suppressed += 1
            entry = self._history.get(existing)
            if entry is not None:
                self._broadcast_accept(entry)
            return
        entry = self._record(origin, uid, payload, size)
        self._broadcast_accept(entry)

    def _record(self, origin: int, uid: MessageId, payload: Any, size: int) -> HistoryEntry:
        seqno = self.next_seq
        self.next_seq += 1
        entry = HistoryEntry(seqno, origin, uid, payload, size)
        self._assigned[uid] = seqno
        self._history[seqno] = entry
        while len(self._history) > self.history_size:
            old_seq, old_entry = self._history.popitem(last=False)
            self._assigned.pop(old_entry.uid, None)
        # Charge the sequencer CPU for ordering work beyond the plain receive.
        self.node.charge_overhead(self.node.cost_model.cpu.operation_dispatch_cost)
        self._arm_sync()
        return entry

    # ------------------------------------------------------------------ #
    # Idle-time sync heartbeats (tail-loss recovery)
    # ------------------------------------------------------------------ #

    def _arm_sync(self) -> None:
        """(Re)start the bounded heartbeat sequence after sequencing activity.

        Heartbeats exist only to heal *tail* losses (a member missing the very
        last broadcast would otherwise never learn about it), so they are
        suppressed entirely on loss-free networks — this keeps the PB/BB
        bandwidth and interrupt counts exactly as the paper describes them.
        """
        if self.group.cluster.cost_model.network.loss_rate <= 0.0:
            return
        self._sync_remaining = self.sync_repeats
        if self._sync_timer is not None:
            self.node.kernel.cancel_timer(self._sync_timer)
        self._sync_timer = self.node.kernel.set_timer(
            self.group.retry_timeout, self._send_sync
        )

    def _send_sync(self) -> None:
        self._sync_timer = None
        if self.highest_assigned <= 0 or self.group.sequencer is not self:
            return
        self.sync_broadcasts += 1
        msg = self.node.make_message(
            None, KIND_SYNC, size=CONTROL_MESSAGE_SIZE, seqno=self.highest_assigned
        )
        self.node.send(msg)
        self._sync_remaining -= 1
        if self._sync_remaining > 0:
            self._sync_timer = self.node.kernel.set_timer(
                self.group.retry_timeout, self._send_sync
            )

    # ------------------------------------------------------------------ #
    # Outgoing traffic
    # ------------------------------------------------------------------ #

    def _broadcast_data(self, entry: HistoryEntry) -> None:
        msg = self.node.make_message(
            None, KIND_DATA, payload=entry.payload, size=entry.size,
            seqno=entry.seqno, origin=entry.origin,
            uid=(entry.uid.origin, entry.uid.counter),
        )
        self.node.send(msg)
        # Hardware broadcast does not loop back; deliver to the local member directly.
        self.group.member(self.node.node_id).local_sequenced_data(entry)

    def _broadcast_accept(self, entry: HistoryEntry) -> None:
        msg = self.node.make_message(
            None, KIND_ACCEPT, payload=None, size=CONTROL_MESSAGE_SIZE,
            seqno=entry.seqno, origin=entry.origin,
            uid=(entry.uid.origin, entry.uid.counter),
        )
        self.node.send(msg)
        self.group.member(self.node.node_id).local_sequenced_data(entry)

    def handle_retransmit_request(self, requester: int, seqno: int) -> None:
        """Unicast a missing message back to the member that asked for it."""
        entry = self._history.get(seqno)
        if entry is None:
            # Outside the history window; nothing we can do (the paper's
            # protocol bounds the window by flow control, which group
            # benchmarks never exceed).
            return
        # Someone is lagging: keep heartbeating so further tail losses heal.
        self._arm_sync()
        self.retransmissions += 1
        msg = self.node.make_message(
            requester, KIND_RETRANSMIT, payload=entry.payload, size=entry.size,
            seqno=entry.seqno, origin=entry.origin,
            uid=(entry.uid.origin, entry.uid.counter),
        )
        self.node.send(msg)

    # ------------------------------------------------------------------ #
    # Election support
    # ------------------------------------------------------------------ #

    def adopt_state(self, next_seq: int) -> None:
        """Called on a newly elected sequencer to continue the numbering."""
        self.next_seq = max(self.next_seq, next_seq)

    def adopt_history(self, entries) -> None:
        """Seed the history buffer from the winning member's local state.

        Installed after an election so retransmit requests for messages the
        *old* sequencer ordered can still be answered.  Also re-primes
        duplicate suppression: a sender retrying a message that was already
        sequenced gets the original sequence number rebroadcast instead of a
        second one.
        """
        for entry in sorted(entries, key=lambda e: e.seqno):
            self._history[entry.seqno] = entry
            self._assigned[entry.uid] = entry.seqno
            self.next_seq = max(self.next_seq, entry.seqno + 1)
        while len(self._history) > self.history_size:
            _, old_entry = self._history.popitem(last=False)
            self._assigned.pop(old_entry.uid, None)
        if self._history:
            self._arm_sync()

    @property
    def highest_assigned(self) -> int:
        return self.next_seq - 1

    def history_entries(self) -> Dict[int, HistoryEntry]:
        """A copy of the current history (used by tests and state transfer)."""
        return dict(self._history)
