"""Totally-ordered reliable broadcast (the Amoeba group-communication layer).

The paper's runtime relies on a sequencer-based protocol pair:

* **PB** (Point-to-point, then Broadcast): the sender ships the message to the
  sequencer, which assigns the next sequence number and broadcasts it.  The
  message crosses the wire twice (2·m bytes) but interrupts every receiver
  only once.
* **BB** (Broadcast, then Broadcast): the sender broadcasts the message
  itself; the sequencer then broadcasts a short *Accept* carrying the
  sequence number.  Only m bytes of data cross the wire (plus the tiny
  Accept), but every machine is interrupted twice.

The implementation dynamically picks PB for messages of at most one packet
and BB for longer ones, exactly as the paper describes, and recovers from
lost packets via the sequencer's history buffer.  A crashed sequencer is
replaced through an election among the surviving members.
"""

from .group import BroadcastGroup, GroupMember
from .protocol import DeliveredMessage, OrderingEngine
from .sequencer import Sequencer

__all__ = [
    "BroadcastGroup",
    "GroupMember",
    "Sequencer",
    "OrderingEngine",
    "DeliveredMessage",
]
