"""The BB (Broadcast, then Broadcast) send path.

The sender broadcasts the full message itself; when the sequencer sees it, it
broadcasts a short *Accept* message carrying the newly assigned sequence
number.  Only ``m`` bytes of data cross the wire (plus the tiny Accept), but
every machine is interrupted twice: once for the data, once for the Accept.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .protocol import KIND_BB_DATA, SendRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .group import GroupMember


class BBStrategy:
    """Send-side behaviour of the BB protocol."""

    name = "bb"

    def send(self, member: "GroupMember", record: SendRecord) -> bool:
        """Broadcast ``record`` to the whole group (unordered until Accepted).

        Returns True when the retry timer will be armed by the network's
        ``on_sent`` callback (once the data has left the wire), False when
        the caller must arm it itself.
        """
        record.attempts += 1
        group = member.group
        if member.node_id == group.sequencer_node_id:
            # The sequencer broadcasting: it can order its own message
            # immediately; the data still has to reach the other members, so
            # it goes out as an ordered data broadcast instead of data+Accept.
            group.sequencer.handle_pb_request(
                member.node_id, record.uid, record.payload, record.size
            )
            return False
        msg = member.node.make_message(
            None,
            group.wire_kind(KIND_BB_DATA),
            payload=record.payload,
            size=record.size,
            uid=(record.uid.origin, record.uid.counter),
        )
        member.node.send(msg, on_sent=lambda _msg: member._arm_retry(record))
        # The sender keeps its own copy; it will be sequenced when the
        # sequencer's Accept arrives.
        member.engine.offer_bb_data(member.node_id, record.uid, record.payload, record.size)
        return True
