"""Broadcast group membership, send/deliver engine, and sequencer election."""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from ...config import BroadcastParams
from ...errors import BroadcastError
from ..message import Message
from .bb import BBStrategy
from .pb import PBStrategy
from .protocol import (
    CONTROL_MESSAGE_SIZE,
    KIND_ACCEPT,
    KIND_BB_DATA,
    KIND_COORDINATOR,
    KIND_DATA,
    KIND_ELECTION,
    KIND_REQUEST,
    KIND_RETRANSMIT,
    KIND_RETRANSMIT_REQ,
    KIND_SYNC,
    DeliveredMessage,
    MessageId,
    OrderingEngine,
    SendRecord,
)
from .sequencer import HistoryEntry, Sequencer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster import Cluster
    from ..node import Node

DeliveryHandler = Callable[[DeliveredMessage], None]


@dataclass
class GroupStats:
    """Group-wide protocol statistics."""

    pb_sends: int = 0
    bb_sends: int = 0
    retransmit_requests: int = 0
    #: Gap requests answered by an ordinary member (not the sequencer) out of
    #: its local delivered history — the cross-member recovery path.
    peer_retransmissions: int = 0
    elections: int = 0
    deliveries: int = 0
    data_bytes_sent: int = 0
    control_bytes_sent: int = 0
    per_member_deliveries: Dict[int, int] = field(default_factory=dict)


class GroupMember:
    """Per-node endpoint of the totally-ordered broadcast group."""

    def __init__(self, group: "BroadcastGroup", node: "Node") -> None:
        self.group = group
        self.node = node
        self.node_id = node.node_id
        self.engine = OrderingEngine()
        self.delivery_handler: Optional[DeliveryHandler] = None
        #: False between a node's recovery and the completion of its rejoin
        #: catch-up: an unsynced member's delivered history was wiped by the
        #: crash, so it must neither answer gap requests nor chase the gap
        #: between its fresh engine and the group's current seqno (the rejoin
        #: seed covers that span out of band).
        self.synced = True
        #: The uid of this member's in-flight rejoin anchor broadcast: when
        #: it comes back sequenced, delivery fast-forwards to its seqno and
        #: the member is synced again.
        self._anchor_uid: Optional[MessageId] = None
        #: Recently delivered messages, retained so this member can seed a
        #: sequencer history if it wins an election after a crash, and so it
        #: can answer broadcast gap requests from lagging peers.
        self._delivered_history: "OrderedDict[int, HistoryEntry]" = OrderedDict()
        self._send_counter = itertools.count(1)
        self._pending_sends: Dict[MessageId, SendRecord] = {}
        self._gap_timers: Dict[int, int] = {}
        #: Gap-request attempts per missing seqno; after the first unanswered
        #: unicast to the sequencer, requests fall back to a group broadcast.
        self._gap_attempts: Dict[int, int] = {}
        #: Election round bookkeeping: candidate -> highest known seqno.
        self._election_votes: Dict[int, int] = {}
        self._election_timer: Optional[int] = None
        #: When this member last delivered a sequenced message: deliveries
        #: prove the sequencer is alive (merely backlogged), so send retries
        #: keep backing off instead of escalating to an election.
        self._last_delivery_time = node.sim.now
        for kind in (
            KIND_REQUEST,
            KIND_DATA,
            KIND_BB_DATA,
            KIND_ACCEPT,
            KIND_RETRANSMIT_REQ,
            KIND_RETRANSMIT,
            KIND_SYNC,
            KIND_ELECTION,
            KIND_COORDINATOR,
        ):
            node.register_handler(group.wire_kind(kind), self._on_message)
        # A crash loses this member's volatile protocol state; the loss is
        # applied when the node comes back (wiping a dead member changes
        # nothing observable, and the election path still seeds the new
        # sequencer from the best surviving member's history).
        node.on_recover(self.wipe_for_rejoin)

    # ------------------------------------------------------------------ #
    # Sending
    # ------------------------------------------------------------------ #

    def broadcast(
        self,
        payload: object,
        size: int = 0,
        on_delivered: Optional[Callable[[int], None]] = None,
        method: Optional[str] = None,
    ) -> MessageId:
        """Reliably, totally-ordered broadcast ``payload`` to the whole group.

        Returns the message's unique id.  Delivery (including at the sending
        member itself) happens later, through the member's delivery handler;
        ``on_delivered`` additionally fires with the assigned sequence number
        when the sender's own copy is delivered locally.
        """
        if size <= 0:
            from ..message import estimate_size

            size = max(1, estimate_size(payload))
        uid = MessageId(self.node_id, next(self._send_counter))
        chosen = method or self.group.choose_method(size)
        record = SendRecord(
            uid=uid, payload=payload, size=size, method=chosen, on_delivered=on_delivered
        )
        self._pending_sends[uid] = record
        if chosen == "pb":
            self.group.stats.pb_sends += 1
        else:
            self.group.stats.bb_sends += 1
        self.group.stats.data_bytes_sent += size
        self._transmit(record)
        return uid

    def _transmit(self, record: SendRecord) -> None:
        strategy = self.group.strategy(record.method)
        if not strategy.send(self, record):
            # No network transmission to wait for (sequencer-local fast
            # path): arm the retry immediately.
            self._arm_retry(record)

    def _arm_retry(self, record: SendRecord) -> None:
        """(Re)arm the send-retry timer with linear backoff.

        Called when the message has actually left the wire (via the send
        strategies' ``on_sent``), not when it was queued — a bulk sender's
        NIC backlog must not look like a dead sequencer.
        """
        if record.retry_timer is not None:
            self.node.kernel.cancel_timer(record.retry_timer)
        backoff = min(record.attempts, 4)
        record.retry_timer = self.node.kernel.set_timer(
            self.group.retry_timeout * max(1, backoff), self._on_retry_timeout, record.uid
        )

    def _on_retry_timeout(self, uid: MessageId) -> None:
        record = self._pending_sends.get(uid)
        if record is None or record.delivered:
            return
        progressing = (
            self.node.sim.now - self._last_delivery_time < self.group.params.election_timeout
        )
        if record.attempts >= self.group.max_send_attempts and not progressing:
            # No deliveries either: the sequencer is probably gone; try to
            # elect a new one and keep the record pending so it is resent
            # after the election.
            self._start_election()
            record.attempts = 0
            self._arm_retry(record)
            return
        # A busy-but-alive sequencer dedups the retry and rebroadcasts only
        # what was really lost.
        self.group.stats.retransmit_requests += 1
        self._transmit(record)

    # ------------------------------------------------------------------ #
    # Receiving
    # ------------------------------------------------------------------ #

    def _on_message(self, msg: Message) -> None:
        kind = self.group.base_kind(msg.kind)
        if kind == KIND_REQUEST:
            if self.group.sequencer_node_id == self.node_id:
                uid = MessageId(*msg.headers["uid"])
                self.group.sequencer.handle_pb_request(msg.src, uid, msg.payload, msg.size)
            # else: stale request addressed to an old sequencer; drop it.
            return
        if kind == KIND_BB_DATA:
            uid = MessageId(*msg.headers["uid"])
            self.engine.offer_bb_data(msg.src, uid, msg.payload, msg.size)
            if self.group.sequencer_node_id == self.node_id:
                self.group.sequencer.handle_bb_data(msg.src, uid, msg.payload, msg.size)
            self._after_arrival()
            return
        if kind in (KIND_DATA, KIND_RETRANSMIT):
            uid = MessageId(*msg.headers["uid"])
            if self._anchor_uid is not None and uid == self._anchor_uid:
                # The rejoin anchor came back sequenced: everything before it
                # is covered by the seed, so re-enter the order right here.
                self.engine.fast_forward(msg.headers["seqno"])
                self._anchor_uid = None
                self.synced = True
            self.engine.offer(
                msg.headers["seqno"], msg.headers["origin"], uid, msg.payload, msg.size
            )
            self._after_arrival()
            return
        if kind == KIND_ACCEPT:
            uid = MessageId(*msg.headers["uid"])
            self.engine.offer_accept(msg.headers["seqno"], msg.headers["origin"], uid)
            self._after_arrival()
            return
        if kind == KIND_SYNC:
            self.engine.note_highest(msg.headers["seqno"])
            self._after_arrival()
            return
        if kind == KIND_RETRANSMIT_REQ:
            seqno = msg.headers["seqno"]
            served = False
            if self.group.sequencer_node_id == self.node_id:
                served = self.group.sequencer.handle_retransmit_request(msg.src, seqno)
            if msg.is_broadcast and not served:
                # A broadcast gap request: the sequencer could not help (it
                # is newly elected, its history evicted the message, or the
                # requester *is* the sequencer's node).  One member per
                # salvo — rotated by the request's attempt counter so every
                # member is eventually tried — answers from local state.
                # (The designated peer cannot observe whether a *remote*
                # sequencer served the same salvo, so a request can draw at
                # most two replies — sequencer plus designee; duplicates are
                # discarded by the ordering engine.)
                if self._gap_responder(seqno, msg.headers.get("salvo", 0)):
                    self._answer_gap_request(msg.src, seqno)
            return
        if kind == KIND_ELECTION:
            self._on_election_message(msg)
            return
        if kind == KIND_COORDINATOR:
            self._on_coordinator_message(msg)
            return

    def local_sequenced_data(self, entry: HistoryEntry) -> None:
        """Direct (loop-back) delivery used by a sequencer hosted on this node."""
        self.engine.offer(entry.seqno, entry.origin, entry.uid, entry.payload, entry.size)
        self._after_arrival()

    def _after_arrival(self) -> None:
        self._deliver_ready()
        self._schedule_gap_requests()

    def recovery_entries(self) -> List[HistoryEntry]:
        """Everything this member could serve as sequencer history: its
        retained delivered messages plus sequenced-but-undelivered buffers."""
        entries = list(self._delivered_history.values())
        entries.extend(
            HistoryEntry(m.seqno, m.origin, m.uid, m.payload, m.size)
            for m in self.engine.buffered_messages()
        )
        return entries

    def lookup_entry(self, seqno: int) -> Optional[HistoryEntry]:
        """This member's local copy of sequenced message ``seqno``, if any."""
        entry = self._delivered_history.get(seqno)
        if entry is not None:
            return entry
        for buffered in self.engine.buffered_messages():
            if buffered.seqno == seqno:
                return HistoryEntry(
                    buffered.seqno, buffered.origin, buffered.uid, buffered.payload, buffered.size
                )
        return None

    def _gap_responder(self, seqno: int, salvo: int) -> bool:
        """Whether this member should answer the given broadcast gap request.

        Exactly one member is designated per salvo; the designation rotates
        with the requester's retry counter, so a crashed or equally lagging
        designee only costs one retry interval before the next member is
        tried.  This caps recovery traffic at one reply per request instead
        of one per holder.

        Members that have not completed their rejoin catch-up are skipped:
        a recovered member's delivered history was wiped with the crash, so
        designating it would silently stall the requester for a salvo (and
        the answer it *could* give from a fresh engine would be nothing).
        """
        ids = sorted(nid for nid, member in self.group.members.items() if member.synced)
        if not ids:
            return False
        return ids[(seqno + salvo) % len(ids)] == self.node_id

    def _answer_gap_request(self, requester: int, seqno: int) -> None:
        """Serve a peer's broadcast gap request from local delivered state."""
        if not self.synced:
            return
        entry = self.lookup_entry(seqno)
        if entry is None or requester == self.node_id:
            return
        self.group.stats.peer_retransmissions += 1
        msg = self.node.make_message(
            requester,
            self.group.wire_kind(KIND_RETRANSMIT),
            payload=entry.payload,
            size=entry.size,
            seqno=entry.seqno,
            origin=entry.origin,
            uid=(entry.uid.origin, entry.uid.counter),
        )
        self.node.send(msg)

    def _deliver_ready(self) -> None:
        history = self._delivered_history
        history_size = self.group.params.history_size
        gap_timers = self._gap_timers
        gap_attempts = self._gap_attempts
        pending_sends = self._pending_sends
        stats = self.group.stats
        node_id = self.node_id
        sim = self.node.sim
        tracing = sim.tracer.enabled
        for delivered in self.engine.pop_deliverable():
            seqno = delivered.seqno
            history[seqno] = HistoryEntry(
                seqno, delivered.origin, delivered.uid, delivered.payload, delivered.size
            )
            while len(history) > history_size:
                history.popitem(last=False)
            if gap_timers:
                timer = gap_timers.pop(seqno, None)
                if timer is not None:
                    self.node.kernel.cancel_timer(timer)
            if gap_attempts:
                gap_attempts.pop(seqno, None)
            self._last_delivery_time = sim.now
            if delivered.origin == node_id:
                record = pending_sends.get(delivered.uid)
                if record is not None:
                    record.delivered = True
                    if record.retry_timer is not None:
                        self.node.kernel.cancel_timer(record.retry_timer)
                    pending_sends.pop(delivered.uid, None)
                    if record.on_delivered is not None:
                        record.on_delivered(seqno)
            stats.deliveries += 1
            stats.per_member_deliveries[node_id] = (
                stats.per_member_deliveries.get(node_id, 0) + 1
            )
            if tracing:
                sim.trace(
                    "grp.deliver",
                    f"node {node_id} delivers #{seqno}",
                    origin=delivered.origin,
                    seqno=seqno,
                )
            if self.delivery_handler is not None:
                self.delivery_handler(delivered)

    def probe_gap(self) -> None:
        """One-shot recovery probe for the next expected sequence number.

        The in-band gap machinery only fires when a *later* arrival reveals
        a hole.  A layer above can know out of band that this member missed
        sequenced traffic — e.g. a coherence message stamped with a newer
        regime epoch arrived while the group has gone quiet (all later
        traffic left the broadcast path), so nothing in-band will ever
        reveal the gap.  This broadcasts a single gap request for the first
        unseen seqno: if it exists anywhere, the sequencer or the rotating
        designated peer serves it from retained history; if it does not
        (the evidence was a transient race), the request goes unanswered
        and it is the caller's job to re-probe — there is deliberately no
        self-re-arm here, so probing a not-yet-sequenced seqno cannot spin.
        """
        if not self.synced:
            return  # the rejoin seed, not gap recovery, covers the span
        seqno = self.engine.next_expected
        if seqno in self._gap_timers:
            return  # in-band gap recovery is already chasing it
        # Always a broadcast: the probe exists precisely for situations
        # where the sequencer may be gone.
        self._send_gap_request(seqno, prefer_sequencer=False)

    def _send_gap_request(self, seqno: int, prefer_sequencer: bool) -> None:
        """Emit one retransmit request for ``seqno`` (unicast or broadcast).

        The first request may go unicast to the sequencer; repeats (and
        sequencer-less probes) broadcast so the rotating designated peer
        answers from retained history.
        """
        attempts = self._gap_attempts.get(seqno, 0) + 1
        self._gap_attempts[seqno] = attempts
        self.group.stats.retransmit_requests += 1
        self.group.stats.control_bytes_sent += CONTROL_MESSAGE_SIZE
        sequencer_node = self.group.sequencer_node_id
        destination = None
        if prefer_sequencer and sequencer_node != self.node_id and attempts <= 1:
            destination = sequencer_node
        msg = self.node.make_message(
            destination,
            self.group.wire_kind(KIND_RETRANSMIT_REQ),
            size=CONTROL_MESSAGE_SIZE,
            seqno=seqno,
            salvo=attempts,
        )
        self.node.send(msg)

    def _schedule_gap_requests(self) -> None:
        if not self.synced:
            # A fresh engine behind a live group would see everything up to
            # the current seqno as "missing" and storm the group with gap
            # requests; the rejoin anchor + seed close that span instead.
            return
        for seqno in self.engine.missing_seqnos():
            if seqno in self._gap_timers:
                continue
            self._gap_timers[seqno] = self.node.kernel.set_timer(
                self.group.gap_request_delay, self._request_retransmit, seqno
            )

    def _request_retransmit(self, seqno: int) -> None:
        self._gap_timers.pop(seqno, None)
        if seqno < self.engine.next_expected:
            self._gap_attempts.pop(seqno, None)
            return  # it arrived in the meantime
        # First attempt goes unicast to the sequencer; after that (or when
        # the sequencer is hosted here and its history lacks the message)
        # the whole group is asked, the attempt counter rotating which
        # member answers from its retained history.
        self._send_gap_request(seqno, prefer_sequencer=True)
        # Re-arm in case the retransmission is lost too.
        self._gap_timers[seqno] = self.node.kernel.set_timer(
            self.group.retry_timeout, self._request_retransmit, seqno
        )

    # ------------------------------------------------------------------ #
    # Sequencer election
    # ------------------------------------------------------------------ #

    def _start_election(self) -> None:
        if self._election_timer is not None:
            return  # already participating in a round
        self.group.stats.elections += 1
        self._election_votes = {self.node_id: self.engine.highest_known_seqno}
        msg = self.node.make_message(
            None,
            self.group.wire_kind(KIND_ELECTION),
            size=CONTROL_MESSAGE_SIZE,
            candidate=self.node_id,
            high=self.engine.highest_known_seqno,
        )
        self.node.send(msg)
        self._election_timer = self.node.kernel.set_timer(
            self.group.params.election_timeout, self._conclude_election
        )

    def _on_election_message(self, msg: Message) -> None:
        candidate = msg.headers["candidate"]
        high = msg.headers["high"]
        joined_already = self._election_timer is not None
        if not joined_already:
            # Join the round: announce ourselves as well.
            self._election_votes = {self.node_id: self.engine.highest_known_seqno}
            reply = self.node.make_message(
                None,
                self.group.wire_kind(KIND_ELECTION),
                size=CONTROL_MESSAGE_SIZE,
                candidate=self.node_id,
                high=self.engine.highest_known_seqno,
            )
            self.node.send(reply)
            self._election_timer = self.node.kernel.set_timer(
                self.group.params.election_timeout, self._conclude_election
            )
        self._election_votes[candidate] = max(self._election_votes.get(candidate, -1), high)

    def _conclude_election(self) -> None:
        self._election_timer = None
        votes = dict(self._election_votes)
        self._election_votes = {}
        if not votes:
            return
        # Winner: highest known sequence number; ties go to the lowest node id.
        winner = min(votes, key=lambda nid: (-votes[nid], nid))
        if winner != self.node_id:
            return  # the winner announces itself; everyone else stays quiet
        next_seq = max(votes.values()) + 1
        self.group.install_sequencer(self.node_id, next_seq)
        msg = self.node.make_message(
            None,
            self.group.wire_kind(KIND_COORDINATOR),
            size=CONTROL_MESSAGE_SIZE,
            sequencer=self.node_id,
            next_seq=next_seq,
        )
        self.node.send(msg)
        self._resend_pending()

    def _on_coordinator_message(self, msg: Message) -> None:
        new_sequencer = msg.headers["sequencer"]
        self.group.note_new_sequencer(new_sequencer, msg.headers["next_seq"])
        if self._election_timer is not None:
            self.node.kernel.cancel_timer(self._election_timer)
            self._election_timer = None
            self._election_votes = {}
        self._resend_pending()

    def _resend_pending(self) -> None:
        for record in list(self._pending_sends.values()):
            if not record.delivered:
                self._transmit(record)

    # ------------------------------------------------------------------ #
    # Rejoin (crash -> recover catch-up)
    # ------------------------------------------------------------------ #

    def wipe_for_rejoin(self) -> None:
        """Apply the crash's loss of volatile protocol state (at recover time).

        Everything the protocol accumulated — the ordering engine, delivered
        history, pending sends, gap/election/retry timers — died with the
        machine; only the uid counter survives (the stand-in for a restart
        incarnation number: a recovered member must never reuse a message id,
        or the sequencer's dedup table would swallow its new sends).  The
        member stays ``synced = False`` until a higher layer completes the
        rejoin catch-up.
        """
        for timer in self._gap_timers.values():
            self.node.kernel.cancel_timer(timer)
        self._gap_timers.clear()
        self._gap_attempts.clear()
        for record in self._pending_sends.values():
            if record.retry_timer is not None:
                self.node.kernel.cancel_timer(record.retry_timer)
        self._pending_sends.clear()
        if self._election_timer is not None:
            self.node.kernel.cancel_timer(self._election_timer)
            self._election_timer = None
        self._election_votes = {}
        self._delivered_history.clear()
        self.engine = OrderingEngine()
        self._last_delivery_time = self.node.sim.now
        self._anchor_uid = None
        self.synced = False

    def begin_rejoin(
        self,
        payload: object,
        size: int = 0,
        on_delivered: Optional[Callable[[int], None]] = None,
    ) -> MessageId:
        """Broadcast this member's rejoin anchor marker.

        The marker's assigned sequence number becomes the member's re-entry
        point into the group's total order: when the marker comes back
        sequenced, delivery fast-forwards to it and the member is synced
        again.  The state covering everything ordered *before* the anchor
        arrives out of band (the rejoin seed a peer sends on delivering the
        marker).  Forced onto the PB path so the anchor always returns as
        sequenced data.
        """
        uid = self.broadcast(payload, size=size, method="pb", on_delivered=on_delivered)
        # Safe to set after the send: the sequenced copy arrives in a later
        # event (the rejoining node never hosts the sequencer seat — the
        # rejoin hands a held seat off before anchoring).
        self._anchor_uid = uid
        return uid

    def mark_synced(self) -> None:
        """Degraded rejoin: declare this member caught up without an anchor
        (used when no synced peer survives to seed it)."""
        self._anchor_uid = None
        self.synced = True

    def resume_delivery(self, from_seqno: int) -> None:
        """Skip this member's delivery cursor past ``from_seqno`` and flush.

        The rejoin seed covered the order up to and including ``from_seqno``
        out of band; anything later that already arrived sequenced delivers
        now.
        """
        self.engine.fast_forward(from_seqno + 1)
        self._after_arrival()


class BroadcastGroup:
    """A totally-ordered broadcast group spanning every node of a cluster.

    Several groups can coexist on one cluster (the sharding layer runs one
    per shard): each group gets a ``group_id`` that namespaces its wire
    message kinds, so the groups' protocol traffic — sequencing, gap
    recovery, elections — is fully independent.  The initial sequencer seat
    is configurable so shards can spread their sequencers over the machines.
    """

    def __init__(
        self,
        cluster: "Cluster",
        params: Optional[BroadcastParams] = None,
        group_id: int = 0,
        sequencer_node_id: Optional[int] = None,
    ) -> None:
        if not cluster.network.supports_broadcast:
            raise BroadcastError("the broadcast group requires a network with hardware broadcast")
        self.cluster = cluster
        self.group_id = group_id
        self.params = params or cluster.cost_model.broadcast
        self.stats = GroupStats()
        self._pb = PBStrategy()
        self._bb = BBStrategy()
        #: Elected sequencer (initially the configured seat, defaulting to
        #: the lowest-numbered machine).
        initial = cluster.nodes[0].node_id if sequencer_node_id is None else sequencer_node_id
        self.sequencer_node_id = initial
        self.sequencer = Sequencer(self, cluster.node(initial))
        self.members: Dict[int, GroupMember] = {
            node.node_id: GroupMember(self, node) for node in cluster.nodes
        }
        #: Tunables for loss recovery (fractions of the election timeout).
        self.retry_timeout = self.params.election_timeout / 2.0
        self.gap_request_delay = self.params.election_timeout / 20.0
        self.max_send_attempts = 3

    # ------------------------------------------------------------------ #
    # Lookup / configuration
    # ------------------------------------------------------------------ #

    def wire_kind(self, base: str) -> str:
        """The on-wire message kind for ``base`` in this group.

        Group 0 keeps the plain protocol kinds (so single-group traffic and
        traces look exactly as before); other groups suffix their id, which
        keeps every group's registrations and dispatch disjoint.
        """
        return base if self.group_id == 0 else f"{base}#g{self.group_id}"

    @staticmethod
    def base_kind(wire: str) -> str:
        """Invert :meth:`wire_kind`: strip the group suffix, if any."""
        return wire.partition("#")[0]

    def member(self, node_id: int) -> GroupMember:
        return self.members[node_id]

    def set_delivery_handler(self, node_id: int, handler: DeliveryHandler) -> None:
        """Install the application's in-order delivery callback for one member."""
        self.members[node_id].delivery_handler = handler

    def strategy(self, method: str):
        return self._pb if method == "pb" else self._bb

    def choose_method(self, size: int) -> str:
        """Pick PB for short messages, BB for long ones (the paper's rule)."""
        if self.params.method != "auto":
            return self.params.method
        packets = self.cluster.cost_model.network.packets_for(size)
        return "pb" if packets <= self.params.pb_max_packets else "bb"

    # ------------------------------------------------------------------ #
    # Sequencer management
    # ------------------------------------------------------------------ #

    def install_sequencer(self, node_id: int, next_seq: int) -> None:
        """Make ``node_id`` the sequencer, continuing numbering at ``next_seq``.

        The new sequencer's history buffer is seeded from the hosting
        member's local state (delivered plus buffered messages), so it can
        keep serving retransmissions for messages ordered before the old
        sequencer crashed.  The election winner is the member with the
        highest known sequence number, i.e. the best-informed seed.
        """
        node = self.cluster.node(node_id)
        old = self.sequencer
        self.sequencer_node_id = node_id
        self.sequencer = Sequencer(self, node)
        if old is not None and old is not self.sequencer:
            # A dethroned sequencer that is still alive must stop serving its
            # queue, or its stale broadcasts would collide with the seqnos
            # the successor hands out.
            old.retire()
        member = self.members.get(node_id)
        if member is not None:
            self.sequencer.adopt_history(member.recovery_entries())
        self.sequencer.adopt_state(next_seq)

    def note_new_sequencer(self, node_id: int, next_seq: int) -> None:
        """Record the outcome of an election announced by another member."""
        if node_id == self.sequencer_node_id and self.sequencer.node.node_id == node_id:
            self.sequencer.adopt_state(next_seq)
            return
        self.install_sequencer(node_id, next_seq)

    def handoff_sequencer(self, node_id: int, trust_old: bool = True) -> int:
        """Hand the sequencer seat to ``node_id`` without an election.

        Two planned (non-crash) seat transfers need this: draining a node
        out of the cluster, and a recovered node giving up a seat it held
        when it crashed.  With ``trust_old`` the numbering simply continues
        from the old seat (callers drain its queue first); without it the
        old seat's state is treated as lost — the rejoin case — and the
        successor renumbers after the highest sequence number any live,
        synced member has evidence of, exactly as an election winner would.
        The new seat announces itself so members resend their pending
        broadcasts at it.  Returns the adopted ``next_seq``.
        """
        if node_id == self.sequencer_node_id:
            return self.sequencer.next_seq
        if trust_old:
            next_seq = self.sequencer.next_seq
        else:
            highest = 0
            for member in self.members.values():
                if member.node.alive and member.synced:
                    highest = max(highest, member.engine.highest_known_seqno)
            next_seq = highest + 1
        self.install_sequencer(node_id, next_seq)
        node = self.cluster.node(node_id)
        self.stats.control_bytes_sent += CONTROL_MESSAGE_SIZE
        node.send(
            node.make_message(
                None,
                self.wire_kind(KIND_COORDINATOR),
                size=CONTROL_MESSAGE_SIZE,
                sequencer=node_id,
                next_seq=next_seq,
            )
        )
        return next_seq

    def crash_sequencer(self) -> int:
        """Failure injection: crash the current sequencer node; returns its id."""
        crashed = self.sequencer_node_id
        self.cluster.node(crashed).crash()
        return crashed

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #

    def broadcast_from(
        self,
        node_id: int,
        payload: object,
        size: int = 0,
        method: Optional[str] = None,
        on_delivered: Optional[Callable[[int], None]] = None,
    ) -> MessageId:
        """Broadcast ``payload`` originating at ``node_id``."""
        return self.members[node_id].broadcast(
            payload, size=size, method=method, on_delivered=on_delivered
        )

    def delivered_counts(self) -> Dict[int, int]:
        """Number of messages delivered at each member (for tests)."""
        return {nid: m.engine.delivered_count for nid, m in self.members.items()}
