"""The per-node microkernel.

The Amoeba microkernel's four jobs (per the paper) are process/thread
management, low-level memory management, I/O, and transparent communication.
:class:`AmoebaKernel` provides the first two for its node — threads are
simulation processes pinned to the node, segments come from the node's
:class:`~repro.amoeba.segments.SegmentManager` — and hosts the timer facility
used by the communication protocols.  RPC and group communication live in
their own modules but register themselves with the kernel's node.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from ..sim.events import Event
from ..sim.process import SimProcess
from ..sim.sync import SimCondition, SimLock, SimSemaphore
from .segments import SegmentManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .node import Node


class AmoebaKernel:
    """Per-node kernel services: threads, segments, timers, synchronization."""

    def __init__(self, node: "Node", memory_bytes: int = 64 * 1024 * 1024) -> None:
        self.node = node
        self.sim = node.sim
        self.segments = SegmentManager(memory_bytes)
        self.threads: List[SimProcess] = []
        self._timers: Dict[int, Event] = {}
        self._timer_ids = 0

    # ------------------------------------------------------------------ #
    # Threads
    # ------------------------------------------------------------------ #

    def spawn_thread(
        self,
        target: Callable[..., Any],
        *args: Any,
        name: Optional[str] = None,
        daemon: bool = False,
        start_delay: float = 0.0,
        **kwargs: Any,
    ) -> SimProcess:
        """Create a thread (simulation process) pinned to this node.

        The thread is charged this node's context-switch cost at creation and
        carries a ``node`` attribute so higher layers can find the node it
        runs on (for overhead absorption and object-manager lookup).
        """
        thread_name = name or getattr(target, "__name__", "thread")
        proc = self.sim.spawn(
            target,
            *args,
            name=f"n{self.node.node_id}:{thread_name}",
            daemon=daemon,
            start_delay=start_delay + self.node.cost_model.cpu.context_switch_cost,
            **kwargs,
        )
        proc.node = self.node  # type: ignore[attr-defined]
        self.threads.append(proc)
        self.node.processes.append(proc)
        return proc

    def live_threads(self) -> List[SimProcess]:
        """Threads on this node that have not yet terminated."""
        return [t for t in self.threads if t.alive]

    # ------------------------------------------------------------------ #
    # Synchronization objects (factory helpers)
    # ------------------------------------------------------------------ #

    def new_lock(self, name: str = "lock") -> SimLock:
        return SimLock(self.sim, name=f"n{self.node.node_id}:{name}")

    def new_condition(self, lock: SimLock, name: str = "cond") -> SimCondition:
        return SimCondition(lock, name=f"n{self.node.node_id}:{name}")

    def new_semaphore(self, value: int = 0, name: str = "sem") -> SimSemaphore:
        return SimSemaphore(self.sim, value, name=f"n{self.node.node_id}:{name}")

    # ------------------------------------------------------------------ #
    # Timers
    # ------------------------------------------------------------------ #

    def set_timer(self, delay: float, callback: Callable[..., Any], *args: Any) -> int:
        """Arm a one-shot timer; returns a timer id usable with :meth:`cancel_timer`."""
        self._timer_ids += 1
        timer_id = self._timer_ids
        # A bound method with plain args, not a per-timer closure: timers are
        # armed (and usually cancelled) once per protocol message.
        self._timers[timer_id] = self.sim.schedule(
            delay, self._fire_timer, timer_id, callback, args
        )
        return timer_id

    def _fire_timer(self, timer_id: int, callback: Callable[..., Any], args: tuple) -> None:
        self._timers.pop(timer_id, None)
        if self.node.alive:
            callback(*args)

    def cancel_timer(self, timer_id: int) -> None:
        """Disarm a timer if it has not fired yet."""
        event = self._timers.pop(timer_id, None)
        if event is not None:
            self.sim.cancel(event)

    @property
    def active_timers(self) -> int:
        return len(self._timers)
