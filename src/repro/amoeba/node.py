"""Processor-pool nodes.

A :class:`Node` models one CPU-plus-memory pair of the Amoeba processor pool.
It owns a NIC, a per-node microkernel (:class:`repro.amoeba.kernel.AmoebaKernel`),
a dispatch table from message kinds (ports) to handlers, and the accounting
machinery through which network-protocol CPU overhead is charged to the
application processes running on the node — the effect that visibly limits
speedup for update-heavy applications such as ACP in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from ..config import CostModel
from ..errors import NetworkError
from .message import Message
from .nic import NetworkInterface

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.kernel import Simulator
    from ..sim.process import SimProcess
    from .kernel import AmoebaKernel
    from .network import BaseNetwork


@dataclass
class NodeStats:
    """Per-node accounting."""

    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    overhead_time: float = 0.0
    overhead_absorbed: float = 0.0
    handler_invocations: Dict[str, int] = field(default_factory=dict)


class Node:
    """One simulated machine of the processor pool."""

    def __init__(
        self,
        sim: "Simulator",
        node_id: int,
        cost_model: CostModel,
        network: Optional["BaseNetwork"] = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.cost_model = cost_model
        self.nic = NetworkInterface(self)
        self.stats = NodeStats()
        self.alive = True
        self._handlers: Dict[str, Callable[[Message], None]] = {}
        self._default_handler: Optional[Callable[[Message], None]] = None
        #: CPU overhead accrued by protocol processing that has not yet been
        #: absorbed into an application process's virtual time.
        self._overhead_pending = 0.0
        #: Application processes pinned to this node (bookkeeping only).
        self.processes: List["SimProcess"] = []
        #: Callbacks fired (synchronously) when this node crashes; protocol
        #: layers use them to stop waiting on acknowledgements from the dead.
        self._crash_listeners: List[Callable[[], None]] = []
        #: Callbacks fired (synchronously) when this node recovers; protocol
        #: layers use them to start the rejoin catch-up before the member is
        #: treated as healthy again.
        self._recover_listeners: List[Callable[[], None]] = []
        self.network: Optional["BaseNetwork"] = None
        if network is not None:
            network.attach(self.nic)
            self.network = network
        # The per-node microkernel is created lazily to avoid an import cycle.
        from .kernel import AmoebaKernel  # local import by design

        self.kernel: "AmoebaKernel" = AmoebaKernel(self)

    # ------------------------------------------------------------------ #
    # Message handling
    # ------------------------------------------------------------------ #

    def register_handler(self, kind: str, handler: Callable[[Message], None]) -> None:
        """Register ``handler`` for messages whose ``kind`` matches exactly."""
        if kind in self._handlers:
            raise NetworkError(f"node {self.node_id} already has a handler for {kind!r}")
        self._handlers[kind] = handler

    def unregister_handler(self, kind: str) -> None:
        self._handlers.pop(kind, None)

    def set_default_handler(self, handler: Callable[[Message], None]) -> None:
        """Handler for message kinds with no exact registration."""
        self._default_handler = handler

    def dispatch(self, msg: Message) -> None:
        """Deliver a fully reassembled message to its registered handler."""
        if not self.alive:
            return
        self.stats.messages_received += 1
        self.stats.handler_invocations[msg.kind] = (
            self.stats.handler_invocations.get(msg.kind, 0) + 1
        )
        handler = self._handlers.get(msg.kind, self._default_handler)
        if handler is None:
            raise NetworkError(
                f"node {self.node_id} received {msg.kind!r} but has no handler for it"
            )
        handler(msg)

    @property
    def transport(self) -> Optional["BaseNetwork"]:
        """The node's attached interconnect, seen through the transport seam.

        An alias of :attr:`network`; code written against the
        :class:`~repro.amoeba.transport.Transport` interface should prefer
        this name, which the real-process backend mirrors.
        """
        return self.network

    def send(self, msg: Message, on_sent: Optional[Callable[[Message], None]] = None) -> None:
        """Send a message on the attached network."""
        if self.network is None:
            raise NetworkError(f"node {self.node_id} is not attached to a network")
        if not self.alive:
            return
        self.stats.messages_sent += 1
        self.stats.bytes_sent += msg.size
        self.network.send(msg, on_sent)

    def make_message(
        self, dst: Optional[int], kind: str, payload: Any = None, size: int = 0, **headers: Any
    ) -> Message:
        """Convenience constructor stamping this node as the source."""
        # ``headers`` is already a fresh dict (built from the ** call), so it
        # is handed to the Message without another copy.
        return Message(
            src=self.node_id, dst=dst, kind=kind, payload=payload, size=size, headers=headers
        )

    # ------------------------------------------------------------------ #
    # CPU overhead accounting
    # ------------------------------------------------------------------ #

    def charge_overhead(self, duration: float) -> None:
        """Charge protocol-processing CPU time to this node.

        The time is not consumed immediately (protocol handlers run in event
        context); instead it accumulates and is absorbed by the next
        application process on this node that synchronises with the clock,
        modelling the CPU being stolen from the application.
        """
        if duration <= 0:
            return
        self._overhead_pending += duration
        self.stats.overhead_time += duration

    def drain_overhead(self) -> float:
        """Return and clear the pending overhead (called by application processes)."""
        pending = self._overhead_pending
        if pending:
            self._overhead_pending = 0.0
            self.stats.overhead_absorbed += pending
        return pending

    @property
    def pending_overhead(self) -> float:
        return self._overhead_pending

    # ------------------------------------------------------------------ #
    # Failure injection
    # ------------------------------------------------------------------ #

    def on_crash(self, callback: Callable[[], None]) -> None:
        """Register a callback fired when (and each time) this node crashes."""
        self._crash_listeners.append(callback)

    def on_recover(self, callback: Callable[[], None]) -> None:
        """Register a callback fired when (and each time) this node recovers."""
        self._recover_listeners.append(callback)

    def crash(self) -> None:
        """Simulate a node crash: all subsequent traffic to the node is dropped."""
        self.alive = False
        self.nic.drop_partial_state()
        self.sim.trace("node.crash", f"node {self.node_id} crashed")
        for callback in list(self._crash_listeners):
            callback()

    def recover(self) -> None:
        """Bring a crashed node back (its volatile protocol state stays lost).

        Recovery listeners run after the node is marked alive so they can
        send and receive; they are responsible for re-seeding the protocol
        state that died with the crash (replica copies, delivery history)
        before the member serves the cluster again.
        """
        self.alive = True
        self.sim.trace("node.recover", f"node {self.node_id} recovered")
        for callback in list(self._recover_listeners):
            callback()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.node_id}{'' if self.alive else ' (crashed)'}>"
